"""Click-style modular router elements.

The paper's testbed emulates the WAN with "a software router built with
the Click modular router infrastructure; traffic shaping components were
used to simulate 100 ms latency each way ... with 100 Mbit/s maximum
combined network bandwidth".  This module reproduces that structure: a
link's behaviour is an *element chain* — classifier, counters, bandwidth
shaper, fixed-delay — through which every packet passes.

Elements are generator-based: ``traverse(packet)`` yields simulation
events and returns when the packet exits the element.  A chain composes
elements with ``yield from``, so a packet's end-to-end latency is exactly
the sum of the element behaviours it encounters.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from .kernel import Environment, Event
from .rng import Streams

__all__ = [
    "Packet",
    "Element",
    "FixedDelay",
    "BandwidthShaper",
    "TokenBucketShaper",
    "Counter",
    "Classifier",
    "LossElement",
    "PacketLoss",
    "ElementChain",
]


class Packet:
    """A unit of network transfer.

    ``kind`` tags the protocol ("http", "rmi", "jdbc", "jms", "dgc") so
    classifiers and monitors can differentiate traffic, mirroring Click's
    header-based classification.  A ``__slots__`` class rather than a
    dataclass: one is allocated per hop-level transfer on the hot path.
    """

    __slots__ = ("src", "dst", "size", "kind", "created", "meta")

    def __init__(
        self,
        src: str,
        dst: str,
        size: int,
        kind: str = "data",
        created: float = 0.0,
        meta: Optional[dict] = None,
    ):
        self.src = src
        self.dst = dst
        self.size = size
        self.kind = kind
        self.created = created
        self.meta = meta if meta is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(src={self.src!r}, dst={self.dst!r}, size={self.size!r}, "
            f"kind={self.kind!r}, created={self.created!r}, meta={self.meta!r})"
        )


class PacketLoss(Exception):
    """Raised when a loss element drops the traversing packet."""

    def __init__(self, packet: Packet):
        super().__init__(f"packet {packet.kind} {packet.src}->{packet.dst} dropped")
        self.packet = packet


class Element:
    """Base router element.  Subclasses override :meth:`traverse`.

    Elements that never suspend (counters, loss checks) set ``instant``
    and implement :meth:`apply`; :class:`ElementChain` calls ``apply``
    directly instead of driving an empty generator through the kernel.
    """

    name = "element"
    instant = False

    def traverse(self, packet: Packet) -> Generator[Event, Any, None]:
        """Pass ``packet`` through this element; yield kernel events."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator in subclasses' eyes

    def apply(self, packet: Packet) -> None:
        """Instant-element effect (only when ``instant`` is True)."""
        raise NotImplementedError


class FixedDelay(Element):
    """Adds a constant propagation latency (the WAN's 100 ms each way)."""

    name = "delay"

    def __init__(self, env: Environment, delay: float):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.env = env
        self.delay = delay
        self.instant = delay == 0

    def apply(self, packet: Packet) -> None:
        pass  # zero-delay: nothing to do

    def traverse(self, packet: Packet):
        if self.delay > 0:
            yield self.env.sleep(self.delay)


class BandwidthShaper(Element):
    """Serializes packets onto a fixed-rate output port.

    ``bandwidth`` is in bytes per millisecond.  Transmission of a packet
    occupies the port for ``size / bandwidth`` ms; packets queue FIFO
    behind one another, which is how shared-bandwidth contention appears.

    The port is modelled as a free-from timestamp rather than a held
    resource: a packet arriving at ``t`` starts transmitting at
    ``max(t, free_at)`` and pushes ``free_at`` forward by its
    transmission time.  Departure times are exactly those of a FIFO
    unit-capacity resource, but a reservation is pure arithmetic — no
    grant/release events per packet.
    """

    name = "shaper"

    def __init__(self, env: Environment, bandwidth: float):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.bandwidth = bandwidth
        self._free_at = 0.0
        self._busy_time = 0.0
        self._started = env.now

    def transmission_delay(self, size: int) -> float:
        return size / self.bandwidth

    def occupy(self, size: int) -> float:
        """Reserve the port FIFO; returns queueing wait + transmission time."""
        now = self.env.now
        tx = size / self.bandwidth
        free_at = self._free_at
        self._busy_time += tx
        if free_at <= now:
            self._free_at = now + tx
            return tx
        self._free_at = free_at + tx
        return free_at - now + tx

    def traverse(self, packet: Packet):
        delay = self.occupy(packet.size)
        if delay > 0:
            yield self.env.sleep(delay)

    def utilization(self) -> float:
        elapsed = self.env.now - self._started
        if elapsed <= 0:
            return 0.0
        # Busy time accrues at reservation; subtract the part of the
        # backlog that has not transmitted yet at query time.
        pending = self._free_at - self.env.now
        busy = self._busy_time - pending if pending > 0 else self._busy_time
        return busy / elapsed


class TokenBucketShaper(Element):
    """Token-bucket rate limiter (rate bytes/ms, burst bytes).

    Unlike :class:`BandwidthShaper` this admits bursts up to the bucket
    depth at line rate, then throttles to the sustained rate.
    """

    name = "token-bucket"

    def __init__(self, env: Environment, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.env = env
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last_fill = env.now

    def _refill(self) -> None:
        now = self.env.now
        self._tokens = min(self.burst, self._tokens + (now - self._last_fill) * self.rate)
        self._last_fill = now

    def traverse(self, packet: Packet):
        self._refill()
        if packet.size <= self._tokens:
            self._tokens -= packet.size
            return
        deficit = packet.size - self._tokens
        self._tokens = 0.0
        wait = deficit / self.rate
        yield self.env.sleep(wait)
        self._refill()
        self._tokens = max(0.0, self._tokens - deficit)


class Counter(Element):
    """Counts packets and bytes, optionally per protocol kind."""

    name = "counter"
    instant = True

    def __init__(self):
        self.packets = 0
        self.bytes = 0
        self.by_kind: dict = {}

    def apply(self, packet: Packet) -> None:
        self.packets += 1
        self.bytes += packet.size
        stats = self.by_kind.setdefault(packet.kind, [0, 0])
        stats[0] += 1
        stats[1] += packet.size

    def traverse(self, packet: Packet):
        self.apply(packet)
        return
        yield  # pragma: no cover


class Classifier(Element):
    """Routes packets to one of several sub-chains by protocol kind.

    ``branches`` maps a kind to an :class:`ElementChain`; unmatched kinds
    take the ``default`` chain (which may be empty).
    """

    name = "classifier"

    def __init__(self, branches: dict, default: Optional["ElementChain"] = None):
        self.branches = dict(branches)
        self.default = default if default is not None else ElementChain([])

    def traverse(self, packet: Packet):
        chain = self.branches.get(packet.kind, self.default)
        yield from chain.traverse(packet)


class LossElement(Element):
    """Drops packets with a fixed probability (0 by default everywhere).

    The paper's emulated testbed is loss-free; this element exists for the
    failure-injection tests and the mutable-services experiments.
    """

    name = "loss"

    instant = True

    def __init__(self, probability: float, streams: Streams, stream_name: str = "loss"):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability
        self.streams = streams
        self.stream_name = stream_name
        self.dropped = 0

    def apply(self, packet: Packet) -> None:
        if self.probability > 0.0:
            draw = self.streams.get(self.stream_name).random()
            if draw < self.probability:
                self.dropped += 1
                raise PacketLoss(packet)

    def traverse(self, packet: Packet):
        self.apply(packet)
        return
        yield  # pragma: no cover


class ElementChain:
    """An ordered pipeline of elements a packet traverses in sequence."""

    def __init__(self, elements: List[Element]):
        self.elements = list(elements)

    def traverse(self, packet: Packet) -> Generator[Event, Any, None]:
        # ``elements`` is re-read per traversal (tests splice elements in),
        # and instant elements run inline instead of through an empty
        # generator — the common chain only suspends for shaper + delay.
        elements = self.elements
        # Canonical WAN hop (counter -> shaper -> delay) fused: the shaper
        # reserves its port by timestamp, so queueing wait, transmission
        # and propagation collapse into a single sleep — one heap entry
        # and one dispatch per hop instead of two or three.
        if (
            len(elements) == 3
            and type(elements[1]) is BandwidthShaper
            and type(elements[0]) is Counter
            and type(elements[2]) is FixedDelay
        ):
            elements[0].apply(packet)
            shaper = elements[1]
            total = shaper.occupy(packet.size) + elements[2].delay
            if total > 0:
                yield shaper.env.sleep(total)
            return
        for element in elements:
            if element.instant:
                element.apply(packet)
            else:
                yield from element.traverse(packet)

    def find(self, element_type: type) -> Optional[Element]:
        """First element of the given type, or None."""
        for element in self.elements:
            if isinstance(element, element_type):
                return element
        return None
