"""Discrete-event simulation kernel.

The kernel executes *processes* — Python generator functions that yield
:class:`Event` objects — against a single global virtual clock.  It is the
substrate on which every other subsystem (network links, the database
engine, EJB containers, HTTP clients) is built.

Design notes
------------

* Time is a ``float`` in **simulated milliseconds**.  Nothing in the kernel
  depends on the unit, but every caller in this repository uses ms.
* A process yields an :class:`Event`; the kernel suspends the process until
  the event fires and resumes it with the event's value (or throws the
  event's exception into it).  Sub-routines compose with ``yield from``.
* Event ordering is deterministic: events scheduled for the same timestamp
  fire in schedule order (a monotonically increasing sequence number breaks
  ties), which makes simulations reproducible byte-for-byte.
* Scheduling is two-tier: items due *now* (triggered events, deferred
  calls, zero-delay timeouts) live in a FIFO ready deque; items due
  strictly later live in a calendar-queue timer wheel (see below).  When
  the ready deque drains, the clock advances to the wheel's minimum and
  **every** entry due at that instant is moved to the deque in one batch.
  Because future entries are always scheduled at ``now + delay`` with
  ``delay > 0``, nothing can land *at* the current instant afterwards, so
  the deque's FIFO order alone reproduces global ``(time, sequence)``
  order — no per-pop merge between the two tiers is needed.

The timer wheel
---------------

``heapq`` costs O(log n) per operation and, far worse at scale, keeps a
single n-entry array that every push/pop churns — at 10^5..10^6 pending
timers the comparisons and cache misses dominate the whole simulation.
The wheel replaces it with an epoch-based calendar queue:

* ``_cur`` — the *current bucket*: a list of ``(time, seq, item)``
  entries kept sorted in **descending** time so the global minimum is
  ``_cur[-1]`` and removal is an O(1) ``list.pop()``.  Out-of-order
  insertions merely set a dirty flag; re-sorting is C-speed timsort and
  adaptive on the nearly-sorted common case.
* ``_buckets`` — equal-width future buckets whose exclusive upper edges
  are precomputed in ``_bounds`` (ascending); appends are O(1) with a
  single C ``bisect_right`` to route, and a bucket is sorted only once,
  when it is promoted to become the current bucket.
* ``_overflow`` — an unsorted spill list for entries beyond ``_limit``.
  When every bucket has been consumed the wheel *re-epochs*: the
  overflow is sorted **once** (C timsort — adaptive, since the previous
  epoch's tail is already ordered) and carved into fresh buckets by
  binary-search slicing, so re-epoching does no per-entry Python work
  at all.  The new width is derived from the exact 87.5th-percentile
  span of the pending set (automatic bucket-width resizing), so both
  uniform and heavy-tailed delay distributions get O(1) amortized
  scheduling.

Invariants (each proves the dequeue order correct): every ``_cur`` entry
has ``time < _cur_top``; bucket ``i`` holds ``_bounds[i-1] <= time <
_bounds[i]`` with ``i >= _idx``; overflow entries have ``time >=
_limit == _bounds[-1]``; hence the global minimum always lives in
``_cur``, and two entries with equal time can never sit in different
tiers.  Rebuild slicing and push routing share the *same* boundary
floats (``_bounds``), so an entry can never straddle the two rules.

Example
-------

>>> env = Environment()
>>> log = []
>>> def proc(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(proc(env, 'b', 2.0))
>>> _ = env.process(proc(env, 'a', 1.0))
>>> env.run()
>>> log
[(1.0, 'a'), (2.0, 'b')]
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from functools import partial
from operator import itemgetter
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "StopProcess",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


# Sentinel returned by Environment._advance when `until` cuts the run short.
_BOUNDARY = object()

# Sort/bisect key for wheel entries (C-speed single-float comparisons).
_entry_time = itemgetter(0)
_entry_item = itemgetter(2)


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the interrupting party's reason.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class StopProcess(Exception):
    """Raised internally to terminate a process early with a value."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, either with a value
    (:meth:`succeed`) or an exception (:meth:`fail`).  Processes waiting on
    the event are resumed by the kernel in FIFO order.

    The callback list is lazy (``None`` until the first waiter) because
    most events in a simulation have exactly zero or one waiter and the
    empty-list allocation is pure overhead on the hot path.
    """

    __slots__ = (
        "env",
        "_callbacks",
        "_value",
        "_exception",
        "_triggered",
        "_scheduled",
        "_dispatched",
    )

    # Class-level default read by the dispatch loop: only Process instances
    # (whose per-instance slot shadows this) can ever be asleep.
    _sleeping = False

    def __init__(self, env: "Environment"):
        self.env = env
        self._callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._scheduled = False
        self._dispatched = False

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value or exception."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value.  Raises if the event failed or is pending."""
        if not self._triggered:
            raise SimulationError("event value is not yet available")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._scheduled = True
        self._value = value
        self.env._ready.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._scheduled = True
        self._exception = exception
        self.env._ready.append(self)
        return self

    # -- waiting ---------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event has already been dispatched the callback runs at the
        next scheduling opportunity (still in virtual time ``now``).
        """
        if self._dispatched:
            self.env._schedule_call(partial(callback, self))
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` ms after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        # Inlined Event.__init__ plus scheduling: timeouts are the single
        # most-allocated object in a simulation.
        self.env = env
        self._callbacks = None
        # The value is fixed now, but the event only *triggers* when the
        # kernel dispatches it at now+delay (AnyOf/AllOf rely on this).
        self._value = value
        self._exception = None
        self._triggered = False
        self._scheduled = True
        self._dispatched = False
        self.delay = delay
        if delay == 0.0:
            # Due this very instant: the ready deque, not the wheel.
            env._ready.append(self)
        else:
            # Inlined wheel push (kept in lockstep with Environment._push).
            time = env._now + delay
            env._sequence = sequence = env._sequence + 1
            if time < env._cur_top:
                env._cur.append((time, sequence, self))
                env._cur_dirty = True
            elif time < env._limit:
                index = bisect_right(env._bounds, time)
                if index < env._idx:
                    index = env._idx
                env._buckets[index].append((time, sequence, self))
            else:
                env._overflow.append((time, sequence, self))


class Process(Event):
    """A running generator.  Also an event that fires when the generator ends.

    The process event's value is the generator's return value; if the
    generator raises, the process event fails with that exception (unless a
    waiter is present, failures propagate and crash the simulation — errors
    should never pass silently).
    """

    # _sleeping and _send lead the slot layout so the run loop's two
    # hot loads land on the same cache line — at 10^6 concurrent
    # processes every dispatch touches a cold Process object, and one
    # miss per wake is measurably cheaper than two.
    __slots__ = (
        "_sleeping",
        "_send",
        "generator",
        "name",
        "_waiting_on",
        "_throw",
        "_interrupts",
    )

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(
                "process() requires a generator; got %r. Did you forget to "
                "call the generator function?" % (generator,)
            )
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._send = generator.send
        self._throw = generator.throw
        self._interrupts: Optional[List[Interrupt]] = None
        # Bootstrap: start the generator at the current simulation time.
        # A brand-new process is indistinguishable from one sleeping for
        # zero delay — the run loop's fast lane primes the generator
        # with ``send(None)`` exactly as ``_resume_initial`` would, but
        # without a deferred-call allocation or a ``_step`` frame.
        self._sleeping = True
        env._ready.append(self)

    def _resume_initial(self) -> None:
        self._step(None, None)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._sleeping:
            raise SimulationError(
                "cannot interrupt a process suspended in env.sleep(); "
                "use env.timeout() for interruptible waits"
            )
        target = self._waiting_on
        if target is not None:
            # Stop listening to whatever we were waiting on.
            callbacks = target._callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(self._on_event)
                except ValueError:
                    pass
            self._waiting_on = None
        if self._interrupts is None:
            self._interrupts = []
        self._interrupts.append(Interrupt(cause))
        self.env._schedule_call(self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        self._step(None, self._interrupts.pop(0))

    # -- stepping machinery ----------------------------------------------
    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        exception = event._exception
        if exception is not None:
            self._step(None, exception)
        else:
            self._step(event._value, None)

    def _finish(self, error: BaseException) -> None:
        """Handle an exception the generator raised out of send/throw.

        StopIteration/StopProcess are normal completion; anything else
        fails the process event if someone is waiting on it, or crashes
        the simulation loudly if nobody is.
        """
        if isinstance(error, StopIteration):
            value = getattr(error, "value", None)
        elif isinstance(error, StopProcess):
            self.generator.close()
            value = error.value
        elif self._callbacks:
            self.fail(error)
            return
        else:
            # No waiter to deliver the failure to: crash loudly.
            raise error
        # Inlined succeed(): completion is once-per-process but at
        # million-session scale that is a million dispatches.
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._scheduled = True
        self._value = value
        if self._callbacks is None:
            # Nobody is waiting: skip the ready-deque dispatch entirely.
            # Marking the event dispatched keeps add_callback()-after-
            # completion working (it schedules the callback itself).
            self._dispatched = True
        else:
            self.env._ready.append(self)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._triggered:
            return
        try:
            if exc is not None:
                target = self._throw(exc)
            else:
                target = self._send(value)
        except BaseException as error:
            self._finish(error)
            return
        if target.__class__ is float:
            # Pure-delay fast lane (`yield env.sleep(d)` / a bare float —
            # ints stay errors, they are the classic yielded-a-non-event
            # bug): no Event object, no callback list, no dispatch — the
            # process itself is the wheel entry (one tuple) or the ready
            # item (nothing at all); the run loop recognises a sleeping
            # process by its ``_sleeping`` flag and resumes it directly.
            env = self.env
            if target > 0:
                self._sleeping = True
                # Inlined wheel push (lockstep with Environment._push).
                time = env._now + target
                env._sequence = sequence = env._sequence + 1
                if time < env._cur_top:
                    env._cur.append((time, sequence, self))
                    env._cur_dirty = True
                elif time < env._limit:
                    index = bisect_right(env._bounds, time)
                    if index < env._idx:
                        index = env._idx
                    env._buckets[index].append((time, sequence, self))
                else:
                    env._overflow.append((time, sequence, self))
            elif target == 0:
                self._sleeping = True
                env._ready.append(self)
            else:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {target!r}"
                )
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        """Suspend until ``target`` (an Event) fires.

        The non-float half of target handling, shared by :meth:`_step`
        and the run loop's inlined resume of sleeping processes.
        """
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances (use env.timeout / env.process / ...)"
            )
        if target.env is not self.env:
            raise SimulationError("cannot wait on an event from another Environment")
        self._waiting_on = target
        # Inlined add_callback: this registration runs once per kernel step.
        if target._dispatched:
            self.env._schedule_call(partial(self._on_event, target))
        elif target._callbacks is None:
            target._callbacks = [self._on_event]
        else:
            target._callbacks.append(self._on_event)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if not isinstance(event, Event):
                raise TypeError(
                    f"conditions combine Event instances, got {event!r}; "
                    "env.sleep() delays cannot be combined — use "
                    "env.timeout() instead"
                )
            event.add_callback(self._check)

    def _collect(self) -> dict:
        return {
            index: event._value
            for index, event in enumerate(self.events)
            if event._triggered and event._exception is None
        }

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of ``events`` fires.

    Value is a dict ``{index: value}`` of all events triggered so far.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when every one of ``events`` has fired.

    Value is a dict ``{index: value}`` of every event's value.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class Environment:
    """The simulation world: a clock, a ready deque, and a timer wheel.

    Items due at the current instant live in ``_ready`` (a FIFO deque of
    bare items); items due strictly later live in the calendar-queue
    wheel as ``(time, sequence, item)`` triples (see the module
    docstring).  An *item* is either an :class:`Event` to dispatch or a
    zero-argument callable.  Whenever the clock advances, every wheel
    entry due at the new instant moves to the deque in one batch —
    future entries are always strictly later than ``now``, so deque FIFO
    order alone equals global ``(time, sequence)`` order.
    """

    __slots__ = (
        "_now",
        "_ready",
        "_sequence",
        "_active",
        "_cur",
        "_cur_dirty",
        "_cur_top",
        "_buckets",
        "_bounds",
        "_idx",
        "_limit",
        "_overflow",
    )

    def __init__(self, initial_time: float = 0.0):
        now = float(initial_time)
        self._now = now
        self._ready: deque = deque()
        self._sequence = 0
        self._active = True
        # -- timer-wheel state (see module docstring) ---------------------
        self._cur: List[tuple] = []  # descending (time, seq, item) stack
        self._cur_dirty = False  # _cur needs a re-sort before use
        self._cur_top = now  # exclusive upper bound of _cur's span
        self._buckets: List[List[tuple]] = []
        self._bounds: List[float] = []  # bucket i's exclusive upper edge
        self._idx = 0  # next bucket to promote
        self._limit = now  # == _bounds[-1] once an epoch exists
        self._overflow: List[tuple] = []  # unsorted, time >= _limit
        # With _cur_top == _limit == now, the first pushes spill to the
        # overflow list and the first dequeue re-epochs with a width fit
        # to the actual pending set.

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> float:
        """A pure delay for ``yield env.sleep(delay)`` — the cheapest wait.

        Unlike :meth:`timeout` no :class:`Event` is allocated: the kernel
        treats a yielded bare number as "resume me ``delay`` ms from
        now".  A sleeping process carries no event identity, so it
        cannot be waited on mid-sleep, combined with
        ``any_of``/``all_of``, or interrupted.  Use :meth:`timeout` for
        anything fancier.  (``yield some_float`` directly is equivalent;
        this method just documents intent and validates eagerly.)
        """
        if delay < 0:
            raise ValueError(f"negative sleep delay: {delay!r}")
        return float(delay)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a new process starting now."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _push(self, time: float, sequence: int, item: Any) -> None:
        """Insert a future ``(time, sequence, item)`` entry into the wheel.

        ``time`` must be strictly greater than ``now``.  Entries below
        the current bucket's span join it with a lazy re-sort; entries
        within the epoch go to their O(1) bucket; the rest spill to the
        overflow list until the next re-epoch.
        """
        if time < self._cur_top:
            self._cur.append((time, sequence, item))
            self._cur_dirty = True
        elif time < self._limit:
            index = bisect_right(self._bounds, time)
            if index < self._idx:
                index = self._idx
            self._buckets[index].append((time, sequence, item))
        else:
            self._overflow.append((time, sequence, item))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        if delay == 0.0:
            self._ready.append(event)
        else:
            self._sequence = sequence = self._sequence + 1
            self._push(self._now + delay, sequence, event)

    def _schedule_call(self, func: Callable[[], None], delay: float = 0.0) -> None:
        if delay == 0.0:
            self._ready.append(func)
        else:
            self._sequence = sequence = self._sequence + 1
            self._push(self._now + delay, sequence, func)

    # -- dequeue (the single implementation) -------------------------------
    def _wheel_min(self) -> Optional[tuple]:
        """An entry due at the wheel's minimum time, or None if empty.

        Promotes buckets and re-epochs the overflow as needed so a
        minimum-time entry always ends up at ``_cur[-1]``; never touches
        the clock.  Every ``_cur`` sort is a *stable* descending sort on
        the time alone (~3x faster than whole-tuple comparisons), so
        entries due at the same instant sit in ascending-sequence order
        left to right — push order, because every append source
        (bucket carve, in-run pushes, foreign pushes) appends in
        sequence order.  Dequeuers must therefore take an equal-time
        group from its *left* edge (see ``_advance`` and ``run``);
        ``_cur[-1]`` itself is only guaranteed minimal in time, which is
        all ``peek`` needs.
        """
        cur = self._cur
        while True:
            if cur:
                if self._cur_dirty:
                    cur.sort(key=_entry_time, reverse=True)
                    self._cur_dirty = False
                return cur[-1]
            buckets = self._buckets
            index = self._idx
            count = len(buckets)
            while index < count and not buckets[index]:
                index += 1
            if index < count:
                # Promote the next non-empty bucket to current.  A bucket
                # untouched since the rebuild is already ascending, so
                # the reverse sort is an O(k) single-run pass.
                cur = buckets[index]
                buckets[index] = []
                self._cur = cur
                self._idx = index + 1
                self._cur_top = self._bounds[index]
                cur.sort(key=_entry_time, reverse=True)
                self._cur_dirty = False
                continue
            # Every bucket consumed: pushes below _limit now belong in
            # _cur (keep the routing invariant before re-epoching).
            self._idx = count
            self._cur_top = self._limit
            if not self._overflow:
                return None
            self._rebuild()
            cur = self._cur

    def _rebuild(self) -> None:
        """Re-epoch: sort the overflow once and slice it into buckets.

        The sort is C timsort — adaptive, because everything the last
        epoch could not place is appended behind an already-ordered
        tail — and the per-bucket carve is a binary search plus a list
        slice, so the rebuild does **no per-entry Python work**.  The
        epoch is sized automatically: ~256 entries per bucket, with the
        width derived from the exact 87.5th-percentile span of the
        pending set so a few far-future stragglers cannot stretch every
        bucket into uselessness — they simply stay in the overflow.
        Push routing reuses the very same ``_bounds`` floats the slicer
        used, so the two can never disagree about an entry's bucket.
        """
        items = self._overflow
        # Stable sort on the time alone == (time, sequence) order, because
        # overflow entries are appended in sequence order (and a previous
        # epoch's leftover prefix is both already sorted and lower-sequence
        # than everything appended after it).  The single-float key sorts
        # ~3x faster than whole-tuple comparisons at 10^6 entries.
        items.sort(key=_entry_time)
        n = len(items)
        lo = items[0][0]
        hi = items[(7 * n) // 8][0]
        buckets_wanted = n // 256
        count = 8
        while count < buckets_wanted and count < (1 << 16):
            count <<= 1
        span = hi - lo
        width = span / count if span > 0.0 else 1.0
        self._bounds = bounds = [lo + (i + 1) * width for i in range(count)]
        self._limit = limit = bounds[-1]
        self._idx = 0
        self._cur_top = lo
        # A 1-tuple compares below every real entry with the same time,
        # so bisecting on (boundary,) keeps boundary-equal entries in
        # the later bucket — exactly matching push routing's `<`.
        split = bisect_left(items, (limit,))
        self._overflow = items[split:]
        buckets = []
        start = 0
        for boundary in bounds:
            end = bisect_left(items, (boundary,), start, split)
            buckets.append(items[start:end])
            start = end
        self._buckets = buckets

    def _advance(self, until: Optional[float] = None) -> Any:
        """Advance the clock to the next wheel instant and dequeue it.

        Returns the first item due at the new instant; any further
        entries due at the very same instant move to the ready deque in
        one batch (in sequence order — future pushes are strictly later,
        so no wheel entry can ever rejoin the current instant
        afterwards).  Returns None when the wheel is empty and the
        module-level ``_BOUNDARY`` sentinel when the next instant lies
        beyond ``until`` (clock parked at ``until``).
        """
        cur = self._cur
        if not cur:
            if self._wheel_min() is None:
                return None
            cur = self._cur
        elif self._cur_dirty:
            cur.sort(key=_entry_time, reverse=True)
            self._cur_dirty = False
        time = cur[-1][0]
        if until is not None and time > until:
            self._now = until
            return _BOUNDARY
        self._now = time
        i = len(cur) - 1
        if i and cur[i - 1][0] == time:
            # Equal-time group: ascending sequence left to right (see
            # _wheel_min), so the group's left edge dispatches first and
            # the rest move to the ready deque in forward order.
            while i and cur[i - 1][0] == time:
                i -= 1
            first = cur[i][2]
            self._ready.extend(map(_entry_item, cur[i + 1 :]))
            del cur[i:]
            return first
        return cur.pop()[2]

    # -- execution ---------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until both queues drain or the clock passes ``until``.

        Returns the final simulation time.  Events scheduled exactly at
        ``until`` still execute.
        """
        if until is not None:
            return self._run_bounded(until)
        # The unbounded loop is the workhorse under open-loop load —
        # ~10^7 dispatches per million-session run — so the wheel
        # dequeue is inlined here alongside the dispatch: cur-stack pop,
        # lazy re-sort, and same-instant batching happen without a
        # method call, and bucket promotion / re-epoch (once per ~256
        # events) goes through _wheel_min.  step(), peek(), and
        # _run_bounded share the generic dequeue (_advance); this loop
        # must stay in lockstep with it.
        ready = self._ready
        popleft = ready.popleft
        wheel_min = self._wheel_min
        time = self._now
        # Wheel-state locals: these only change inside _wheel_min /
        # _rebuild (the dequeue side, reached through the `not cur`
        # branch below), so they are refreshed there and nowhere else.
        # Pushes from foreign code (timeouts created inside a resumed
        # generator, callbacks) append to these same list objects and
        # touch only _sequence / _cur_dirty — both re-read every time.
        cur = self._cur
        cur_top = self._cur_top
        limit = self._limit
        bounds = self._bounds
        buckets = self._buckets
        idx = self._idx
        overflow = self._overflow
        extend = ready.extend
        third = _entry_item
        sort_key = _entry_time
        while True:
            while ready:
                item = popleft()
                # Inlined dispatch: the single hottest loop in the
                # repo.  The ``_sleeping`` load doubles as the item
                # discriminator — every Event carries the attribute
                # (False as a class default), deferred callables lack
                # it, and since process bootstrap rides the sleep lane,
                # callables are rare enough that the exception path
                # costs nothing in aggregate.
                try:
                    sleeping = item._sleeping
                except AttributeError:
                    item()
                    continue
                if sleeping:
                    # A process parked by `yield env.sleep(d)`: resume
                    # the generator right here — no event dispatch, no
                    # callbacks, no _step frame.  The flag stays set
                    # while the slice runs so a re-sleep costs zero
                    # flag writes; every exit that is *not* another
                    # sleep clears it.  Kept in lockstep with
                    # Process._step's float lane.
                    try:
                        target = item._send(None)
                    except BaseException as error:
                        item._sleeping = False
                        item._finish(error)
                        continue
                    if target.__class__ is float:
                        if target > 0:
                            wake = time + target
                            self._sequence = sequence = self._sequence + 1
                            if wake < cur_top:
                                cur.append((wake, sequence, item))
                                self._cur_dirty = True
                            elif wake < limit:
                                index = bisect_right(bounds, wake)
                                if index < idx:
                                    index = idx
                                buckets[index].append((wake, sequence, item))
                            else:
                                overflow.append((wake, sequence, item))
                        elif target == 0:
                            ready.append(item)
                        else:
                            item._sleeping = False
                            raise SimulationError(
                                f"process {item.name!r} yielded a "
                                f"negative delay: {target!r}"
                            )
                    else:
                        item._sleeping = False
                        item._wait_on(target)
                    continue
                item._triggered = True
                item._dispatched = True
                callbacks = item._callbacks
                if callbacks is not None:
                    item._callbacks = None
                    for callback in callbacks:
                        callback(item)
            # Ready drained: advance the wheel.  The whole batch of
            # entries due at the next timestamp moves to the ready
            # deque in one splice — C-level slice + map — so the
            # same-instant case (ms-quantized think times pile dozens
            # of wakes on one tick) never pays per-entry interpreter
            # cost.  Equal-time entries sit in ascending-sequence
            # order left to right (see _wheel_min), so the forward
            # slice IS fifo order.  Dispatch order is identical to
            # popping one at a time: anything a batch member schedules
            # at ``now`` appends *behind* the batch, exactly where its
            # later sequence number would have put it.
            if not cur:
                if wheel_min() is None:
                    break
                cur = self._cur
                cur_top = self._cur_top
                limit = self._limit
                bounds = self._bounds
                buckets = self._buckets
                idx = self._idx
                overflow = self._overflow
                continue
            if self._cur_dirty:
                cur.sort(key=sort_key, reverse=True)
                self._cur_dirty = False
            time = cur[-1][0]
            self._now = time
            i = len(cur) - 1
            if i and cur[i - 1][0] == time:
                while i and cur[i - 1][0] == time:
                    i -= 1
                extend(map(third, cur[i:]))
                del cur[i:]
            else:
                ready.append(cur.pop()[2])
        return self._now

    def _run_bounded(self, until: float) -> float:
        """The ``run(until=...)`` loop: same discipline, generic dequeue.

        Only tests and interactive probes run bounded, so this path
        trades the tight loop's inlining for the shared _advance
        implementation and a per-item boundary check.
        """
        ready = self._ready
        popleft = ready.popleft
        advance = self._advance
        while True:
            if ready:
                item = popleft()
            else:
                item = advance(until)
                if item is None:
                    break
                if item is _BOUNDARY:
                    return until
            if isinstance(item, Event):
                self._dispatch(item)
            else:
                item()
        if until > self._now:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Execute one scheduled item.  Returns False if nothing is pending."""
        ready = self._ready
        if ready:
            item = ready.popleft()
        else:
            item = self._advance()
            if item is None:
                return False
        if isinstance(item, Event):
            self._dispatch(item)
        else:
            item()
        return True

    def peek(self) -> Optional[float]:
        """Time of the next scheduled item, or None if nothing is pending."""
        if self._ready:
            return self._now
        entry = self._wheel_min()
        return entry[0] if entry is not None else None

    # -- introspection ------------------------------------------------------
    def pending(self) -> bool:
        """True while any ready item or wheel entry is outstanding.

        Unlike :meth:`peek` this never promotes buckets or re-epochs the
        overflow, so it is safe to call from *inside* a running process:
        the ``run`` loop's cached wheel locals stay valid.  (The
        telemetry sampler uses it to decide whether it is the only thing
        left alive — a mutating check there could swap ``_overflow`` /
        ``_buckets`` out from under the loop and lose the next push.)
        """
        if self._ready or self._cur or self._overflow:
            return True
        for bucket in self._buckets[self._idx :]:
            if bucket:
                return True
        return False

    def stats(self) -> dict:
        """Kernel self-statistics: cheap, read-only, canonical keys.

        Safe mid-run for the same reason as :meth:`pending`.
        ``sequence`` counts wheel entries ever scheduled — a proxy for
        event volume that the time-series sampler differentiates into
        events/interval; the remaining numbers describe ready-deque and
        calendar-queue occupancy at the instant of the call.
        """
        future = 0
        occupied = 0
        for bucket in self._buckets[self._idx :]:
            if bucket:
                occupied += 1
                future += len(bucket)
        return {
            "now": self._now,
            "sequence": self._sequence,
            "ready": len(self._ready),
            "current_bucket": len(self._cur),
            "future_entries": future,
            "buckets_occupied": occupied,
            "buckets_live": max(0, len(self._buckets) - self._idx),
            "overflow": len(self._overflow),
        }

    def _dispatch(self, event: Event) -> None:
        if event._sleeping:
            event._sleeping = False
            event._step(None, None)
            return
        event._triggered = True
        event._dispatched = True
        callbacks = event._callbacks
        if callbacks is not None:
            event._callbacks = None
            for callback in callbacks:
                callback(event)
