"""Connection-oriented transport on top of :class:`~repro.simnet.network.Network`.

Models the TCP-level behaviour that drives the paper's headline numbers:

* Opening a connection costs one round trip (SYN / SYN-ACK).  The paper:
  "accessing the service from a WAN link incurs approximately an extra
  400 ms, which is due to two round trips: one for TCP handshaking and
  another for the HTTP request (we did not use keep-alive HTTP
  connections)".
* A request/response exchange on an open connection costs one round trip
  plus transmission time plus whatever the server-side handler does.
* Connection pools model JDBC connection reuse and RMI's persistent
  sockets.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, Optional, Tuple

from .kernel import Environment, Event
from .network import Network

__all__ = ["Connection", "ConnectionPool", "TransportError", "SYN_SIZE", "ACK_SIZE"]

SYN_SIZE = 64
ACK_SIZE = 64


class TransportError(Exception):
    """Raised on misuse of a connection (e.g. request on a closed one)."""


class Connection:
    """A bidirectional virtual circuit between two nodes.

    The connection is directional in naming only: ``client`` opened it
    towards ``server``.  Either side may be the sender of a given
    exchange, but in this repository exchanges always originate at the
    client side.
    """

    def __init__(self, network: Network, client: str, server: str, kind: str = "tcp"):
        self.network = network
        self.env: Environment = network.env
        self.client = client
        self.server = server
        self.kind = kind
        self.is_open = False
        self.requests_sent = 0
        self.opened_at: Optional[float] = None

    def open(self) -> Generator[Event, None, "Connection"]:
        """Three-way handshake: one full round trip before data can flow."""
        if self.is_open:
            raise TransportError("connection already open")
        yield from self.network.transfer(self.client, self.server, SYN_SIZE, kind=self.kind)
        yield from self.network.transfer(self.server, self.client, ACK_SIZE, kind=self.kind)
        # The final ACK piggybacks on the first data segment; no extra wait.
        self.is_open = True
        self.opened_at = self.env.now
        return self

    def close(self) -> None:
        """Tear down (FIN exchange is not awaited by the application)."""
        self.is_open = False

    def request(
        self,
        request_size: int,
        handler: Callable[[], Generator[Event, Any, Any]],
        response_size: Optional[int] = None,
        response_size_of: Optional[Callable[[Any], int]] = None,
    ) -> Generator[Event, Any, Any]:
        """One request/response exchange.

        ``handler`` is a zero-argument callable returning a generator that
        performs the server-side work (CPU, nested calls, ...).  Its return
        value becomes this generator's return value.  The response size is
        either fixed (``response_size``) or derived from the handler result
        (``response_size_of``).
        """
        if not self.is_open:
            raise TransportError("request on a closed connection")
        self.requests_sent += 1
        yield from self.network.transfer(self.client, self.server, request_size, kind=self.kind)
        result = yield from handler()
        if response_size_of is not None:
            size = response_size_of(result)
        elif response_size is not None:
            size = response_size
        else:
            raise TransportError("response size unspecified")
        yield from self.network.transfer(self.server, self.client, size, kind=self.kind)
        return result


class ConnectionPool:
    """A per-(client, server) pool of open connections.

    Used by the JDBC driver (database connection pooling) and the RMI
    transport (persistent sockets).  ``checkout`` opens a new connection —
    paying the handshake — only when the pool is empty.
    """

    def __init__(self, network: Network, kind: str, max_per_pair: int = 32):
        if max_per_pair <= 0:
            raise ValueError("max_per_pair must be positive")
        self.network = network
        self.kind = kind
        self.max_per_pair = max_per_pair
        self._idle: Dict[Tuple[str, str], Deque[Connection]] = {}
        self.opened = 0
        self.reused = 0

    def checkout(self, client: str, server: str) -> Generator[Event, None, Connection]:
        """Borrow an open connection, creating one if necessary."""
        idle = self._idle.setdefault((client, server), deque())
        if idle:
            self.reused += 1
            return idle.popleft()
        connection = Connection(self.network, client, server, kind=self.kind)
        yield from connection.open()
        self.opened += 1
        return connection

    def checkin(self, connection: Connection) -> None:
        """Return a connection for reuse (closed if the pool is full)."""
        if not connection.is_open:
            return
        idle = self._idle.setdefault((connection.client, connection.server), deque())
        if len(idle) >= self.max_per_pair:
            connection.close()
        else:
            idle.append(connection)

    def exchange(
        self,
        client: str,
        server: str,
        request_size: int,
        handler: Callable[[], Generator[Event, Any, Any]],
        response_size: Optional[int] = None,
        response_size_of: Optional[Callable[[Any], int]] = None,
    ) -> Generator[Event, Any, Any]:
        """Checkout, one request/response, checkin.  The common pattern."""
        connection = yield from self.checkout(client, server)
        try:
            result = yield from connection.request(
                request_size,
                handler,
                response_size=response_size,
                response_size_of=response_size_of,
            )
        finally:
            self.checkin(connection)
        return result
