"""Connection-oriented transport on top of :class:`~repro.simnet.network.Network`.

Models the TCP-level behaviour that drives the paper's headline numbers:

* Opening a connection costs one round trip (SYN / SYN-ACK).  The paper:
  "accessing the service from a WAN link incurs approximately an extra
  400 ms, which is due to two round trips: one for TCP handshaking and
  another for the HTTP request (we did not use keep-alive HTTP
  connections)".
* A request/response exchange on an open connection costs one round trip
  plus transmission time plus whatever the server-side handler does.
* Connection pools model JDBC connection reuse and RMI's persistent
  sockets.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, Optional, Tuple

from .kernel import Environment, Event
from .network import Network

__all__ = [
    "Connection",
    "ConnectionPool",
    "TransportError",
    "NodeUnavailable",
    "RequestTimeout",
    "SYN_SIZE",
    "ACK_SIZE",
]

SYN_SIZE = 64
ACK_SIZE = 64


class TransportError(Exception):
    """Raised on misuse of a connection (e.g. request on a closed one)."""


class NodeUnavailable(TransportError):
    """Raised when a pool refuses to connect to a crashed node."""


class RequestTimeout(TransportError):
    """Raised when an exchange misses its client-side deadline."""


class Connection:
    """A bidirectional virtual circuit between two nodes.

    The connection is directional in naming only: ``client`` opened it
    towards ``server``.  Either side may be the sender of a given
    exchange, but in this repository exchanges always originate at the
    client side.
    """

    def __init__(self, network: Network, client: str, server: str, kind: str = "tcp"):
        self.network = network
        self.env: Environment = network.env
        self.client = client
        self.server = server
        self.kind = kind
        self.is_open = False
        self.requests_sent = 0
        self.opened_at: Optional[float] = None

    def _describe(self) -> str:
        return f"{self.kind} connection {self.client}->{self.server}"

    def open(self) -> Generator[Event, None, "Connection"]:
        """Three-way handshake: one full round trip before data can flow."""
        if self.is_open:
            raise TransportError(f"{self._describe()} is already open")
        yield from self.network.transfer(self.client, self.server, SYN_SIZE, kind=self.kind)
        yield from self.network.transfer(self.server, self.client, ACK_SIZE, kind=self.kind)
        # The final ACK piggybacks on the first data segment; no extra wait.
        self.is_open = True
        self.opened_at = self.env.now
        return self

    def close(self) -> None:
        """Tear down (FIN exchange is not awaited by the application)."""
        self.is_open = False

    def request(
        self,
        request_size: int,
        handler: Callable[[], Generator[Event, Any, Any]],
        response_size: Optional[int] = None,
        response_size_of: Optional[Callable[[Any], int]] = None,
        deadline: Optional[float] = None,
    ) -> Generator[Event, Any, Any]:
        """One request/response exchange.

        ``handler`` is a zero-argument callable returning a generator that
        performs the server-side work (CPU, nested calls, ...).  Its return
        value becomes this generator's return value.  The response size is
        either fixed (``response_size``) or derived from the handler result
        (``response_size_of``).

        ``deadline`` (absolute sim time) models a client-side request
        timeout: checked on entry and again when the response lands — the
        kernel has no event cancellation, so a late response is paid for
        in full and then discarded, exactly like a socket timeout firing
        after the bytes arrived.  ``None`` (the default) never times out
        and adds no events, keeping fault-free runs byte-identical.
        """
        if not self.is_open:
            raise TransportError(f"request on a closed {self._describe()}")
        if deadline is not None and self.env.now >= deadline:
            raise RequestTimeout(
                f"{self._describe()} deadline passed before the request was sent"
            )
        self.requests_sent += 1
        yield from self.network.transfer(self.client, self.server, request_size, kind=self.kind)
        result = yield from handler()
        if response_size_of is not None:
            size = response_size_of(result)
        elif response_size is not None:
            size = response_size
        else:
            raise TransportError(f"response size unspecified on {self._describe()}")
        yield from self.network.transfer(self.server, self.client, size, kind=self.kind)
        if deadline is not None and self.env.now > deadline:
            raise RequestTimeout(
                f"{self._describe()} response arrived after the deadline"
            )
        return result


class ConnectionPool:
    """A per-(client, server) pool of open connections.

    Used by the JDBC driver (database connection pooling) and the RMI
    transport (persistent sockets).  ``checkout`` opens a new connection —
    paying the handshake — only when the pool is empty.
    """

    def __init__(
        self,
        network: Network,
        kind: str,
        max_per_pair: int = 32,
        availability: Optional[Callable[[str], bool]] = None,
    ):
        if max_per_pair <= 0:
            raise ValueError("max_per_pair must be positive")
        self.network = network
        self.kind = kind
        self.max_per_pair = max_per_pair
        # Optional liveness oracle (``server name -> up?``): when set, the
        # pool refuses connections to crashed nodes up front instead of
        # failing mid-exchange (see AppServer.crash).
        self.availability = availability
        self._idle: Dict[Tuple[str, str], Deque[Connection]] = {}
        self.opened = 0
        self.reused = 0
        self.refused = 0

    def checkout(self, client: str, server: str) -> Generator[Event, None, Connection]:
        """Borrow an open connection, creating one if necessary."""
        if self.availability is not None and not self.availability(server):
            self.refused += 1
            raise NodeUnavailable(
                f"{self.kind} connection {client}->{server} refused: "
                f"node {server} is down"
            )
        idle = self._idle.setdefault((client, server), deque())
        if idle:
            self.reused += 1
            return idle.popleft()
        connection = Connection(self.network, client, server, kind=self.kind)
        yield from connection.open()
        self.opened += 1
        return connection

    def checkin(self, connection: Connection) -> None:
        """Return a connection for reuse (closed if the pool is full)."""
        if not connection.is_open:
            return
        idle = self._idle.setdefault((connection.client, connection.server), deque())
        if len(idle) >= self.max_per_pair:
            connection.close()
        else:
            idle.append(connection)

    def drop_connections_to(self, server: str) -> int:
        """Close idle connections to ``server`` (its process died)."""
        dropped = 0
        for (_client, pooled_server), idle in self._idle.items():
            if pooled_server != server:
                continue
            while idle:
                idle.popleft().close()
                dropped += 1
        return dropped

    def exchange(
        self,
        client: str,
        server: str,
        request_size: int,
        handler: Callable[[], Generator[Event, Any, Any]],
        response_size: Optional[int] = None,
        response_size_of: Optional[Callable[[Any], int]] = None,
    ) -> Generator[Event, Any, Any]:
        """Checkout, one request/response, checkin.  The common pattern."""
        connection = yield from self.checkout(client, server)
        try:
            result = yield from connection.request(
                request_size,
                handler,
                response_size=response_size,
                response_size_of=response_size_of,
            )
        finally:
            self.checkin(connection)
        return result
