"""Deterministic random-number streams.

Every source of randomness in the simulation (client think-time jitter,
page selection, database execution-time noise, ...) draws from a named
stream derived from a single master seed.  Two runs with the same master
seed are identical; changing one subsystem's draw pattern does not perturb
the others.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["Streams"]


def _derive_seed(master: int, name: str) -> int:
    digest = hashlib.sha256(f"{master}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class Streams:
    """A factory of named, independently seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int = 2003):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """The stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(_derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    # -- convenience draws -------------------------------------------------
    def uniform(self, name: str, low: float, high: float) -> float:
        return self.get(name).uniform(low, high)

    def expovariate(self, name: str, mean: float) -> float:
        """Exponential draw with the given *mean* (not rate)."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return self.get(name).expovariate(1.0 / mean)

    def choice(self, name: str, items: Sequence[T]) -> T:
        return self.get(name).choice(items)

    def weighted_choice(self, name: str, items: Sequence[T], weights: Sequence[float]) -> T:
        """One weighted draw (weights need not sum to 1)."""
        if len(items) != len(weights):
            raise ValueError("items and weights must be the same length")
        return self.get(name).choices(list(items), weights=list(weights), k=1)[0]

    def randint(self, name: str, low: int, high: int) -> int:
        return self.get(name).randint(low, high)

    def sample(self, name: str, items: Sequence[T], k: int) -> List[T]:
        return self.get(name).sample(list(items), k)

    def jitter(self, name: str, base: float, fraction: float = 0.1) -> float:
        """``base`` perturbed by a uniform +/- ``fraction`` multiplier."""
        if base < 0:
            raise ValueError("base must be non-negative")
        return base * self.get(name).uniform(1.0 - fraction, 1.0 + fraction)
