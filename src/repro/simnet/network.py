"""Nodes, links and routing: the emulated network fabric.

A :class:`Network` is a graph of named :class:`Node` objects joined by
:class:`Link` objects.  Each link direction is an independent Click-style
element chain (counter -> bandwidth shaper -> fixed delay), so latency and
bandwidth contention are per-direction, exactly as with the paper's
software router.

The only public transfer primitive is :meth:`Network.transfer`, a
generator that moves a message of ``size`` bytes from ``src`` to ``dst``
along the statically routed shortest path and returns when the last byte
arrives.  Higher layers (HTTP, RMI, JDBC, JMS) are built on it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generator, List, Optional, Tuple

from .kernel import Environment, Event
from .primitives import Resource
from .router import BandwidthShaper, Counter, ElementChain, FixedDelay, Packet

__all__ = ["Node", "Link", "Network", "NetworkError", "LinkDown"]


class NetworkError(Exception):
    """Raised for malformed topologies or unroutable transfers."""


class LinkDown(NetworkError):
    """Raised when a transfer hits a partitioned link.

    The fault-injection layer (:mod:`repro.faults`) partitions links for
    scheduled windows; any transfer whose route crosses a downed link
    fails at that hop.  Messages already past the hop complete normally —
    the partition severs new hops, not in-flight bytes.
    """

    def __init__(self, link_name: str, src: str, dst: str, kind: str):
        super().__init__(
            f"link {link_name} is down: cannot carry {kind} traffic {src}->{dst}"
        )
        self.link_name = link_name
        self.src = src
        self.dst = dst
        self.kind = kind


class Node:
    """A physical machine: hosts processes and owns CPU capacity.

    ``cpus`` models the testbed's dual-processor Pentium III workstations;
    compute work on the node serializes through the :attr:`cpu` resource.
    """

    def __init__(self, env: Environment, name: str, cpus: int = 2, cpu_speed: float = 1.0):
        if cpu_speed <= 0:
            raise ValueError("cpu_speed must be positive")
        self.env = env
        self.name = name
        self.cpu_speed = cpu_speed
        self.cpu = Resource(env, capacity=cpus, name=f"{name}.cpu")
        self.tags: set = set()

    def compute(self, work_ms: float) -> Generator[Event, None, None]:
        """Occupy one CPU for ``work_ms`` (scaled by the node's speed)."""
        if work_ms < 0:
            raise ValueError("work_ms must be non-negative")
        if work_ms == 0:
            return
        yield from self.cpu.use(work_ms / self.cpu_speed)

    def cpu_utilization(self) -> float:
        """Mean CPU utilization since simulation start (0..1)."""
        return self.cpu.utilization()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name}>"


class Link:
    """A bidirectional link; each direction has its own element chain."""

    def __init__(
        self,
        env: Environment,
        a: Node,
        b: Node,
        latency: float,
        bandwidth: float,
        name: str = "",
    ):
        """``latency`` in ms one-way; ``bandwidth`` in bytes/ms per direction."""
        self.env = env
        self.a = a
        self.b = b
        self.name = name or f"{a.name}<->{b.name}"
        self.latency = latency
        self.bandwidth = bandwidth
        self._chains: Dict[Tuple[str, str], ElementChain] = {}
        for src, dst in ((a.name, b.name), (b.name, a.name)):
            self._chains[(src, dst)] = ElementChain(
                [Counter(), BandwidthShaper(env, bandwidth), FixedDelay(env, latency)]
            )
        # -- fault-injection state (see repro.faults) --------------------
        # ``faulted`` is the single flag the transfer hot path checks; the
        # individual fields only matter once it is set, so fault-free runs
        # pay one attribute test per hop and nothing else.
        self.up = True
        self.extra_latency = 0.0
        self.latency_jitter = 0.0
        self.loss_probability = 0.0
        self.faulted = False
        self._fault_rng = None  # random.Random for jitter/loss draws
        self.dropped_packets = 0

    # -- fault state (driven by repro.faults.injector) ----------------------
    def _refresh_faulted(self) -> None:
        self.faulted = (
            not self.up
            or self.extra_latency > 0.0
            or self.latency_jitter > 0.0
            or self.loss_probability > 0.0
        )

    def set_down(self, down: bool = True) -> None:
        """Partition (or heal) the link in both directions."""
        self.up = not down
        self._refresh_faulted()

    def set_latency_fault(self, extra_ms: float, jitter_ms: float = 0.0, rng=None) -> None:
        """Add ``extra_ms`` (+- uniform ``jitter_ms``) to every hop."""
        if extra_ms < 0 or jitter_ms < 0:
            raise NetworkError("latency fault must be non-negative")
        if jitter_ms > 0 and rng is None:
            raise NetworkError("latency jitter needs a seeded rng")
        self.extra_latency = extra_ms
        self.latency_jitter = jitter_ms
        if rng is not None:
            self._fault_rng = rng
        self._refresh_faulted()

    def clear_latency_fault(self) -> None:
        self.extra_latency = 0.0
        self.latency_jitter = 0.0
        self._refresh_faulted()

    def set_loss(self, probability: float, rng) -> None:
        """Drop each crossing packet with ``probability`` (seeded draws)."""
        if not 0.0 <= probability <= 1.0:
            raise NetworkError("loss probability must be within [0, 1]")
        if probability > 0 and rng is None:
            raise NetworkError("packet loss needs a seeded rng")
        self.loss_probability = probability
        if rng is not None:
            self._fault_rng = rng
        self._refresh_faulted()

    def clear_loss(self) -> None:
        self.loss_probability = 0.0
        self._refresh_faulted()

    def chain(self, src: str, dst: str) -> ElementChain:
        try:
            return self._chains[(src, dst)]
        except KeyError:
            raise NetworkError(f"link {self.name} does not join {src}->{dst}") from None

    def counter(self, src: str, dst: str) -> Counter:
        element = self.chain(src, dst).find(Counter)
        assert element is not None
        return element

    def traverse(self, src: str, dst: str, packet: Packet):
        yield from self.chain(src, dst).traverse(packet)


class Network:
    """The network graph plus static shortest-path routing."""

    def __init__(self, env: Environment):
        self.env = env
        self.nodes: Dict[str, Node] = {}
        self._adjacency: Dict[str, List[Tuple[str, Link]]] = {}
        self._routes: Dict[Tuple[str, str], List[Link]] = {}
        # (src, dst) -> ordered per-hop (link, chain) pairs; saves
        # re-deriving hop direction and chain lookups on every transfer,
        # and keeps the owning link at hand for fault-state checks.
        self._hop_chains: Dict[Tuple[str, str], List[Tuple[Link, ElementChain]]] = {}
        self.total_transfers = 0

    # -- construction ------------------------------------------------------
    def add_node(self, name: str, cpus: int = 2, cpu_speed: float = 1.0) -> Node:
        if name in self.nodes:
            raise NetworkError(f"duplicate node name {name!r}")
        node = Node(self.env, name, cpus=cpus, cpu_speed=cpu_speed)
        self.nodes[name] = node
        self._adjacency[name] = []
        return node

    def add_link(self, a: str, b: str, latency: float, bandwidth: float, name: str = "") -> Link:
        if a not in self.nodes or b not in self.nodes:
            raise NetworkError(f"link endpoints must exist: {a!r}, {b!r}")
        if a == b:
            raise NetworkError("cannot link a node to itself")
        link = Link(self.env, self.nodes[a], self.nodes[b], latency, bandwidth, name=name)
        self._adjacency[a].append((b, link))
        self._adjacency[b].append((a, link))
        self._routes.clear()
        self._hop_chains.clear()
        return link

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def link_between(self, a: str, b: str) -> Link:
        """The direct link joining two adjacent nodes (fault targeting)."""
        for neighbor, link in self._adjacency.get(a, ()):
            if neighbor == b:
                return link
        raise NetworkError(f"no direct link between {a!r} and {b!r}")

    # -- routing -------------------------------------------------------------
    def route(self, src: str, dst: str) -> List[Link]:
        """The hop-minimal path from ``src`` to ``dst`` (cached)."""
        if src == dst:
            return []
        cached = self._routes.get((src, dst))
        if cached is not None:
            return cached
        # Breadth-first search over the (small) graph.
        previous: Dict[str, Tuple[str, Link]] = {}
        frontier = deque([src])
        seen = {src}
        while frontier:
            current = frontier.popleft()
            if current == dst:
                break
            for neighbor, link in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    previous[neighbor] = (current, link)
                    frontier.append(neighbor)
        if dst not in previous:
            raise NetworkError(f"no route from {src!r} to {dst!r}")
        path: List[Link] = []
        cursor = dst
        while cursor != src:
            parent, link = previous[cursor]
            path.append(link)
            cursor = parent
        path.reverse()
        self._routes[(src, dst)] = path
        return path

    def path_latency(self, src: str, dst: str) -> float:
        """Sum of propagation latencies along the route (no queueing)."""
        return sum(link.latency for link in self.route(src, dst))

    # -- transfer --------------------------------------------------------------
    def transfer(
        self,
        src: str,
        dst: str,
        size: int,
        kind: str = "data",
        meta: Optional[dict] = None,
    ) -> Generator[Event, None, Packet]:
        """Move ``size`` bytes from ``src`` to ``dst``; returns the packet.

        Store-and-forward over each hop: the caller resumes when the
        message has fully arrived at ``dst``.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        if src == dst:
            # Loopback: same-node IPC is effectively free at this scale.
            return Packet(src, dst, size, kind, self.env.now, meta)
        self.total_transfers += 1
        packet = Packet(src, dst, size, kind, self.env.now, meta)
        hops = self._hop_chains.get((src, dst))
        if hops is None:
            hops = []
            hop_src = src
            for link in self.route(src, dst):
                hop_dst = link.b.name if link.a.name == hop_src else link.a.name
                hops.append((link, link.chain(hop_src, hop_dst)))
                hop_src = hop_dst
            self._hop_chains[(src, dst)] = hops
        for link, chain in hops:
            if link.faulted:
                yield from self._faulted_hop(link, chain, packet)
            else:
                yield from chain.traverse(packet)
        return packet

    def _faulted_hop(self, link: Link, chain: ElementChain, packet: Packet):
        """One hop over a link with active fault state (cold path).

        Partition and loss are decided at hop entry — a message already
        past the hop when the fault begins is unaffected.  Loss and
        jitter draws come from the injector's named RNG streams, so runs
        are byte-identical for a given master seed regardless of worker
        count; fault-free links never draw at all.
        """
        from .router import PacketLoss

        if not link.up:
            raise LinkDown(link.name, packet.src, packet.dst, packet.kind)
        if link.loss_probability > 0.0:
            if link._fault_rng.random() < link.loss_probability:
                link.dropped_packets += 1
                raise PacketLoss(packet)
        yield from chain.traverse(packet)
        extra = link.extra_latency
        if link.latency_jitter > 0.0:
            extra += link._fault_rng.uniform(0.0, link.latency_jitter)
        if extra > 0.0:
            yield self.env.sleep(extra)

    # -- monitoring ---------------------------------------------------------
    def traffic_report(self) -> Dict[str, Dict[str, tuple]]:
        """Per-link, per-direction (packets, bytes) counts."""
        report: Dict[str, Dict[str, tuple]] = {}
        seen = set()
        for entries in self._adjacency.values():
            for _neighbor, link in entries:
                if id(link) in seen:
                    continue
                seen.add(id(link))
                directions = {}
                for (dsrc, ddst), chain in link._chains.items():
                    counter = chain.find(Counter)
                    directions[f"{dsrc}->{ddst}"] = (counter.packets, counter.bytes)
                report[link.name] = directions
        return report
