"""The paper's testbed topology.

Section 3.1: three application servers (one *main*, co-located with the
database; two *edge*) separated by an emulated WAN — 100 ms latency each
way, 100 Mbit/s maximum combined bandwidth — plus nine client machines,
three on each server's LAN.  The WAN is emulated by a software router;
here all wide-area traffic funnels through a ``router`` node whose access
link enforces the combined bandwidth cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from .kernel import Environment
from .network import Network

__all__ = [
    "TestbedConfig",
    "TopologyOverrides",
    "Testbed",
    "build_testbed",
    "MBIT_PER_S",
]

# 1 Mbit/s expressed in bytes per millisecond.
MBIT_PER_S = 1_000_000 / 8 / 1000.0


@dataclass
class TestbedConfig:
    """Knobs for the emulated wide-area testbed (defaults match the paper)."""

    __test__ = False  # not a pytest test class despite the Test* name

    wan_latency: float = 100.0  # ms one-way (paper: "100 ms latency each way")
    wan_bandwidth: float = 100 * MBIT_PER_S  # bytes/ms ("100 Mbit/s combined")
    lan_latency: float = 0.25  # ms one-way
    lan_bandwidth: float = 100 * MBIT_PER_S
    clients_per_group: int = 3
    server_cpus: int = 2  # dual-processor Pentium III workstations
    db_cpus: int = 2
    db_colocated: bool = False  # RUBiS tests ran MySQL on the main server
    edge_servers: int = 2


@dataclass(frozen=True)
class TopologyOverrides:
    """CLI-supplied deviations from an experiment's canned testbed config.

    ``None`` means "keep the experiment's calibrated value"; a set field
    replaces it.  Picklable, so it rides inside parallel cell tasks.
    """

    edges: Optional[int] = None
    wan_latency: Optional[float] = None
    clients_per_group: Optional[int] = None

    @property
    def empty(self) -> bool:
        return (
            self.edges is None
            and self.wan_latency is None
            and self.clients_per_group is None
        )

    def apply(self, config: TestbedConfig) -> TestbedConfig:
        """A new config with the non-``None`` overrides applied."""
        changes = {}
        if self.edges is not None:
            changes["edge_servers"] = int(self.edges)
        if self.wan_latency is not None:
            changes["wan_latency"] = float(self.wan_latency)
        if self.clients_per_group is not None:
            changes["clients_per_group"] = int(self.clients_per_group)
        return replace(config, **changes) if changes else config


@dataclass
class Testbed:
    """Handle to the built network plus well-known node names."""

    __test__ = False  # not a pytest test class despite the Test* name

    env: Environment
    network: Network
    config: TestbedConfig
    main_server: str = "main"
    db_server: str = "db"
    router: str = "router"
    edge_servers: List[str] = field(default_factory=list)
    client_nodes: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def app_servers(self) -> List[str]:
        """All application-server node names, main first."""
        return [self.main_server] + list(self.edge_servers)

    def clients_of(self, server: str) -> List[str]:
        """The client machines co-located with ``server``'s LAN."""
        return self.client_nodes[server]

    def is_wide_area(self, a: str, b: str) -> bool:
        """True when the a<->b path crosses the emulated WAN."""
        if a == b:
            return False
        return self.network.path_latency(a, b) >= self.config.wan_latency


def build_testbed(env: Environment, config: TestbedConfig = None) -> Testbed:
    """Construct the section-3.1 testbed on a fresh :class:`Network`."""
    config = config or TestbedConfig()
    network = Network(env)

    main = network.add_node("main", cpus=config.server_cpus)
    main.tags.add("app-server")
    router = network.add_node("router", cpus=1)

    if config.db_colocated:
        # MySQL on the main workstation (the RUBiS setup): the db "node"
        # is the same machine, so JDBC round trips are loopback-free.
        db_name = "main"
    else:
        db = network.add_node("db", cpus=config.db_cpus)
        db.tags.add("db-server")
        db_name = "db"
        network.add_link("main", "db", config.lan_latency, config.lan_bandwidth, name="lan-main-db")

    # The router sits on the main site's LAN; its access link carries all
    # wide-area traffic and therefore enforces the combined bandwidth cap.
    network.add_link("main", "router", config.lan_latency, config.wan_bandwidth, name="lan-main-router")

    testbed = Testbed(env=env, network=network, config=config, db_server=db_name)

    for index in range(config.edge_servers):
        edge_name = f"edge{index + 1}"
        edge = network.add_node(edge_name, cpus=config.server_cpus)
        edge.tags.add("app-server")
        network.add_link(
            edge_name,
            "router",
            config.wan_latency,
            config.wan_bandwidth,
            name=f"wan-{edge_name}",
        )
        testbed.edge_servers.append(edge_name)

    # Client machines: three per application server, on that server's LAN.
    for server in testbed.app_servers:
        group = []
        for index in range(config.clients_per_group):
            client_name = f"client-{server}-{index}"
            client = network.add_node(client_name, cpus=2)
            client.tags.add("client")
            network.add_link(
                client_name,
                server,
                config.lan_latency,
                config.lan_bandwidth,
                name=f"lan-{client_name}",
            )
            group.append(client_name)
        testbed.client_nodes[server] = group

    return testbed
