"""Concurrency primitives built on the simulation kernel.

These model the contended resources of the testbed: CPUs on the
application-server workstations, database connection pools, bean instance
pools, and message queues.

All primitives hand out :class:`~repro.simnet.kernel.Event` objects, so
they compose with ``yield`` / ``yield from`` in process code.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Tuple

from .kernel import Environment, Event, SimulationError

__all__ = ["Resource", "Store", "Semaphore", "Latch", "resource_usage"]


class Semaphore:
    """Counted semaphore.

    ``acquire()`` returns an event that fires when a permit is available;
    ``release()`` returns one permit.  FIFO fairness.
    """

    def __init__(self, env: Environment, permits: int):
        if permits < 0:
            raise ValueError("permits must be non-negative")
        self.env = env
        self._permits = permits
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        """Number of free permits."""
        return self._permits

    @property
    def queue_length(self) -> int:
        """Number of acquirers currently blocked."""
        return len(self._waiters)

    def acquire(self) -> Event:
        event = self.env.event()
        if self._permits > 0 and not self._waiters:
            self._permits -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed()
        else:
            self._permits += 1


class Resource:
    """A capacity-limited resource with monitoring (e.g. a 2-CPU server).

    Typical use from process code::

        with_req = resource.request()
        yield with_req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release()

    or via the :meth:`use` helper which wraps exactly that pattern.

    The resource tracks total busy time so utilization can be reported, as
    the paper does ("CPU utilization never exceeded 40%").
    """

    def __init__(self, env: Environment, capacity: int, name: str = "resource"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._semaphore = Semaphore(env, capacity)
        self._busy = 0
        self._busy_time = 0.0
        self._last_change = env.now
        self._started = env.now
        # Running sum/count instead of a sample list: only the mean is
        # ever reported, and the list grew with every completed request.
        self._wait_total = 0.0
        self._wait_count = 0

    # -- accounting --------------------------------------------------------
    def _account(self) -> None:
        now = self.env.now
        self._busy_time += self._busy * (now - self._last_change)
        self._last_change = now

    @property
    def in_use(self) -> int:
        """Number of units currently held."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Number of requesters currently waiting."""
        return self._semaphore.queue_length

    def utilization(self) -> float:
        """Mean fraction of capacity busy since creation (0..1)."""
        self._account()
        elapsed = self.env.now - self._started
        if elapsed <= 0:
            return 0.0
        return self._busy_time / (elapsed * self.capacity)

    def mean_wait(self) -> float:
        """Mean queueing delay experienced by completed requests (ms)."""
        if not self._wait_count:
            return 0.0
        return self._wait_total / self._wait_count

    # -- protocol ------------------------------------------------------------
    def request(self) -> Event:
        """Event that fires once a unit has been granted to the caller."""
        semaphore = self._semaphore
        if semaphore._permits > 0 and not semaphore._waiters:
            # Uncontended: the grant fires this instant, so do the busy
            # bookkeeping now (same timestamp, zero wait) and skip the
            # per-request callback closure.  Simulated time is identical;
            # _account() at an unchanged `now` accumulates nothing.
            semaphore._permits -= 1
            self._account()
            self._busy += 1
            self._wait_count += 1
            event = Event(self.env)
            event.succeed()
            return event
        start = self.env.now
        event = self.env.event()
        semaphore._waiters.append(event)

        def _granted(_event: Event) -> None:
            self._account()
            self._busy += 1
            self._wait_total += self.env.now - start
            self._wait_count += 1

        event.add_callback(_granted)
        return event

    def release(self) -> None:
        """Return one previously granted unit."""
        if self._busy <= 0:
            raise SimulationError(f"release of un-acquired resource {self.name!r}")
        self._account()
        self._busy -= 1
        self._semaphore.release()

    def use(self, duration: float) -> Generator[Event, Any, None]:
        """Acquire, hold for ``duration`` ms, release.  ``yield from`` this."""
        semaphore = self._semaphore
        if semaphore._permits > 0 and not semaphore._waiters:
            # Uncontended: grant the unit synchronously instead of round-
            # tripping an already-succeeded request event through the
            # ready queue (an allocation plus a full dispatch step for
            # every CPU charge and quiet shaper port).
            semaphore._permits -= 1
            self._account()
            self._busy += 1
            self._wait_count += 1
        else:
            yield self.request()
        try:
            yield self.env.sleep(duration)
        finally:
            self.release()


def resource_usage(resource: Resource, duration: float):
    """Module-level alias of :meth:`Resource.use` for readability."""
    return resource.use(duration)


class Store:
    """Unbounded FIFO queue of items with blocking ``get``.

    Used for message queues (JMS topics deliver into per-subscriber
    stores) and worker in-boxes.
    """

    def __init__(self, env: Environment, name: str = "store"):
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.total_put = 0
        self.total_got = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest blocked getter, if any."""
        self.total_put += 1
        if self._getters:
            getter = self._getters.popleft()
            self.total_got += 1
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (FIFO)."""
        event = self.env.event()
        if self._items:
            self.total_got += 1
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            self.total_got += 1
            return True, self._items.popleft()
        return False, None


class Latch:
    """A count-down latch: fires its event after ``count`` arrivals.

    Used to wait for N parallel replica updates to acknowledge (the
    blocking push-based update protocol of section 4.3).
    """

    def __init__(self, env: Environment, count: int):
        if count < 0:
            raise ValueError("count must be non-negative")
        self.env = env
        self._remaining = count
        self.event = env.event()
        if count == 0:
            self.event.succeed()

    @property
    def remaining(self) -> int:
        return self._remaining

    def count_down(self) -> None:
        if self._remaining <= 0:
            raise SimulationError("latch already open")
        self._remaining -= 1
        if self._remaining == 0:
            self.event.succeed()
