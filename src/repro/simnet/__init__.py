"""Discrete-event simulation substrate: kernel, network, transport, testbed.

This package is self-contained (no dependency on the middleware or the
applications) and reusable for any latency/bandwidth-dominated systems
simulation.
"""

from .kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .monitor import CallRecord, PageStats, ResponseTimeMonitor, Trace
from .network import Link, Network, NetworkError, Node
from .primitives import Latch, Resource, Semaphore, Store
from .rng import Streams
from .router import (
    BandwidthShaper,
    Classifier,
    Counter,
    ElementChain,
    FixedDelay,
    LossElement,
    Packet,
    PacketLoss,
    TokenBucketShaper,
)
from .topology import (
    MBIT_PER_S,
    Testbed,
    TestbedConfig,
    TopologyOverrides,
    build_testbed,
)
from .transport import ACK_SIZE, SYN_SIZE, Connection, ConnectionPool, TransportError

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "CallRecord",
    "PageStats",
    "ResponseTimeMonitor",
    "Trace",
    "Link",
    "Network",
    "NetworkError",
    "Node",
    "Latch",
    "Resource",
    "Semaphore",
    "Store",
    "Streams",
    "BandwidthShaper",
    "Classifier",
    "Counter",
    "ElementChain",
    "FixedDelay",
    "LossElement",
    "Packet",
    "PacketLoss",
    "TokenBucketShaper",
    "MBIT_PER_S",
    "Testbed",
    "TestbedConfig",
    "TopologyOverrides",
    "build_testbed",
    "ACK_SIZE",
    "SYN_SIZE",
    "Connection",
    "ConnectionPool",
    "TransportError",
]
