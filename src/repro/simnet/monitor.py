"""Tracing and measurement hooks.

Two concerns live here:

* :class:`Trace` — an append-only record of inter-component calls
  (RMI, JDBC, JMS deliveries) with enough context for the design-rule
  checker (``repro.core.rules``) to verify, e.g., that a page incurs at
  most one wide-area call.
* :class:`ResponseTimeMonitor` — per-(client-group, page) response-time
  aggregation; this is what the paper's Tables 6/7 report.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CallRecord",
    "Trace",
    "TraceSummary",
    "ResponseTimeMonitor",
    "PageStats",
]


@dataclass
class CallRecord:
    """One inter-tier call observed during a simulation."""

    time: float
    kind: str  # "rmi" | "jdbc" | "jms" | "http" | "lookup"
    src_node: str
    dst_node: str
    target: str  # component or table name
    method: str
    wide_area: bool
    page: Optional[str] = None  # page whose handling triggered the call
    request_id: Optional[int] = None
    duration: float = 0.0


class Trace:
    """Append-only call log with simple query helpers."""

    def __init__(self, enabled: bool = True, max_records: Optional[int] = None):
        self.enabled = enabled
        self.max_records = max_records
        self.records: List[CallRecord] = []
        self.dropped = 0

    def record(self, record: CallRecord) -> None:
        if not self.enabled:
            return
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    # -- queries -------------------------------------------------------------
    def by_kind(self, kind: str) -> List[CallRecord]:
        return [r for r in self.records if r.kind == kind]

    def wide_area_calls(self, kind: Optional[str] = None) -> List[CallRecord]:
        return [
            r
            for r in self.records
            if r.wide_area and (kind is None or r.kind == kind)
        ]

    def calls_per_request(self, kind: str = "rmi", wide_area_only: bool = True) -> Dict[int, int]:
        """request_id -> number of (wide-area) calls of ``kind``."""
        counts: Dict[int, int] = defaultdict(int)
        for record in self.records:
            if record.request_id is None or record.kind != kind:
                continue
            if wide_area_only and not record.wide_area:
                continue
            counts[record.request_id] += 1
        return dict(counts)

    def remote_targets(self) -> set:
        """Names of components that were invoked across the network."""
        return {r.target for r in self.records if r.kind == "rmi" and r.src_node != r.dst_node}

    def summary(self) -> "TraceSummary":
        """A compact, picklable digest of the call log.

        Full traces can hold millions of records; the summary is what the
        parallel experiment runner ships back from worker processes.
        """
        by_kind: Dict[str, int] = defaultdict(int)
        wide_area_by_kind: Dict[str, int] = defaultdict(int)
        for record in self.records:
            by_kind[record.kind] += 1
            if record.wide_area:
                wide_area_by_kind[record.kind] += 1
        return TraceSummary(
            records=len(self.records),
            dropped=self.dropped,
            by_kind=dict(sorted(by_kind.items())),
            wide_area_by_kind=dict(sorted(wide_area_by_kind.items())),
            remote_targets=tuple(sorted(self.remote_targets())),
        )


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate view of a :class:`Trace`, safe to pickle between processes."""

    records: int = 0
    dropped: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    wide_area_by_kind: Dict[str, int] = field(default_factory=dict)
    remote_targets: Tuple[str, ...] = ()
    # Resilience counters (nonzero only under fault injection); kept on
    # the summary so parallel workers ship them home without the trace.
    retries: int = 0
    timeouts: int = 0
    failovers: int = 0
    dropped_updates: int = 0
    # Open-loop arrivals turned away at the admission cap; always zero
    # for closed-loop runs, so their digests are unchanged.
    dropped_sessions: int = 0
    # Span sampling (--obs-sample): rate 1.0 means every session traced,
    # keeping pre-sampling digests unchanged.
    span_sample_rate: float = 1.0
    spans_sampled: int = 0
    spans_skipped: int = 0

    def wide_area_calls(self, kind: Optional[str] = None) -> int:
        if kind is not None:
            return self.wide_area_by_kind.get(kind, 0)
        return sum(self.wide_area_by_kind.values())

    def render(self) -> str:
        """One-line human digest; always states truncation explicitly."""
        kinds = " ".join(
            f"{kind}={count}" for kind, count in sorted(self.by_kind.items())
        )
        wan = self.wide_area_calls()
        line = (
            f"{self.records} calls ({kinds or 'none'}), "
            f"{wan} wide-area, {self.dropped} dropped"
        )
        # Only mention resilience events that actually happened, so the
        # fault-free digest is unchanged.
        for count, noun in (
            (self.retries, "retries"),
            (self.timeouts, "timeouts"),
            (self.failovers, "failovers"),
            (self.dropped_updates, "dropped updates"),
            (self.dropped_sessions, "dropped sessions"),
        ):
            if count:
                line += f", {count} {noun}"
        if self.span_sample_rate < 1.0:
            total = self.spans_sampled + self.spans_skipped
            line += (
                f", spans sampled {self.spans_sampled}/{total} sessions "
                f"(rate {self.span_sample_rate:g})"
            )
        return line


@dataclass
class PageStats:
    """Running response-time statistics for one (group, page) cell."""

    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    min_seen: float = float("inf")
    maximum: float = 0.0
    samples: List[float] = field(default_factory=list)

    def add(self, value: float, keep_sample: bool = False) -> None:
        self.count += 1
        self.total += value
        self.total_sq += value * value
        self.min_seen = min(self.min_seen, value)
        self.maximum = max(self.maximum, value)
        if keep_sample:
            self.samples.append(value)

    @property
    def minimum(self) -> float:
        """Smallest observation; 0.0 for an empty cell (never ``inf``)."""
        return self.min_seen if self.count else 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        return max(0.0, self.total_sq / self.count - mean * mean)

    @property
    def stddev(self) -> float:
        return self.variance ** 0.5

    def percentile(self, q: float) -> float:
        """q in [0, 1]; requires samples to have been kept.

        Linearly interpolates between order statistics, so e.g. the median
        of ``[10, 20]`` is 15 rather than a truncated 10.
        """
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        position = min(max(q, 0.0), 1.0) * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction

    def merge(self, other: "PageStats") -> None:
        """Fold ``other``'s observations into this cell in place."""
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq
        self.min_seen = min(self.min_seen, other.min_seen)
        self.maximum = max(self.maximum, other.maximum)
        if other.samples:
            self.samples.extend(other.samples)

    def to_dict(self) -> dict:
        """JSON-safe snapshot (``inf`` min of an empty cell maps to None)."""
        return {
            "count": self.count,
            "total": self.total,
            "total_sq": self.total_sq,
            "min_seen": None if self.min_seen == float("inf") else self.min_seen,
            "maximum": self.maximum,
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PageStats":
        min_seen = data.get("min_seen")
        return cls(
            count=data["count"],
            total=data["total"],
            total_sq=data["total_sq"],
            min_seen=float("inf") if min_seen is None else min_seen,
            maximum=data["maximum"],
            samples=list(data.get("samples") or ()),
        )


class ResponseTimeMonitor:
    """Aggregates per-page response times by client group.

    Groups are labels such as ``"local"`` / ``"remote"`` combined with the
    session type (``"browser"`` / ``"buyer"`` / ``"bidder"``), matching how
    Tables 6/7 and Figures 7/8 slice the data.
    """

    def __init__(self, keep_samples: bool = False, warmup: float = 0.0):
        self.keep_samples = keep_samples
        self.warmup = warmup
        self._stats: Dict[Tuple[str, str], PageStats] = defaultdict(PageStats)
        self._session_stats: Dict[str, PageStats] = defaultdict(PageStats)
        self.discarded_warmup = 0

    def observe(self, time: float, group: str, page: str, response_time: float) -> None:
        """Record one page response; samples during warm-up are dropped."""
        if time < self.warmup:
            self.discarded_warmup += 1
            return
        self._stats[(group, page)].add(response_time, keep_sample=self.keep_samples)
        self._session_stats[group].add(response_time, keep_sample=self.keep_samples)

    # -- reporting -----------------------------------------------------------
    def pages(self, group: str) -> List[str]:
        return sorted({page for (g, page) in self._stats if g == group})

    def groups(self) -> List[str]:
        return sorted(self._session_stats)

    def page_stats(self, group: str, page: str) -> PageStats:
        return self._stats[(group, page)]

    def mean(self, group: str, page: str) -> float:
        return self._stats[(group, page)].mean

    def session_mean(self, group: str) -> float:
        """Mean response time over every request made by ``group``."""
        return self._session_stats[group].mean

    def table(self) -> Dict[str, Dict[str, float]]:
        """group -> {page -> mean response time}."""
        result: Dict[str, Dict[str, float]] = defaultdict(dict)
        for (group, page), stats in self._stats.items():
            result[group][page] = stats.mean
        return dict(result)

    def merged(self, other: "ResponseTimeMonitor") -> "ResponseTimeMonitor":
        """A new monitor combining this one's observations with ``other``'s.

        Kept samples from either source survive the merge (so percentiles
        keep working), and warm-up discard counters accumulate.  The
        merged monitor keeps samples if either source did.
        """
        merged = ResponseTimeMonitor(
            keep_samples=self.keep_samples or other.keep_samples,
            warmup=max(self.warmup, other.warmup),
        )
        for source in (self, other):
            merged.discarded_warmup += source.discarded_warmup
            for (group, page), stats in source._stats.items():
                merged._stats[(group, page)].merge(stats)
            for group, stats in source._session_stats.items():
                merged._session_stats[group].merge(stats)
        return merged

    # -- serialization -------------------------------------------------------
    def to_state(self) -> dict:
        """A picklable, JSON-safe snapshot of every cell.

        Cells are emitted in sorted key order so the state (and anything
        derived from it) is identical however the observations arrived —
        the property the parallel experiment runner's determinism rests on.
        """
        return {
            "keep_samples": self.keep_samples,
            "warmup": self.warmup,
            "discarded_warmup": self.discarded_warmup,
            "stats": [
                [group, page, stats.to_dict()]
                for (group, page), stats in sorted(self._stats.items())
            ],
            "session_stats": [
                [group, stats.to_dict()]
                for group, stats in sorted(self._session_stats.items())
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "ResponseTimeMonitor":
        """Rebuild a monitor from :meth:`to_state` output."""
        monitor = cls(
            keep_samples=state.get("keep_samples", False),
            warmup=state.get("warmup", 0.0),
        )
        monitor.discarded_warmup = state.get("discarded_warmup", 0)
        for group, page, stats in state.get("stats", ()):
            monitor._stats[(group, page)] = PageStats.from_dict(stats)
        for group, stats in state.get("session_stats", ()):
            monitor._session_stats[group] = PageStats.from_dict(stats)
        return monitor
