"""Tracing and measurement hooks.

Two concerns live here:

* :class:`Trace` — an append-only record of inter-component calls
  (RMI, JDBC, JMS deliveries) with enough context for the design-rule
  checker (``repro.core.rules``) to verify, e.g., that a page incurs at
  most one wide-area call.
* :class:`ResponseTimeMonitor` — per-(client-group, page) response-time
  aggregation; this is what the paper's Tables 6/7 report.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["CallRecord", "Trace", "ResponseTimeMonitor", "PageStats"]


@dataclass
class CallRecord:
    """One inter-tier call observed during a simulation."""

    time: float
    kind: str  # "rmi" | "jdbc" | "jms" | "http" | "lookup"
    src_node: str
    dst_node: str
    target: str  # component or table name
    method: str
    wide_area: bool
    page: Optional[str] = None  # page whose handling triggered the call
    request_id: Optional[int] = None
    duration: float = 0.0


class Trace:
    """Append-only call log with simple query helpers."""

    def __init__(self, enabled: bool = True, max_records: Optional[int] = None):
        self.enabled = enabled
        self.max_records = max_records
        self.records: List[CallRecord] = []
        self.dropped = 0

    def record(self, record: CallRecord) -> None:
        if not self.enabled:
            return
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    # -- queries -------------------------------------------------------------
    def by_kind(self, kind: str) -> List[CallRecord]:
        return [r for r in self.records if r.kind == kind]

    def wide_area_calls(self, kind: Optional[str] = None) -> List[CallRecord]:
        return [
            r
            for r in self.records
            if r.wide_area and (kind is None or r.kind == kind)
        ]

    def calls_per_request(self, kind: str = "rmi", wide_area_only: bool = True) -> Dict[int, int]:
        """request_id -> number of (wide-area) calls of ``kind``."""
        counts: Dict[int, int] = defaultdict(int)
        for record in self.records:
            if record.request_id is None or record.kind != kind:
                continue
            if wide_area_only and not record.wide_area:
                continue
            counts[record.request_id] += 1
        return dict(counts)

    def remote_targets(self) -> set:
        """Names of components that were invoked across the network."""
        return {r.target for r in self.records if r.kind == "rmi" and r.src_node != r.dst_node}


@dataclass
class PageStats:
    """Running response-time statistics for one (group, page) cell."""

    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    minimum: float = float("inf")
    maximum: float = 0.0
    samples: List[float] = field(default_factory=list)

    def add(self, value: float, keep_sample: bool = False) -> None:
        self.count += 1
        self.total += value
        self.total_sq += value * value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if keep_sample:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        return max(0.0, self.total_sq / self.count - mean * mean)

    @property
    def stddev(self) -> float:
        return self.variance ** 0.5

    def percentile(self, q: float) -> float:
        """q in [0, 1]; requires samples to have been kept."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, max(0, int(q * (len(ordered) - 1))))
        return ordered[index]


class ResponseTimeMonitor:
    """Aggregates per-page response times by client group.

    Groups are labels such as ``"local"`` / ``"remote"`` combined with the
    session type (``"browser"`` / ``"buyer"`` / ``"bidder"``), matching how
    Tables 6/7 and Figures 7/8 slice the data.
    """

    def __init__(self, keep_samples: bool = False, warmup: float = 0.0):
        self.keep_samples = keep_samples
        self.warmup = warmup
        self._stats: Dict[Tuple[str, str], PageStats] = defaultdict(PageStats)
        self._session_stats: Dict[str, PageStats] = defaultdict(PageStats)
        self.discarded_warmup = 0

    def observe(self, time: float, group: str, page: str, response_time: float) -> None:
        """Record one page response; samples during warm-up are dropped."""
        if time < self.warmup:
            self.discarded_warmup += 1
            return
        self._stats[(group, page)].add(response_time, keep_sample=self.keep_samples)
        self._session_stats[group].add(response_time, keep_sample=self.keep_samples)

    # -- reporting -----------------------------------------------------------
    def pages(self, group: str) -> List[str]:
        return sorted({page for (g, page) in self._stats if g == group})

    def groups(self) -> List[str]:
        return sorted(self._session_stats)

    def page_stats(self, group: str, page: str) -> PageStats:
        return self._stats[(group, page)]

    def mean(self, group: str, page: str) -> float:
        return self._stats[(group, page)].mean

    def session_mean(self, group: str) -> float:
        """Mean response time over every request made by ``group``."""
        return self._session_stats[group].mean

    def table(self) -> Dict[str, Dict[str, float]]:
        """group -> {page -> mean response time}."""
        result: Dict[str, Dict[str, float]] = defaultdict(dict)
        for (group, page), stats in self._stats.items():
            result[group][page] = stats.mean
        return dict(result)

    def merged(self, other: "ResponseTimeMonitor") -> "ResponseTimeMonitor":
        """A new monitor combining this one's observations with ``other``'s."""
        merged = ResponseTimeMonitor(keep_samples=False, warmup=0.0)
        for source in (self, other):
            for (group, page), stats in source._stats.items():
                target = merged._stats[(group, page)]
                target.count += stats.count
                target.total += stats.total
                target.total_sq += stats.total_sq
                target.minimum = min(target.minimum, stats.minimum)
                target.maximum = max(target.maximum, stats.maximum)
            for group, stats in source._session_stats.items():
                target = merged._session_stats[group]
                target.count += stats.count
                target.total += stats.total
                target.total_sq += stats.total_sq
                target.minimum = min(target.minimum, stats.minimum)
                target.maximum = max(target.maximum, stats.maximum)
        return merged
