"""Deployment orchestration: build a running distributed system.

``distribute()`` is the library's top-level entry point: given a testbed,
an application descriptor, a placement policy (or a pattern level, which
compiles to its canned policy), and a populated database, it returns a
:class:`DeployedSystem` with application servers stood up on their
nodes, containers instantiated and wired, replicas and caches
registered, the JMS provider and update propagator configured — ready
for clients to issue page requests against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..faults.stats import ResilienceStats
from ..middleware.costs import MiddlewareCosts
from ..middleware.descriptors import ApplicationDescriptor, ComponentKind
from ..middleware.jms import JmsProvider
from ..middleware.server import AppServer
from ..middleware.updates import UPDATE_TOPIC, UpdatePropagator
from ..obs.metrics import MetricsRegistry
from ..obs.spans import SpanRecorder
from ..rdbms.cluster import DataTierCluster, MAIN_SEAT, build_cluster
from ..rdbms.engine import Database
from ..rdbms.server import DatabaseServer, DbCostModel
from ..simnet.kernel import Environment
from ..simnet.rng import Streams
from ..simnet.monitor import Trace
from ..simnet.topology import Testbed
from .automation import AutomationReport, apply_policy
from .patterns import PatternLevel
from .planner import DeploymentPlan, plan_deployment
from .policy import PlacementPolicy, level_policy

__all__ = ["DeployedSystem", "distribute"]


@dataclass
class DeployedSystem:
    """A running deployment: servers, database, plan, and wiring evidence."""

    env: Environment
    testbed: Testbed
    application: ApplicationDescriptor
    level: PatternLevel
    servers: Dict[str, AppServer]
    db_server: DatabaseServer
    plan: DeploymentPlan
    automation: AutomationReport
    trace: Optional[Trace] = None
    spans: Optional["SpanRecorder"] = None
    metrics: Optional["MetricsRegistry"] = None
    resilience: Optional[ResilienceStats] = None
    policy: Optional[PlacementPolicy] = None
    # Sharded/replicated data tier; None under a single-instance policy.
    cluster: Optional[DataTierCluster] = None

    @property
    def main(self) -> AppServer:
        return self.servers[self.plan.main]

    @property
    def edges(self) -> List[AppServer]:
        return [self.servers[name] for name in self.plan.edges]

    def server_for_client(self, client_node: str) -> AppServer:
        """The application server on the client's LAN (session affinity)."""
        for server_name, clients in self.testbed.client_nodes.items():
            if client_node in clients:
                return self.servers[server_name]
        raise KeyError(f"{client_node!r} is not a client node of this testbed")

    def entry_server_for(self, client_node: str) -> AppServer:
        """Where the client actually connects.

        Clients use the server on their LAN when the plan marks it as an
        entry server (it hosts the complete web tier); otherwise they
        cross the WAN to the main server — in the centralized
        configuration "the main server got all 30 HTTP requests per
        second, whereas the edge servers were not used at all" (§4.1).
        """
        server = self.server_for_client(client_node)
        if server.name in self.plan.entry_servers:
            return server
        return self.main

    def warm_replicas(self) -> int:
        """Preload every read-only replica with current database state.

        Equivalent to the paper's measurement-excluded warm-up phase
        ("several minutes of system warm-up, if needed", §3.3) having
        touched every entity; returns the number of entries loaded.
        """
        loaded = 0
        database = self.db_server.database
        for server in self.servers.values():
            for name in self.plan.replicas:
                container = server.readonly_container(name)
                if container is None:
                    continue
                table = database.table(container.descriptor.table)
                loaded += container.preload(table.scan())
        return loaded

    def warm_query_caches(self, params_by_query: Dict[str, list]) -> int:
        """Preload query caches for the given parameter tuples.

        Executes each query once against the (pure) engine and installs
        the rows on every server with an active cache; returns the number
        of cache entries installed.  Like :meth:`warm_replicas`, this
        stands in for warm-up traffic excluded from measurement.
        """
        installed = 0
        database = self.db_server.database
        for query_id, params_list in params_by_query.items():
            sql = self.application.queries.get(query_id)
            if sql is None:
                continue
            for params in params_list:
                params = tuple(params)
                rows = [dict(r) for r in database.execute(sql, params).rows]
                for server in self.servers.values():
                    cache = server.query_cache
                    if cache is not None and cache.handles(query_id):
                        cache.apply_refresh(query_id, params, rows)
                        installed += 1
        return installed

    def utilization_report(self) -> Dict[str, float]:
        report = {
            name: server.node.cpu_utilization()
            for name, server in self.servers.items()
        }
        report[self.db_server.node.name + " (db)"] = self.db_server.node.cpu_utilization()
        return report


def distribute(
    env: Environment,
    testbed: Testbed,
    application: ApplicationDescriptor,
    policy: Union[PlacementPolicy, PatternLevel, int],
    database: Database,
    costs: Optional[MiddlewareCosts] = None,
    db_cost_model: Optional[DbCostModel] = None,
    trace: Optional[Trace] = None,
    spans: Optional[SpanRecorder] = None,
    metrics: Optional[MetricsRegistry] = None,
    streams: Optional[Streams] = None,
) -> DeployedSystem:
    """Deploy ``application`` across the testbed under ``policy``.

    ``policy`` is a :class:`PlacementPolicy`; a bare
    :class:`PatternLevel` (or int) selects the matching canned policy,
    which is how the paper's five configurations run.  ``streams`` is
    only consulted when the policy declares a ``data_tier`` block (the
    cluster's election timers draw from named streams).
    """
    if not isinstance(policy, PlacementPolicy):
        policy = level_policy(PatternLevel(policy), application)
    level = policy.effective_level()
    costs = costs or MiddlewareCosts()

    # 1. Extended-descriptor automation (§5) tailors the app to the policy.
    automation = apply_policy(application, policy)

    # 2. Placement.
    plan = plan_deployment(
        application, testbed.main_server, list(testbed.edge_servers), policy
    )

    # 3. Database server on its node.
    db_server = DatabaseServer(
        env, testbed.network.node(testbed.db_server), database, cost_model=db_cost_model
    )

    # 3b. Sharded/replicated data tier, only when the policy declares one.
    # Seats are the main site plus one per edge; each raft member gets
    # its own seeded Database copy, so the original single-instance
    # database (still used for replica/cache warm-up at t=0) is untouched.
    cluster = None
    if policy.data_tier is not None:
        seats = [(MAIN_SEAT, testbed.network.node(testbed.db_server))] + [
            (name, testbed.network.node(name)) for name in testbed.edge_servers
        ]
        cluster = build_cluster(
            env,
            testbed.network,
            policy.data_tier,
            seats,
            database,
            streams or Streams(),
            cost_model=db_cost_model,
        )

    # 4. Application servers.
    servers: Dict[str, AppServer] = {}
    for server_name in plan.all_servers:
        server = AppServer(
            env=env,
            node=testbed.network.node(server_name),
            application=application,
            costs=costs,
            db_server=db_server,
            trace=trace,
            is_main=(server_name == plan.main),
            wide_area_of=testbed.is_wide_area,
            spans=spans,
            metrics=metrics,
        )
        server.attach_network(testbed.network)
        server.cluster = cluster
        servers[server_name] = server
    main = servers[plan.main]
    for server in servers.values():
        if server is not main:
            server.central = main

    # One ResilienceStats shared by every server: retries, timeouts and
    # staleness are system-wide observations, and crash handling needs
    # each server to know its peers so their idle sockets can be dropped.
    resilience = ResilienceStats()
    for server in servers.values():
        server.resilience = resilience
        server.peers = {
            name: other for name, other in servers.items() if other is not server
        }

    # 5. Messaging provider lives on the main server.
    jms = JmsProvider(env, main)
    jms.metrics = metrics
    for server in servers.values():
        server.jms = jms

    # 6. Containers per the plan.
    for name, placement in plan.placements.items():
        descriptor = application.components[name]
        for server_name in placement:
            servers[server_name].deploy(descriptor)

    # 7. Read-only replicas.
    replica_servers: List[str] = []
    for name, placement in plan.replicas.items():
        descriptor = application.components[name]
        for server_name in placement:
            servers[server_name].deploy(descriptor, replica=True)
            if server_name not in replica_servers:
                replica_servers.append(server_name)

    # 8. Query caches.
    for server_name in plan.query_cache_servers:
        manager = servers[server_name].enable_query_cache()
        for cache in application.query_caches.values():
            manager.register(cache)
        if server_name not in replica_servers:
            replica_servers.append(server_name)

    # 8b. Transactional method caches (level 6): one cache per server,
    # fed by the same invalidation bus as replicas and query caches.
    method_cache_servers: List[str] = []
    for name in sorted(plan.method_caches):
        descriptor = application.components[name]
        for server_name in plan.method_caches[name]:
            cache = servers[server_name].enable_method_cache(mode=policy.update_mode)
            cache.register(descriptor.name, descriptor.cached_methods)
            if server_name not in method_cache_servers:
                method_cache_servers.append(server_name)
            if server_name not in replica_servers:
                replica_servers.append(server_name)

    # 9. Update propagation from the main server to every replica host.
    if replica_servers:
        propagator = UpdatePropagator(
            main, targets=[servers[name] for name in replica_servers]
        )
        if method_cache_servers:
            # Method caches invalidate by table footprint, so every
            # commit's write set must ride the bus from now on.
            propagator.tracks_table_writes = True
            propagator.table_update_mode = policy.update_mode
        main.update_propagator = propagator

    # 10. Subscribe message-driven beans to their topics.
    for name, placement in plan.placements.items():
        descriptor = application.components[name]
        if descriptor.kind != ComponentKind.MESSAGE_DRIVEN:
            continue
        if not policy.async_updates and descriptor.topic == UPDATE_TOPIC:
            continue  # the subscriber exists but is idle under sync push
        for server_name in placement:
            topic = jms.topic(descriptor.topic)
            topic.subscribe(servers[server_name], servers[server_name].container(name))

    return DeployedSystem(
        env=env,
        testbed=testbed,
        application=application,
        level=level,
        servers=servers,
        db_server=db_server,
        plan=plan,
        automation=automation,
        trace=trace,
        spans=spans,
        metrics=metrics,
        resilience=resilience,
        policy=policy,
        cluster=cluster,
    )
