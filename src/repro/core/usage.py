"""Service usage patterns (§3.2).

A *service usage pattern* is "a frequently executed scenario of service
invocation, which reflects typical client behaviour".  Two shapes cover
the paper's four patterns:

* :class:`WeightedPattern` — browsers: sessions of N page requests drawn
  from a weighted mix, with structural constraints (an Item page always
  follows a Product page, every session starts at Main, ...);
* :class:`ScriptedPattern` — buyers/bidders: a fixed sequence of pages
  emphasizing the write path.

Patterns produce :class:`PageVisit` streams; the workload generator
turns them into timed HTTP requests.
"""

from __future__ import annotations

from bisect import bisect
from dataclasses import dataclass, field
from itertools import accumulate
from typing import Callable, Dict, List, Optional, Sequence

from ..simnet.rng import Streams

__all__ = [
    "PageVisit",
    "UsagePattern",
    "WeightedPattern",
    "ScriptedPattern",
    "PatternError",
]


class PatternError(Exception):
    """Raised for malformed pattern definitions."""


@dataclass
class PageVisit:
    """One page request within a session."""

    page: str
    params: Dict[str, object] = field(default_factory=dict)


class UsagePattern:
    """Base class: generates the page sequence of one client session."""

    name = "pattern"

    def session(self, streams: Streams, session_index: int) -> List[PageVisit]:
        """The ordered page visits of one session."""
        raise NotImplementedError


class WeightedPattern(UsagePattern):
    """Browser-style sessions: weighted page mix with follow-on rules.

    ``weights`` maps page name to relative request frequency (the
    percentages of Tables 2 and 4).  ``params_for`` supplies page
    parameters, and may depend on the previous visit so that "a request
    of an Item page always goes after a request for a Product page, such
    that the requested item belongs to the previously requested product".
    ``follows`` optionally forces a page to be preceded by another: when
    the sampler draws page P with ``follows[P] = Q`` and the previous
    page was not Q, a Q visit is inserted first (still counted toward the
    session length).
    """

    def __init__(
        self,
        name: str,
        length: int,
        weights: Dict[str, float],
        first_page: str,
        params_for: Optional[Callable] = None,
        follows: Optional[Dict[str, str]] = None,
    ):
        if length < 1:
            raise PatternError("session length must be at least 1")
        if first_page not in weights and first_page is not None:
            # The entry page may have zero sampling weight; that is fine.
            pass
        if not weights:
            raise PatternError("weights must not be empty")
        for page, weight in weights.items():
            if weight < 0:
                raise PatternError(f"negative weight for page {page!r}")
        self.name = name
        self.length = length
        self.weights = dict(weights)
        self.first_page = first_page
        self.params_for = params_for or (lambda streams, page, prev: {})
        self.follows = dict(follows or {})
        # Precomputed draw tables: ``random.choices`` re-accumulates the
        # weights on every call, and sessions draw thousands of times.
        # bisect over the same cumulative list consumes one random() per
        # draw and picks the identical page.
        self._stream_name = f"pattern:{self.name}"
        self._pages = tuple(self.weights.keys())
        self._cum_weights = list(accumulate(self.weights.values()))
        self._total = self._cum_weights[-1] + 0.0

    def session(self, streams: Streams, session_index: int) -> List[PageVisit]:
        pages = self._pages
        cum_weights = self._cum_weights
        total = self._total
        hi = len(pages) - 1
        rng_random = streams.get(self._stream_name).random
        if total <= 0.0 and self.length > 1:
            # Same failure random.choices would raise on the first draw.
            raise ValueError("Total of weights must be greater than zero")
        visits: List[PageVisit] = []
        previous: Optional[PageVisit] = None

        def visit(page: str) -> PageVisit:
            nonlocal previous
            params = self.params_for(streams, page, previous)
            page_visit = PageVisit(page, params)
            visits.append(page_visit)
            previous = page_visit
            return page_visit

        visit(self.first_page)
        while len(visits) < self.length:
            page = pages[bisect(cum_weights, rng_random() * total, 0, hi)]
            required = self.follows.get(page)
            if required is not None and (previous is None or previous.page != required):
                visit(required)
                if len(visits) >= self.length:
                    break
            visit(page)
        return visits[: self.length]


class ScriptedPattern(UsagePattern):
    """Buyer/bidder-style sessions: a fixed page script.

    ``script`` is a sequence of page names; ``params_for`` supplies each
    visit's parameters (e.g. which item to buy or bid on).
    """

    def __init__(
        self,
        name: str,
        script: Sequence[str],
        params_for: Optional[Callable] = None,
    ):
        if not script:
            raise PatternError("script must not be empty")
        self.name = name
        self.script = list(script)
        self.params_for = params_for or (lambda streams, page, index: {})

    @property
    def length(self) -> int:
        return len(self.script)

    def session(self, streams: Streams, session_index: int) -> List[PageVisit]:
        visits = []
        for index, page in enumerate(self.script):
            params = self.params_for(streams, page, index)
            visits.append(PageVisit(page, params))
        return visits
