"""Mutable services: demand-driven dynamic redeployment (§1, §6).

The paper's long-term goal — "dynamic demand-driven deployment of
application components in response to changing environment conditions"
— is implemented here as a runtime manager that watches replica miss
rates and server load, and *redeploys* components while the system runs:

* if an edge server receives entity reads it must forward to the main
  server (no local replica), the manager deploys a read-only replica
  there on demand;
* if a stateless façade marked edge-deployable is generating wide-area
  calls from an edge, the manager deploys it at that edge;
* deployments happen in simulated time and cost a code-shipping
  transfer plus container start-up, so adaptation is not free.

This is the paper's "stateful component instantiation and
(re)deployment can be done on-demand at run-time" claim, made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

from ..middleware.descriptors import ComponentKind
from ..middleware.server import AppServer
from ..middleware.updates import UpdatePropagator
from ..simnet.kernel import Environment, Event
from .distribution import DeployedSystem

__all__ = ["RedeploymentAction", "MutableServiceManager"]

COMPONENT_CODE_SIZE = 60_000  # bytes shipped to deploy a component
CONTAINER_STARTUP_MS = 25.0


@dataclass
class RedeploymentAction:
    """One adaptation the manager performed."""

    time: float
    component: str
    server: str
    kind: str  # "replica" | "facade"
    reason: str


class MutableServiceManager:
    """Watches a running deployment and redeploys components on demand."""

    def __init__(
        self,
        system: DeployedSystem,
        check_interval_ms: float = 5_000.0,
        miss_threshold: int = 5,
    ):
        self.system = system
        self.check_interval_ms = check_interval_ms
        self.miss_threshold = miss_threshold
        self.actions: List[RedeploymentAction] = []
        self._wan_reads: Dict[tuple, int] = {}  # (server, component) -> count
        self._running = False

    # -- demand signals -----------------------------------------------------
    def note_wan_read(self, server_name: str, component: str) -> None:
        """Called by probes/tests when an edge forwards a read to main."""
        key = (server_name, component)
        self._wan_reads[key] = self._wan_reads.get(key, 0) + 1

    def _demand_from_trace(self) -> None:
        trace = self.system.trace
        if trace is None:
            return
        for record in trace.wide_area_calls("rmi"):
            descriptor = self.system.application.components.get(record.target)
            if descriptor is None:
                continue
            if descriptor.is_entity or (
                descriptor.kind == ComponentKind.STATELESS_SESSION
                and descriptor.edge_from_level is not None
            ):
                self.note_wan_read(record.src_node, record.target)

    # -- the control loop -----------------------------------------------------
    def run(self, env: Environment) -> Generator[Event, None, None]:
        """Periodic adaptation process; start with ``env.process(m.run(env))``."""
        self._running = True
        while self._running:
            yield env.timeout(self.check_interval_ms)
            self._demand_from_trace()
            yield from self._adapt(env)

    def stop(self) -> None:
        self._running = False

    def _adapt(self, env: Environment) -> Generator[Event, None, None]:
        for (server_name, component), count in sorted(self._wan_reads.items()):
            if count < self.miss_threshold:
                continue
            server = self.system.servers.get(server_name)
            if server is None or server.is_main:
                continue
            descriptor = self.system.application.components.get(component)
            if descriptor is None:
                continue
            if descriptor.is_entity and descriptor.read_mostly is not None:
                if server.readonly_container(component) is None:
                    yield from self._deploy(env, server, component, "replica", count)
            elif descriptor.kind == ComponentKind.STATELESS_SESSION:
                if component not in server.containers:
                    yield from self._deploy(env, server, component, "facade", count)
            self._wan_reads[(server_name, component)] = 0

    def _deploy(
        self,
        env: Environment,
        server: AppServer,
        component: str,
        kind: str,
        demand: int,
    ) -> Generator[Event, None, None]:
        # Ship the component code from main and start the container.
        main = self.system.main
        yield from self.system.testbed.network.transfer(
            main.node.name, server.node.name, COMPONENT_CODE_SIZE, kind="deploy"
        )
        yield from server.node.compute(CONTAINER_STARTUP_MS)
        descriptor = self.system.application.components[component]
        server.deploy(descriptor, replica=(kind == "replica"))
        # Lookup caches may hold remote refs that are now suboptimal.
        server.home_cache.invalidate()
        if kind == "replica":
            self._extend_propagation(server)
        self.actions.append(
            RedeploymentAction(
                time=env.now,
                component=component,
                server=server.name,
                kind=kind,
                reason=f"{demand} wide-area reads observed",
            )
        )

    def _extend_propagation(self, server: AppServer) -> None:
        """Ensure the new replica host receives update propagation."""
        main = self.system.main
        if main.update_propagator is None:
            main.update_propagator = UpdatePropagator(main, targets=[])
        targets = main.update_propagator.targets
        if server not in targets:
            targets.append(server)
