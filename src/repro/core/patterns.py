"""The catalog of design patterns/optimizations the paper applies (§4).

Each :class:`PatternLevel` is *cumulative*: level N includes every
optimization of level N-1, exactly as the paper's five configurations
build on one another.  Level 6 extends the sequence beyond the paper
with transactional method caching (Pfeifer & Lockemann); the paper's
own sweep is :data:`PAPER_LEVELS`, which every default series uses so
the published tables and figures are unaffected by the extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict

__all__ = [
    "PatternLevel",
    "PAPER_LEVELS",
    "PatternInfo",
    "PATTERN_CATALOG",
    "level_name",
]


class PatternLevel(IntEnum):
    """The five incremental configurations of §4, plus level 6."""

    CENTRALIZED = 1        # §4.1: everything on the main server
    REMOTE_FACADE = 2      # §4.2: web + stateful session beans at edges, façades
    STATEFUL_CACHING = 3   # §4.3: read-only entity replicas, blocking push
    QUERY_CACHING = 4      # §4.4: aggregate query result caches at edges
    ASYNC_UPDATES = 5      # §4.5: JMS/MDB asynchronous update propagation
    METHOD_CACHING = 6     # beyond the paper: transactional method caching


# The paper's own sweep.  Defaults everywhere (runner, CLI, benchmarks)
# iterate these five levels, never the full enum, so adding level 6 to
# the catalog cannot silently change any published artifact.  Level 6
# runs only when asked for explicitly (--level 6, a levels list, or a
# policy file declaring it).
PAPER_LEVELS = (
    PatternLevel.CENTRALIZED,
    PatternLevel.REMOTE_FACADE,
    PatternLevel.STATEFUL_CACHING,
    PatternLevel.QUERY_CACHING,
    PatternLevel.ASYNC_UPDATES,
)


@dataclass(frozen=True)
class PatternInfo:
    """Human-readable metadata for reports and benchmark labels."""

    level: PatternLevel
    name: str
    paper_section: str
    adds: str
    expected_effect: str


PATTERN_CATALOG: Dict[PatternLevel, PatternInfo] = {
    PatternLevel.CENTRALIZED: PatternInfo(
        PatternLevel.CENTRALIZED,
        "Centralized",
        "4.1",
        "nothing — single-server baseline",
        "remote clients pay ~2 WAN round trips (TCP handshake + HTTP) per page",
    ),
    PatternLevel.REMOTE_FACADE: PatternInfo(
        PatternLevel.REMOTE_FACADE,
        "Remote façade",
        "4.2",
        "web components and stateful session beans at edges; all shared-data "
        "access funnelled through session façades co-located with the data; "
        "home/remote stub caching (EJBHomeFactory)",
        "session-only pages become local for remote clients; shared-data pages "
        "cost exactly one wide-area RMI call",
    ),
    PatternLevel.STATEFUL_CACHING: PatternInfo(
        PatternLevel.STATEFUL_CACHING,
        "Stateful component caching",
        "4.3",
        "read-only entity bean replicas at edges (read-mostly pattern) with a "
        "blocking, push-based, zero-staleness update protocol",
        "entity-backed read pages become local everywhere; write pages slow "
        "down because writers block on WAN pushes",
    ),
    PatternLevel.QUERY_CACHING: PatternInfo(
        PatternLevel.QUERY_CACHING,
        "Query caching",
        "4.4",
        "aggregate SQL query result caches in edge servers with declarative "
        "invalidation",
        "aggregate-query pages become local for remote clients; un-cacheable "
        "keyword search still crosses the WAN; writers still block",
    ),
    PatternLevel.ASYNC_UPDATES: PatternInfo(
        PatternLevel.ASYNC_UPDATES,
        "Asynchronous updates",
        "4.5",
        "the synchronous update façade is replaced by a JMS topic and "
        "message-driven bean façades on the edges",
        "write pages return to façade-level latency; reads stay local; "
        "staleness bounded by one-way propagation delay",
    ),
    PatternLevel.METHOD_CACHING: PatternInfo(
        PatternLevel.METHOD_CACHING,
        "Method caching",
        "beyond the paper (Pfeifer & Lockemann)",
        "transactional method caching at edge containers: (bean, method, "
        "args) → result entries with read/write table footprints derived "
        "automatically from the JDBC layer, invalidated transaction-"
        "consistently over the shared consistency bus",
        "edge-local read pages skip container dispatch, entity "
        "materialization and cache assembly entirely on a hit; write "
        "pages unchanged from level 5",
    ),
}


def level_name(level: PatternLevel) -> str:
    return PATTERN_CATALOG[PatternLevel(level)].name
