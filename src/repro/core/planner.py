"""Deployment planning: resolve a placement policy onto a testbed.

``plan_deployment`` is a pure function from a
:class:`~repro.core.policy.PlacementPolicy` plus a concrete topology
(main server, edge list) to a :class:`DeploymentPlan`.  The paper's five
configurations arrive here as canned policies compiled by
:func:`~repro.core.policy.level_policy`; a hand-written policy file
arrives exactly the same way, so the planner has no notion of "levels"
beyond the metadata it copies into the plan for table labels.

For backward compatibility a bare :class:`PatternLevel` (or int) is
still accepted and compiled on the fly.

A façade plus its co-located domain entities is the paper's "unit of
distribution"; the plan realizes exactly that granularity.  The plan
also records *entry servers* — the servers hosting the complete web
tier, where clients may connect; clients whose local server is not an
entry server fall back to the main server (the centralized
configuration "the main server got all 30 HTTP requests per second,
whereas the edge servers were not used at all", §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..middleware.descriptors import ApplicationDescriptor, ComponentKind
from .patterns import PatternLevel
from .policy import (
    ComponentPolicy,
    PlacementPolicy,
    PolicyError,
    level_policy,
    resolve_selectors,
)

__all__ = ["DeploymentPlan", "plan_deployment", "PlanError"]


class PlanError(Exception):
    """Raised when a placement cannot be satisfied."""


@dataclass
class DeploymentPlan:
    """Component-to-server placement for one configuration."""

    level: PatternLevel
    main: str
    edges: List[str]
    placements: Dict[str, List[str]] = field(default_factory=dict)
    replicas: Dict[str, List[str]] = field(default_factory=dict)
    query_cache_servers: List[str] = field(default_factory=list)
    # Level 6: component -> servers whose containers cache its annotated
    # methods transaction-consistently.
    method_caches: Dict[str, List[str]] = field(default_factory=dict)
    # Servers hosting the complete web tier; clients elsewhere use main.
    entry_servers: List[str] = field(default_factory=list)
    # The policy this plan realizes (None only for hand-built plans).
    policy: Optional[PlacementPolicy] = None

    @property
    def all_servers(self) -> List[str]:
        return [self.main] + list(self.edges)

    def servers_of(self, component: str) -> List[str]:
        return self.placements.get(component, [])

    def replica_servers_of(self, component: str) -> List[str]:
        return self.replicas.get(component, [])

    def components_on(self, server: str) -> List[str]:
        return sorted(
            name for name, servers in self.placements.items() if server in servers
        )

    def describe(self) -> str:
        policy_name = self.policy.name if self.policy is not None else "?"
        lines = [
            f"deployment plan (policy {policy_name!r}, "
            f"level {int(self.level)}: {self.level.name})"
        ]
        for server in self.all_servers:
            components = self.components_on(server)
            replica_names = sorted(
                name for name, servers in self.replicas.items() if server in servers
            )
            entry = " [entry]" if server in self.entry_servers else ""
            lines.append(
                f"  {server}{entry}: {', '.join(components) or '-'}"
                + (f" | replicas: {', '.join(replica_names)}" if replica_names else "")
            )
        if self.query_cache_servers:
            lines.append(f"  query caches on: {', '.join(self.query_cache_servers)}")
        for name in sorted(self.method_caches):
            lines.append(
                f"  method cache for {name} on: {', '.join(self.method_caches[name])}"
            )
        return "\n".join(lines)


def _default_component_policy(
    descriptor, policy: PlacementPolicy
) -> ComponentPolicy:
    """Placement for components the policy does not mention.

    The auxiliary maintenance components (``UpdaterFacade``,
    ``UpdateSubscriber``) follow the replica/cache placements they
    serve; anything else stays on the main server.
    """
    from ..middleware.updates import UPDATE_SUBSCRIBER, UPDATER_FACADE

    if descriptor.name == UPDATER_FACADE:
        return ComponentPolicy(deploy=policy.maintenance_selectors())
    if descriptor.name == UPDATE_SUBSCRIBER and policy.async_updates:
        return ComponentPolicy(deploy=policy.maintenance_selectors())
    return ComponentPolicy(deploy=("main",))


def plan_deployment(
    application: ApplicationDescriptor,
    main: str,
    edges: List[str],
    policy: Union[PlacementPolicy, PatternLevel, int],
) -> DeploymentPlan:
    """Resolve ``policy`` onto the (main, edges) topology.

    Call *after* :func:`repro.core.automation.apply_policy`, so extended
    descriptors already reflect the policy.  Passing a
    :class:`PatternLevel` compiles the matching canned policy first.
    """
    if not isinstance(policy, PlacementPolicy):
        policy = level_policy(PatternLevel(policy), application)
    try:
        policy.validate_against(application)
    except PolicyError as exc:
        raise PlanError(str(exc)) from None

    plan = DeploymentPlan(
        level=policy.effective_level(), main=main, edges=list(edges), policy=policy
    )

    for name, descriptor in application.components.items():
        component_policy = policy.components.get(name)
        if component_policy is None:
            component_policy = _default_component_policy(descriptor, policy)
        try:
            placement = resolve_selectors(component_policy.deploy, main, edges)
            if descriptor.kind == ComponentKind.ENTITY and component_policy.replicas:
                if descriptor.read_mostly is not None:
                    plan.replicas[name] = resolve_selectors(
                        component_policy.replicas, main, edges
                    )
            if component_policy.method_cache and descriptor.cached_methods:
                # A method cache only makes sense where the façade itself
                # is deployed; restrict the resolved selectors to that.
                cache_servers = [
                    server
                    for server in resolve_selectors(
                        component_policy.method_cache, main, edges
                    )
                    if server in placement
                ]
                if cache_servers:
                    plan.method_caches[name] = cache_servers
            plan.placements[name] = placement
        except PolicyError as exc:
            raise PlanError(f"component {name!r}: {exc}") from None

    if policy.query_caches and application.query_caches:
        try:
            plan.query_cache_servers = resolve_selectors(
                policy.query_caches, main, edges
            )
        except PolicyError as exc:
            raise PlanError(f"query caches: {exc}") from None

    # Entry servers: every server hosting the complete web tier.
    servlet_components = set(application.servlets.values())
    plan.entry_servers = [
        server
        for server in plan.all_servers
        if all(
            server in plan.placements.get(component, ())
            for component in servlet_components
        )
    ]

    # Sanity: every page's servlet must exist wherever clients connect.
    for page, servlet in application.servlets.items():
        if main not in plan.placements.get(servlet, []):
            raise PlanError(f"servlet {servlet!r} for page {page!r} missing on main")
    # Sanity: read-write entity state is single-master on the main server.
    for name, descriptor in application.components.items():
        if descriptor.kind == ComponentKind.ENTITY:
            if plan.placements.get(name) != [main]:
                raise PlanError(
                    f"entity {name!r} must live exactly on the main server"
                )

    return plan
