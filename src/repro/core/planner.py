"""Deployment planning: which component goes on which server at each level.

The planner encodes the paper's placement rules:

* **Level 1** (centralized): everything on the main server.
* **Level ≥ 2**: web components and stateful session beans replicate to
  every server ("session-oriented stateful components ... can be
  deployed in edge servers for better locality"); shared stateful
  components and their façades stay with the database.
* **Level ≥ 3**: read-only replicas of read-mostly entity beans deploy
  on *all* servers (the main server benefits too — "slightly improved
  for the local browser due to read-only bean caching versus database
  access"), along with any stateless façade whose descriptor marks it
  edge-deployable from this level (Pet Store's ``Catalog``, RUBiS's
  ``SB_View*`` beans).
* **Level ≥ 4**: query caches activate on every server.
* **Level 5**: ``UpdateSubscriber`` MDBs deploy wherever replicas live.

A façade plus its co-located domain entities is the paper's "unit of
distribution"; the plan realizes exactly that granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..middleware.descriptors import ApplicationDescriptor, ComponentKind
from .patterns import PatternLevel

__all__ = ["DeploymentPlan", "plan_deployment", "PlanError"]


class PlanError(Exception):
    """Raised when a placement cannot be satisfied."""


@dataclass
class DeploymentPlan:
    """Component-to-server placement for one configuration."""

    level: PatternLevel
    main: str
    edges: List[str]
    placements: Dict[str, List[str]] = field(default_factory=dict)
    replicas: Dict[str, List[str]] = field(default_factory=dict)
    query_cache_servers: List[str] = field(default_factory=list)

    @property
    def all_servers(self) -> List[str]:
        return [self.main] + list(self.edges)

    def servers_of(self, component: str) -> List[str]:
        return self.placements.get(component, [])

    def replica_servers_of(self, component: str) -> List[str]:
        return self.replicas.get(component, [])

    def components_on(self, server: str) -> List[str]:
        return sorted(
            name for name, servers in self.placements.items() if server in servers
        )

    def describe(self) -> str:
        lines = [f"deployment plan (level {int(self.level)}: {self.level.name})"]
        for server in self.all_servers:
            components = self.components_on(server)
            replica_names = sorted(
                name for name, servers in self.replicas.items() if server in servers
            )
            lines.append(
                f"  {server}: {', '.join(components) or '-'}"
                + (f" | replicas: {', '.join(replica_names)}" if replica_names else "")
            )
        if self.query_cache_servers:
            lines.append(f"  query caches on: {', '.join(self.query_cache_servers)}")
        return "\n".join(lines)


def plan_deployment(
    application: ApplicationDescriptor,
    main: str,
    edges: List[str],
    level: PatternLevel,
) -> DeploymentPlan:
    """Compute the placement for ``application`` at ``level``.

    Call *after* :func:`repro.core.automation.configure_for_level`, so
    extended descriptors already reflect the level.
    """
    level = PatternLevel(level)
    plan = DeploymentPlan(level=level, main=main, edges=list(edges))
    everywhere = plan.all_servers

    for name, descriptor in application.components.items():
        if descriptor.kind in (ComponentKind.SERVLET, ComponentKind.STATEFUL_SESSION):
            placement = [main] if level < PatternLevel.REMOTE_FACADE else list(everywhere)
        elif descriptor.kind == ComponentKind.STATELESS_SESSION:
            placement = [main]
            threshold = descriptor.edge_from_level
            if threshold is not None and level >= threshold:
                placement = list(everywhere)
        elif descriptor.kind == ComponentKind.ENTITY:
            placement = [main]
            if descriptor.read_mostly is not None:
                plan.replicas[name] = list(everywhere)
        elif descriptor.kind == ComponentKind.MESSAGE_DRIVEN:
            # Update subscribers live wherever replicas or caches live.
            placement = list(everywhere) if level >= PatternLevel.ASYNC_UPDATES else [main]
        else:  # pragma: no cover - enum is closed
            raise PlanError(f"unplaceable component kind {descriptor.kind}")
        plan.placements[name] = placement

    if level >= PatternLevel.QUERY_CACHING and application.query_caches:
        plan.query_cache_servers = list(everywhere)

    # Sanity: every page's servlet must exist wherever clients connect.
    for page, servlet in application.servlets.items():
        if main not in plan.placements.get(servlet, []):
            raise PlanError(f"servlet {servlet!r} for page {page!r} missing on main")

    return plan
