"""Pattern-implementation automation (§5).

The paper argues the read-mostly and query-caching machinery should be
supplied by containers, configured purely from *extended deployment
descriptors*.  This module is that container-provider role: given an
application whose descriptors declare read-mostly beans and cacheable
queries, it

* filters the extended descriptors to the active :class:`PatternLevel`
  (replicas only exist from level 3, query caches from level 4),
* switches the update mode to asynchronous at level 5,
* registers the auxiliary system components (``UpdaterFacade``
  everywhere, ``UpdateSubscriber`` MDBs at level 5) so that "developers
  are freed from implementing tricky update mechanisms that require the
  deployment of additional auxiliary components".

Application code never references these auxiliaries explicitly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from ..middleware.descriptors import (
    ApplicationDescriptor,
    QueryCacheDescriptor,
    UpdateMode,
)
from ..middleware.updates import (
    UPDATE_SUBSCRIBER,
    UPDATER_FACADE,
    update_subscriber_descriptor,
    updater_facade_descriptor,
)
from .patterns import PatternLevel

__all__ = ["configure_for_level", "AutomationReport"]


class AutomationReport:
    """What the automation pass did — inspectable by tests and docs."""

    def __init__(self):
        self.read_mostly_active: list = []
        self.read_mostly_stripped: list = []
        self.query_caches_active: list = []
        self.query_caches_stripped: list = []
        self.auxiliaries_added: list = []
        self.mode: UpdateMode = UpdateMode.SYNC

    def summary(self) -> str:
        return (
            f"read-mostly: {len(self.read_mostly_active)} active / "
            f"{len(self.read_mostly_stripped)} stripped; query caches: "
            f"{len(self.query_caches_active)} active / "
            f"{len(self.query_caches_stripped)} stripped; auxiliaries: "
            f"{', '.join(self.auxiliaries_added) or 'none'}; "
            f"update mode: {self.mode.value}"
        )


def configure_for_level(
    application: ApplicationDescriptor, level: PatternLevel
) -> AutomationReport:
    """Adjust ``application`` (in place) to the given pattern level."""
    level = PatternLevel(level)
    report = AutomationReport()
    mode = UpdateMode.ASYNC if level >= PatternLevel.ASYNC_UPDATES else UpdateMode.SYNC
    report.mode = mode

    # -- read-mostly entity beans -------------------------------------------
    for name, descriptor in list(application.components.items()):
        if descriptor.read_mostly is None:
            continue
        if level < PatternLevel.STATEFUL_CACHING:
            descriptor.read_mostly = None
            report.read_mostly_stripped.append(name)
        else:
            descriptor.read_mostly = replace(descriptor.read_mostly, update_mode=mode)
            report.read_mostly_active.append(name)

    # -- query caches -----------------------------------------------------------
    if level < PatternLevel.QUERY_CACHING:
        report.query_caches_stripped.extend(application.query_caches)
        application.query_caches = {}
    else:
        adjusted: Dict[str, QueryCacheDescriptor] = {}
        for query_id, cache in application.query_caches.items():
            adjusted[query_id] = replace(cache, update_mode=mode)
            report.query_caches_active.append(query_id)
        application.query_caches = adjusted

    # -- auxiliary system components ------------------------------------------
    if level >= PatternLevel.STATEFUL_CACHING and UPDATER_FACADE not in application.components:
        application.add(updater_facade_descriptor())
        report.auxiliaries_added.append(UPDATER_FACADE)
    if level >= PatternLevel.ASYNC_UPDATES and UPDATE_SUBSCRIBER not in application.components:
        application.add(update_subscriber_descriptor())
        report.auxiliaries_added.append(UPDATE_SUBSCRIBER)

    application.validate()
    return report
