"""Pattern-implementation automation (§5), driven by placement policies.

The paper argues the read-mostly and query-caching machinery should be
supplied by containers, configured purely from *extended deployment
descriptors*.  This module is that container-provider role: given an
application whose descriptors declare read-mostly beans and cacheable
queries, and a :class:`~repro.core.policy.PlacementPolicy` stating which
of those declarations are active and how updates propagate, it

* strips read-mostly descriptors the policy gives no replica placements
  (they exist in the application, but this deployment does not use them),
* strips query caches when the policy activates no cache servers,
* switches the update mode of the surviving extended descriptors to the
  policy's propagation mode (sync push vs. JMS async),
* registers the auxiliary system components (``UpdaterFacade`` wherever
  maintenance traffic flows, ``UpdateSubscriber`` MDBs under
  asynchronous propagation) so that "developers are freed from
  implementing tricky update mechanisms that require the deployment of
  additional auxiliary components".

Application code never references these auxiliaries explicitly.
:func:`configure_for_level` survives as a thin compatibility wrapper
that compiles the canned policy for a pattern level and applies it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Union

from ..middleware.descriptors import (
    ApplicationDescriptor,
    QueryCacheDescriptor,
    UpdateMode,
)
from ..middleware.updates import (
    UPDATE_SUBSCRIBER,
    UPDATER_FACADE,
    update_subscriber_descriptor,
    updater_facade_descriptor,
)
from .patterns import PatternLevel
from .policy import PlacementPolicy, level_policy

__all__ = ["apply_policy", "configure_for_level", "AutomationReport"]


class AutomationReport:
    """What the automation pass did — inspectable by tests and docs."""

    def __init__(self):
        self.read_mostly_active: list = []
        self.read_mostly_stripped: list = []
        self.query_caches_active: list = []
        self.query_caches_stripped: list = []
        self.method_caches_active: list = []
        self.auxiliaries_added: list = []
        self.mode: UpdateMode = UpdateMode.SYNC

    def summary(self) -> str:
        return (
            f"read-mostly: {len(self.read_mostly_active)} active / "
            f"{len(self.read_mostly_stripped)} stripped; query caches: "
            f"{len(self.query_caches_active)} active / "
            f"{len(self.query_caches_stripped)} stripped; auxiliaries: "
            f"{', '.join(self.auxiliaries_added) or 'none'}; "
            f"update mode: {self.mode.value}"
        )


def apply_policy(
    application: ApplicationDescriptor, policy: PlacementPolicy
) -> AutomationReport:
    """Adjust ``application`` (in place) to the given placement policy."""
    report = AutomationReport()
    mode = policy.update_mode
    report.mode = mode

    # -- read-mostly entity beans -------------------------------------------
    for name, descriptor in list(application.components.items()):
        if descriptor.read_mostly is None:
            continue
        component_policy = policy.components.get(name)
        if component_policy is None or not component_policy.replicas:
            descriptor.read_mostly = None
            report.read_mostly_stripped.append(name)
        else:
            descriptor.read_mostly = replace(descriptor.read_mostly, update_mode=mode)
            report.read_mostly_active.append(name)

    # -- query caches -----------------------------------------------------------
    if not policy.query_caches:
        report.query_caches_stripped.extend(application.query_caches)
        application.query_caches = {}
    else:
        adjusted: Dict[str, QueryCacheDescriptor] = {}
        for query_id, cache in application.query_caches.items():
            adjusted[query_id] = replace(cache, update_mode=mode)
            report.query_caches_active.append(query_id)
        application.query_caches = adjusted

    # -- transactional method caches (level 6) ---------------------------------
    for name, component_policy in policy.components.items():
        if not component_policy.method_cache:
            continue
        descriptor = application.components.get(name)
        if descriptor is not None and descriptor.cached_methods:
            report.method_caches_active.append(name)

    # -- auxiliary system components ------------------------------------------
    # Method caches ride the same maintenance bus as replicas and query
    # caches, so they too need the updater façade at their servers.
    needs_maintenance = (
        bool(report.read_mostly_active)
        or bool(report.query_caches_active)
        or bool(report.method_caches_active)
    )
    if needs_maintenance and UPDATER_FACADE not in application.components:
        application.add(updater_facade_descriptor())
        report.auxiliaries_added.append(UPDATER_FACADE)
    if policy.async_updates and UPDATE_SUBSCRIBER not in application.components:
        application.add(update_subscriber_descriptor())
        report.auxiliaries_added.append(UPDATE_SUBSCRIBER)

    application.validate()
    return report


def configure_for_level(
    application: ApplicationDescriptor, level: Union[PatternLevel, int]
) -> AutomationReport:
    """Compatibility wrapper: compile the canned policy for ``level`` and
    apply it (the pre-policy-layer entry point)."""
    return apply_policy(application, level_policy(PatternLevel(level), application))
