"""Design-rule enforcement (§5): check deployments and traces.

The paper distils its findings into enforceable rules.  This checker
verifies them against a deployment plus the call trace of a simulation
run, producing a structured report:

* **R1 — façade-only remote access**: only components with remote
  interfaces are invoked across the network; entity beans expose local
  interfaces only.  (Violations are also raised at runtime by
  :class:`~repro.middleware.rmi.RemoteRef`; the checker catches
  descriptor-level risk even before running.)
* **R2 — one wide-area call per page**: serving any page incurs at most
  ``max_wan_calls_per_request`` wide-area RMI/JDBC calls (the paper's
  stated exception: Verify Signin makes two).
* **R3 — session state at the edge**: session-oriented state is created
  on the server the client connects to (every *entry server*), never
  fetched across the WAN.
* **R4 — shared read-mostly state cached at the edge**: wherever the
  policy places read-only replicas, they serve a healthy fraction of
  entity reads locally.
* **R5 — no blocking wide-area writes**: under asynchronous update
  propagation, transaction commits never block on synchronous WAN
  pushes.
* **R6 — coherent data tier**: when the policy distributes the data
  tier itself (a ``data_tier`` block), the shard/replica declaration
  must fit the topology (replica quorums achievable with the available
  database seats, sharded/global tables that actually exist), and at
  runtime every replica group must end the run with a live leader and
  zero failed log applications.
* **R7 — cacheable methods must not write**: a method annotated for
  transactional method caching (level 6) must have an empty *learned*
  write set — a cached writer's side effects would be silently skipped
  on hits.  Statically, every annotated method must exist on the bean
  class; at runtime, the method caches report any method observed
  writing a table through the JDBC layer.

Which rules apply is derived from the *deployment itself* — does the
plan distribute the web tier beyond the main server, does it place
replicas, does the policy propagate updates asynchronously — not from a
pattern-level comparison, so hand-written policies are checked by
exactly the same machinery as the paper's five configurations.
:func:`precheck` runs the static subset (R1, R3) against a plan alone,
before any simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..middleware.descriptors import ApplicationDescriptor
from ..obs.spans import SpanRecorder, build_trees, client_path_wan_calls
from ..simnet.monitor import Trace
from .distribution import DeployedSystem
from .patterns import PatternLevel
from .planner import DeploymentPlan
from .policy import PlacementPolicy

__all__ = ["RuleViolation", "RuleReport", "DesignRuleChecker", "precheck"]


@dataclass
class RuleViolation:
    rule: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.subject}: {self.detail}"


@dataclass
class RuleReport:
    """Outcome of a checker run."""

    level: PatternLevel
    violations: List[RuleViolation] = field(default_factory=list)
    checked_rules: List[str] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def violations_of(self, rule: str) -> List[RuleViolation]:
        return [v for v in self.violations if v.rule == rule]

    def summary(self) -> str:
        status = "PASS" if self.ok else f"{len(self.violations)} violation(s)"
        lines = [f"design rules at level {int(self.level)}: {status}"]
        lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)


class DesignRuleChecker:
    """Checks the five design rules against a deployment and its trace."""

    def __init__(
        self,
        system: DeployedSystem,
        max_wan_calls_per_request: int = 1,
        page_exceptions: Optional[Dict[str, int]] = None,
        min_replica_hit_rate: float = 0.5,
    ):
        self.system = system
        self.max_wan_calls_per_request = max_wan_calls_per_request
        # Pages allowed a higher budget, e.g. {"Verify Signin": 2} (§4.2).
        self.page_exceptions = dict(page_exceptions or {})
        self.min_replica_hit_rate = min_replica_hit_rate

    def check(
        self,
        trace: Optional[Trace] = None,
        spans: Optional[SpanRecorder] = None,
    ) -> RuleReport:
        trace = trace if trace is not None else self.system.trace
        spans = spans if spans is not None else self.system.spans
        report = RuleReport(level=self.system.level)
        plan = self.system.plan
        policy = self.system.policy or plan.policy
        self._check_r1(report, trace)
        if _web_tier_distributed(plan):
            self._check_r2(report, trace, spans)
            self._check_r3(report)
        if plan.replicas:
            self._check_r4(report)
        asynchronous = (
            policy.async_updates
            if policy is not None
            else self.system.level >= PatternLevel.ASYNC_UPDATES
        )
        if asynchronous:
            self._check_r5(report)
        if getattr(self.system, "cluster", None) is not None:
            self._check_r6(report)
        if plan.method_caches:
            self._check_r7(report)
        return report

    # -- R1 -----------------------------------------------------------------
    def _check_r1(self, report: RuleReport, trace: Optional[Trace]) -> None:
        report.checked_rules.append("R1")
        application = self.system.application
        _static_r1(report, application)
        if trace is None:
            return
        for record in trace.wide_area_calls("rmi"):
            descriptor = application.components.get(record.target)
            if descriptor is not None and not descriptor.remote_interface:
                report.violations.append(
                    RuleViolation(
                        "R1",
                        record.target,
                        f"invoked across the WAN ({record.src_node} -> "
                        f"{record.dst_node}) without a remote interface",
                    )
                )

    # -- R2 -----------------------------------------------------------------
    def _check_r2(
        self,
        report: RuleReport,
        trace: Optional[Trace],
        spans: Optional[SpanRecorder] = None,
    ) -> None:
        report.checked_rules.append("R2")
        # Prefer the span trees: causal structure lets the checker prune
        # replica-maintenance subtrees ("propagate"/"jms"/"jms-delivery")
        # instead of guessing by target name.  A recorder that dropped
        # spans has incomplete trees, so fall back to the flat heuristic.
        if spans is not None and spans.dropped == 0 and spans.spans:
            self._check_r2_spans(report, spans)
            return
        if trace is None:
            return
        wan_calls_by_request: Dict[int, int] = {}
        request_page: Dict[int, str] = {}
        from ..middleware.updates import UPDATER_FACADE

        for record in trace.records:
            if record.request_id is None or not record.wide_area:
                continue
            # JNDI lookups are excluded: the EJBHomeFactory cache makes
            # them one-time costs, not per-request behaviour.  So is
            # replica-maintenance traffic (the §4.3 blocking push rides on
            # the committing request but is not a client-path call).
            if record.kind not in ("rmi", "jdbc"):
                continue
            if record.target == UPDATER_FACADE:
                continue
            wan_calls_by_request[record.request_id] = (
                wan_calls_by_request.get(record.request_id, 0) + 1
            )
            if record.page is not None:
                request_page[record.request_id] = record.page
        worst: Dict[str, int] = {}
        for request_id, count in wan_calls_by_request.items():
            page = request_page.get(request_id, "?")
            worst[page] = max(worst.get(page, 0), count)
        report.metrics["max_wan_calls_seen"] = float(max(worst.values()) if worst else 0)
        for page, count in sorted(worst.items()):
            budget = self.page_exceptions.get(page, self.max_wan_calls_per_request)
            if count > budget:
                report.violations.append(
                    RuleViolation(
                        "R2",
                        page,
                        f"a request incurred {count} wide-area calls "
                        f"(budget {budget})",
                    )
                )

    def _check_r2_spans(self, report: RuleReport, spans: SpanRecorder) -> None:
        from ..middleware.updates import UPDATER_FACADE

        exclude = frozenset({UPDATER_FACADE})
        worst: Dict[str, int] = {}
        for tree in build_trees(spans.spans):
            if tree.root.kind != "http":
                continue  # detached maintenance roots (bounded flushes, ...)
            count = client_path_wan_calls(tree, exclude_targets=exclude)
            page = tree.root.page or "?"
            worst[page] = max(worst.get(page, 0), count)
        report.metrics["max_wan_calls_seen"] = float(max(worst.values()) if worst else 0)
        for page, count in sorted(worst.items()):
            budget = self.page_exceptions.get(page, self.max_wan_calls_per_request)
            if count > budget:
                report.violations.append(
                    RuleViolation(
                        "R2",
                        page,
                        f"a request's span tree contains {count} wide-area "
                        f"client-path calls (budget {budget})",
                    )
                )

    # -- R3 -----------------------------------------------------------------
    def _check_r3(self, report: RuleReport) -> None:
        report.checked_rules.append("R3")
        _static_r3(report, self.system.application, self.system.plan)

    # -- R4 -----------------------------------------------------------------
    def _check_r4(self, report: RuleReport) -> None:
        report.checked_rules.append("R4")
        plan = self.system.plan
        for server in self.system.edges:
            for name, replica_servers in plan.replicas.items():
                if server.name not in replica_servers:
                    continue  # the policy does not cache here
                container = server.readonly_container(name)
                if container is None:
                    report.violations.append(
                        RuleViolation(
                            "R4", name, f"replica not deployed on {server.name}"
                        )
                    )
                    continue
                total = container.hits + container.misses
                if total == 0:
                    continue
                rate = container.hits / total
                report.metrics[f"hit_rate:{name}@{server.name}"] = rate
                if rate < self.min_replica_hit_rate:
                    report.violations.append(
                        RuleViolation(
                            "R4",
                            f"{name}@{server.name}",
                            f"replica hit rate {rate:.0%} below "
                            f"{self.min_replica_hit_rate:.0%}",
                        )
                    )

    # -- R6 -----------------------------------------------------------------
    def _check_r6(self, report: RuleReport) -> None:
        report.checked_rules.append("R6")
        cluster = self.system.cluster
        stats = cluster.stats
        report.metrics["cluster_elections_won"] = float(stats.elections_won)
        report.metrics["cluster_leader_failovers"] = float(stats.leader_failovers)
        report.metrics["cluster_apply_errors"] = float(stats.apply_errors)
        for group in cluster.groups:
            if len(group.members) != cluster.tier.replication_factor:
                report.violations.append(
                    RuleViolation(
                        "R6",
                        group.name,
                        f"{len(group.members)} member(s) for a declared "
                        f"replication factor of {cluster.tier.replication_factor}",
                    )
                )
            if group.live_leader() is None:
                report.violations.append(
                    RuleViolation(
                        "R6",
                        group.name,
                        "no live leader at the end of the run "
                        "(election never completed after the fault window)",
                    )
                )
        if stats.apply_errors > 0:
            report.violations.append(
                RuleViolation(
                    "R6",
                    "replication",
                    f"{stats.apply_errors} committed log entries failed "
                    f"to apply on a replica (copies diverged)",
                )
            )

    # -- R7 -----------------------------------------------------------------
    def _check_r7(self, report: RuleReport) -> None:
        report.checked_rules.append("R7")
        hits = misses = stale = 0
        for server in self.system.servers.values():
            cache = server.method_cache
            if cache is None:
                continue
            hits += cache.stats.hits
            misses += cache.stats.misses
            stale += cache.stats.stale_serves
            for (component, method), tables in sorted(cache.write_violations.items()):
                report.violations.append(
                    RuleViolation(
                        "R7",
                        f"{component}.{method}@{server.name}",
                        f"cacheable method wrote table(s) {', '.join(tables)}; "
                        "its results cannot be cached safely",
                    )
                )
        report.metrics["method_cache_hits"] = float(hits)
        report.metrics["method_cache_misses"] = float(misses)
        report.metrics["method_cache_stale_serves"] = float(stale)

    # -- R5 -----------------------------------------------------------------
    def _check_r5(self, report: RuleReport) -> None:
        report.checked_rules.append("R5")
        propagator = self.system.main.update_propagator
        if propagator is None:
            return
        report.metrics["sync_pushes"] = float(propagator.sync_pushes)
        report.metrics["async_publishes"] = float(propagator.async_publishes)
        if propagator.sync_pushes > 0:
            report.violations.append(
                RuleViolation(
                    "R5",
                    "UpdatePropagator",
                    f"{propagator.sync_pushes} commits blocked on synchronous "
                    "WAN pushes under an asynchronous-update policy",
                )
            )


# -- static (pre-run) checking ------------------------------------------------

def _web_tier_distributed(plan: DeploymentPlan) -> bool:
    """True when clients connect anywhere beyond the main server."""
    return any(server != plan.main for server in plan.entry_servers)


def _static_r1(report: RuleReport, application: ApplicationDescriptor) -> None:
    for name, descriptor in application.components.items():
        if descriptor.is_entity and descriptor.remote_interface:
            report.violations.append(
                RuleViolation(
                    "R1",
                    name,
                    "entity bean exposes a remote interface; entities must be "
                    "local-only so web tiers cannot bypass façades",
                )
            )


def _static_r3(
    report: RuleReport, application: ApplicationDescriptor, plan: DeploymentPlan
) -> None:
    for name, descriptor in application.components.items():
        if descriptor.kind.value in ("stateful-session", "servlet"):
            placed = set(plan.servers_of(name))
            missing = [s for s in plan.entry_servers if s not in placed]
            if missing:
                report.violations.append(
                    RuleViolation(
                        "R3",
                        name,
                        f"session-oriented component missing from entry "
                        f"server(s) {missing}",
                    )
                )


def precheck(
    application: ApplicationDescriptor,
    plan: DeploymentPlan,
    policy: Optional[PlacementPolicy] = None,
) -> RuleReport:
    """Static design-rule check of a plan, before any simulation.

    Covers the rules decidable from descriptors and placements alone:
    R1 (entity beans must not expose remote interfaces), — when the
    plan distributes the web tier — R3 (session-oriented components
    present on every entry server), and — when ``policy`` declares a
    ``data_tier`` block — the static half of R6 (replica quorums
    achievable with this topology's database seats, shard keys against
    known entity tables), and — when the plan places method caches —
    the static half of R7 (annotated methods exist on the bean class).
    The trace-driven rules (R2, R4, R5, runtime R6, runtime R7) need a
    run and stay with :class:`DesignRuleChecker`.
    """
    report = RuleReport(level=plan.level)
    report.checked_rules.append("R1")
    _static_r1(report, application)
    if _web_tier_distributed(plan):
        report.checked_rules.append("R3")
        _static_r3(report, application, plan)
    if policy is not None and policy.data_tier is not None:
        report.checked_rules.append("R6")
        _static_r6(report, application, plan, policy.data_tier)
    if plan.method_caches:
        report.checked_rules.append("R7")
        _static_r7(report, application, plan)
    return report


def _static_r7(report: RuleReport, application, plan) -> None:
    """Every annotated cacheable method must exist on the bean class.

    The *write-set* half of R7 is learned at runtime (footprints are
    derived from executed statements, never declared), so the static
    pass can only catch annotations that reference nothing at all.
    """
    for name in sorted(plan.method_caches):
        descriptor = application.components.get(name)
        if descriptor is None:
            continue
        for method in descriptor.cached_methods:
            if not callable(getattr(descriptor.impl, method, None)):
                report.violations.append(
                    RuleViolation(
                        "R7",
                        f"{name}.{method}",
                        f"annotated cacheable method does not exist on "
                        f"{descriptor.impl.__name__}",
                    )
                )


def _static_r6(report: RuleReport, application, plan, tier) -> None:
    # One database seat at the main site plus one per edge server.
    seat_count = 1 + len(plan.edges)
    for error in tier.validation_errors(seat_count=seat_count):
        report.violations.append(RuleViolation("R6", "data_tier", error))
    known = {
        descriptor.table
        for descriptor in application.components.values()
        if getattr(descriptor, "table", None)
    }
    if not known:
        return
    for table, key in tier.shard_tables:
        if table not in known:
            report.violations.append(
                RuleViolation(
                    "R6",
                    table,
                    f"sharded table (key {key!r}) matches no entity table "
                    f"of application {application.name!r}",
                )
            )
    for table in tier.global_tables:
        if table not in known:
            report.violations.append(
                RuleViolation(
                    "R6",
                    table,
                    f"global table matches no entity table of application "
                    f"{application.name!r}",
                )
            )
