"""The paper's contribution layer: patterns, planning, automation, rules.

Typical use::

    from repro.core import PatternLevel, distribute
    system = distribute(env, testbed, application, PatternLevel.QUERY_CACHING, db)
"""

from .automation import AutomationReport, configure_for_level
from .distribution import DeployedSystem, distribute
from .mutable import MutableServiceManager, RedeploymentAction
from .patterns import PATTERN_CATALOG, PatternInfo, PatternLevel, level_name
from .planner import DeploymentPlan, PlanError, plan_deployment
from .rules import DesignRuleChecker, RuleReport, RuleViolation
from .usage import (
    PageVisit,
    PatternError,
    ScriptedPattern,
    UsagePattern,
    WeightedPattern,
)

__all__ = [
    "AutomationReport",
    "configure_for_level",
    "DeployedSystem",
    "distribute",
    "MutableServiceManager",
    "RedeploymentAction",
    "PATTERN_CATALOG",
    "PatternInfo",
    "PatternLevel",
    "level_name",
    "DeploymentPlan",
    "PlanError",
    "plan_deployment",
    "DesignRuleChecker",
    "RuleReport",
    "RuleViolation",
    "PageVisit",
    "PatternError",
    "ScriptedPattern",
    "UsagePattern",
    "WeightedPattern",
]
