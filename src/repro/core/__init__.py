"""The paper's contribution layer: patterns, policies, planning, rules.

Typical use::

    from repro.core import PatternLevel, distribute
    system = distribute(env, testbed, application, PatternLevel.QUERY_CACHING, db)

or, with an explicit placement policy::

    from repro.core import load_policy, distribute
    policy = load_policy("policies/replicas-one-edge.json")
    system = distribute(env, testbed, application, policy, db)
"""

from .automation import AutomationReport, apply_policy, configure_for_level
from .distribution import DeployedSystem, distribute
from .mutable import MutableServiceManager, RedeploymentAction
from .patterns import PATTERN_CATALOG, PatternInfo, PatternLevel, level_name
from .planner import DeploymentPlan, PlanError, plan_deployment
from .policy import (
    ComponentPolicy,
    PlacementPolicy,
    PolicyError,
    level_policy,
    load_policy,
)
from .rules import DesignRuleChecker, RuleReport, RuleViolation, precheck
from .usage import (
    PageVisit,
    PatternError,
    ScriptedPattern,
    UsagePattern,
    WeightedPattern,
)

__all__ = [
    "AutomationReport",
    "apply_policy",
    "configure_for_level",
    "DeployedSystem",
    "distribute",
    "ComponentPolicy",
    "PlacementPolicy",
    "PolicyError",
    "level_policy",
    "load_policy",
    "precheck",
    "MutableServiceManager",
    "RedeploymentAction",
    "PATTERN_CATALOG",
    "PatternInfo",
    "PatternLevel",
    "level_name",
    "DeploymentPlan",
    "PlanError",
    "plan_deployment",
    "DesignRuleChecker",
    "RuleReport",
    "RuleViolation",
    "PageVisit",
    "PatternError",
    "ScriptedPattern",
    "UsagePattern",
    "WeightedPattern",
]
