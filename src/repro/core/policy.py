"""Declarative placement policy: distribution decisions as data (§5).

The paper's central claim is that "application deployers need only
declaratively express desired component behavior" and the container does
the rest.  RAFDA sharpens the same point: distribution *policy* should be
a first-class artifact, separate from application logic, swappable
without touching code.  This module is that artifact.

A :class:`PlacementPolicy` states, per component, where it deploys, where
its read-only replicas go, where query caches activate, and how updates
propagate (synchronous blocking push vs. JMS asynchronous publish).  It
is picklable, JSON-round-trippable, and *topology-independent*: server
sets are written as selectors (``"main"``, ``"edges"``, ``"all"``, or a
literal node name) that resolve against whatever testbed the run uses,
so one policy file works on two edge servers or ten.

The paper's five configurations are not special-cased anywhere
downstream: :func:`level_policy` is a small compiler from a
:class:`~repro.core.patterns.PatternLevel` plus an application descriptor
to a canned policy, and the planner, automation, design-rule checker and
distribution orchestrator consume only the policy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..middleware.descriptors import ApplicationDescriptor, ComponentKind, UpdateMode
from ..rdbms.cluster.config import DataTierError, DataTierPolicy
from .patterns import PatternLevel

__all__ = [
    "PolicyError",
    "ComponentPolicy",
    "PlacementPolicy",
    "level_policy",
    "load_policy",
    "resolve_selectors",
    "SELECTOR_TOKENS",
]


class PolicyError(Exception):
    """Raised when a policy is malformed or contradicts the application."""


# Symbolic server-set selectors; anything else is a literal node name.
SELECTOR_TOKENS = ("main", "edges", "all")


def resolve_selectors(
    selectors: Sequence[str], main: str, edges: Sequence[str]
) -> List[str]:
    """Expand selectors to concrete server names in canonical order.

    Canonical order is main first, then edges in testbed order —
    the same order the level planner always produced — regardless of
    selector order.  Unknown literal names raise :class:`PolicyError`.
    """
    ordered = [main] + list(edges)
    chosen = set()
    for selector in selectors:
        if selector == "all":
            chosen.update(ordered)
        elif selector == "main":
            chosen.add(main)
        elif selector == "edges":
            chosen.update(edges)
        elif selector in ordered:
            chosen.add(selector)
        else:
            raise PolicyError(
                f"selector {selector!r} names no server in this topology "
                f"(servers: {', '.join(ordered)}; tokens: "
                f"{', '.join(SELECTOR_TOKENS)})"
            )
    return [server for server in ordered if server in chosen]


@dataclass(frozen=True)
class ComponentPolicy:
    """Placement of one component: deployment, replica and method-cache
    server sets.

    ``method_cache`` selects the servers whose containers intercept this
    component's annotated cacheable methods with a transactional method
    cache (level 6); empty means no method caching for this component.
    """

    deploy: Tuple[str, ...] = ("main",)
    replicas: Tuple[str, ...] = ()
    method_cache: Tuple[str, ...] = ()

    def to_json(self) -> dict:
        payload: dict = {"deploy": list(self.deploy)}
        if self.replicas:
            payload["replicas"] = list(self.replicas)
        if self.method_cache:
            payload["method_cache"] = list(self.method_cache)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "ComponentPolicy":
        if not isinstance(payload, dict):
            raise PolicyError(f"component policy must be an object, got {payload!r}")
        unknown = set(payload) - {"deploy", "replicas", "method_cache"}
        if unknown:
            raise PolicyError(f"unknown component policy keys: {sorted(unknown)}")
        return cls(
            deploy=tuple(payload.get("deploy", ("main",))),
            replicas=tuple(payload.get("replicas", ())),
            method_cache=tuple(payload.get("method_cache", ())),
        )


@dataclass(frozen=True)
class PlacementPolicy:
    """A complete distribution policy for one application.

    ``level`` is *metadata only*: the paper configuration this policy is
    closest to, used for table/figure labels and to choose the servlet
    era when assembling the application.  Nothing downstream branches on
    it for placement, caching or update behaviour.
    """

    name: str
    components: Dict[str, ComponentPolicy] = field(default_factory=dict)
    query_caches: Tuple[str, ...] = ()
    update_mode: UpdateMode = UpdateMode.SYNC
    level: Optional[int] = None
    # Optional distribution of the data tier itself (sharding +
    # replication); absent means today's single-instance database.
    data_tier: Optional[DataTierPolicy] = None

    # -- derived properties ---------------------------------------------------
    @property
    def has_replicas(self) -> bool:
        return any(cp.replicas for cp in self.components.values())

    @property
    def has_query_caches(self) -> bool:
        return bool(self.query_caches)

    @property
    def has_method_caches(self) -> bool:
        return any(cp.method_cache for cp in self.components.values())

    @property
    def async_updates(self) -> bool:
        return self.update_mode == UpdateMode.ASYNC

    def effective_level(self) -> PatternLevel:
        """Label/assembly level (defaults to the remote-façade era)."""
        if self.level is not None:
            return PatternLevel(self.level)
        return PatternLevel.REMOTE_FACADE

    def replica_selectors(self) -> Tuple[str, ...]:
        """Union of every component's replica selectors (stable order)."""
        seen: List[str] = []
        for name in self.components:
            for selector in self.components[name].replicas:
                if selector not in seen:
                    seen.append(selector)
        return tuple(seen)

    def method_cache_selectors(self) -> Tuple[str, ...]:
        """Union of every component's method-cache selectors (stable order)."""
        seen: List[str] = []
        for name in self.components:
            for selector in self.components[name].method_cache:
                if selector not in seen:
                    seen.append(selector)
        return tuple(seen)

    def maintenance_selectors(self) -> Tuple[str, ...]:
        """Servers that need the replica-maintenance machinery: main plus
        everywhere replicas, query caches or method caches live."""
        seen: List[str] = ["main"]
        selectors = (
            self.replica_selectors()
            + self.query_caches
            + self.method_cache_selectors()
        )
        for selector in selectors:
            if selector not in seen:
                seen.append(selector)
        return tuple(seen)

    # -- serialization --------------------------------------------------------
    def to_json(self) -> dict:
        payload: dict = {
            "name": self.name,
            "update_mode": self.update_mode.value,
            "components": {
                name: self.components[name].to_json()
                for name in sorted(self.components)
            },
        }
        if self.query_caches:
            payload["query_caches"] = list(self.query_caches)
        if self.level is not None:
            payload["level"] = int(self.level)
        if self.data_tier is not None:
            payload["data_tier"] = self.data_tier.to_json()
        return payload

    def to_json_str(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, payload: dict) -> "PlacementPolicy":
        if not isinstance(payload, dict):
            raise PolicyError(f"policy must be a JSON object, got {payload!r}")
        unknown = set(payload) - {
            "name", "components", "query_caches", "update_mode", "level", "data_tier"
        }
        if unknown:
            raise PolicyError(f"unknown policy keys: {sorted(unknown)}")
        mode_raw = payload.get("update_mode", UpdateMode.SYNC.value)
        try:
            mode = UpdateMode(mode_raw)
        except ValueError:
            raise PolicyError(
                f"update_mode must be one of "
                f"{[m.value for m in UpdateMode]}, got {mode_raw!r}"
            ) from None
        level = payload.get("level")
        if level is not None:
            try:
                level = int(PatternLevel(int(level)))
            except ValueError:
                raise PolicyError(f"level must be 1..6, got {level!r}") from None
        components_raw = payload.get("components", {})
        if not isinstance(components_raw, dict):
            raise PolicyError("components must be an object keyed by component name")
        data_tier_raw = payload.get("data_tier")
        data_tier = None
        if data_tier_raw is not None:
            try:
                data_tier = DataTierPolicy.from_json(data_tier_raw)
            except DataTierError as exc:
                raise PolicyError(str(exc)) from None
        return cls(
            name=str(payload.get("name", "custom")),
            components={
                name: ComponentPolicy.from_json(value)
                for name, value in components_raw.items()
            },
            query_caches=tuple(payload.get("query_caches", ())),
            update_mode=mode,
            level=level,
            data_tier=data_tier,
        )

    # -- validation -----------------------------------------------------------
    def validation_errors(self, application: ApplicationDescriptor) -> List[str]:
        """Static contradictions between this policy and the application."""
        errors: List[str] = []
        for name, cp in self.components.items():
            descriptor = application.components.get(name)
            if descriptor is None:
                errors.append(f"policy places unknown component {name!r}")
                continue
            if not cp.deploy:
                errors.append(f"component {name!r} has an empty deploy set")
            if descriptor.kind == ComponentKind.ENTITY:
                if tuple(cp.deploy) != ("main",):
                    errors.append(
                        f"entity {name!r} must deploy exactly on 'main' "
                        f"(read-write state is single-master); replicas are "
                        f"the way to place it elsewhere"
                    )
                if cp.replicas and descriptor.read_mostly is None:
                    errors.append(
                        f"entity {name!r} has replica placements but no "
                        f"read-mostly extended descriptor"
                    )
            elif cp.replicas:
                errors.append(
                    f"component {name!r} is not an entity bean; only "
                    f"entities have read-only replicas"
                )
            if cp.method_cache:
                if descriptor.kind != ComponentKind.STATELESS_SESSION:
                    errors.append(
                        f"component {name!r} has method-cache placements but "
                        f"is not a stateless session bean; only façade "
                        f"methods are cacheable"
                    )
                elif not descriptor.cached_methods:
                    errors.append(
                        f"component {name!r} has method-cache placements but "
                        f"its descriptor annotates no cacheable methods"
                    )
            if descriptor.kind == ComponentKind.SERVLET and "main" not in cp.deploy \
                    and "all" not in cp.deploy:
                errors.append(
                    f"servlet {name!r} must be deployed on 'main' so every "
                    f"client has an entry server"
                )
        if self.query_caches and not application.query_caches:
            errors.append(
                "policy activates query caches but the application declares none"
            )
        if self.data_tier is not None:
            errors.extend(
                f"data_tier: {error}"
                for error in self.data_tier.validation_errors()
            )
        return errors

    def validate_against(self, application: ApplicationDescriptor) -> "PlacementPolicy":
        errors = self.validation_errors(application)
        if errors:
            raise PolicyError(
                f"policy {self.name!r} is inconsistent with application "
                f"{application.name!r}:\n  " + "\n  ".join(errors)
            )
        return self


def level_policy(
    level: Union[PatternLevel, int], application: ApplicationDescriptor
) -> PlacementPolicy:
    """Compile one of the paper's five configurations into a policy.

    This is the *only* place the cumulative pattern-level semantics of
    §4 survive; everything downstream consumes the resulting policy.
    The compiled policy is topology-independent ("all" selectors), so
    the same five configurations run unchanged on any edge count.
    """
    from ..middleware.updates import UPDATE_SUBSCRIBER, UPDATER_FACADE

    level = PatternLevel(level)
    components: Dict[str, ComponentPolicy] = {}
    for name, descriptor in application.components.items():
        if descriptor.kind in (ComponentKind.SERVLET, ComponentKind.STATEFUL_SESSION):
            deploy = ("all",) if level >= PatternLevel.REMOTE_FACADE else ("main",)
            components[name] = ComponentPolicy(deploy=deploy)
        elif descriptor.kind == ComponentKind.STATELESS_SESSION:
            deploy = ("main",)
            threshold = descriptor.edge_from_level
            if threshold is not None and level >= threshold:
                deploy = ("all",)
            method_cache = (
                ("edges",)
                if level >= PatternLevel.METHOD_CACHING
                and descriptor.cached_methods
                and deploy == ("all",)
                else ()
            )
            components[name] = ComponentPolicy(deploy=deploy, method_cache=method_cache)
        elif descriptor.kind == ComponentKind.ENTITY:
            replicas = (
                ("all",)
                if descriptor.read_mostly is not None
                and level >= PatternLevel.STATEFUL_CACHING
                else ()
            )
            components[name] = ComponentPolicy(deploy=("main",), replicas=replicas)
        elif descriptor.kind == ComponentKind.MESSAGE_DRIVEN:
            deploy = ("all",) if level >= PatternLevel.ASYNC_UPDATES else ("main",)
            components[name] = ComponentPolicy(deploy=deploy)
        else:  # pragma: no cover - enum is closed
            raise PolicyError(f"unplaceable component kind {descriptor.kind}")

    replicating = level >= PatternLevel.STATEFUL_CACHING and any(
        d.read_mostly is not None for d in application.components.values()
    )
    caching = level >= PatternLevel.QUERY_CACHING and bool(application.query_caches)
    asynchronous = level >= PatternLevel.ASYNC_UPDATES

    # Auxiliary system components the automation pass will add: the
    # policy pre-places them so the planner never falls back to kind
    # heuristics for the canned configurations.
    if (replicating or caching) and UPDATER_FACADE not in components:
        components[UPDATER_FACADE] = ComponentPolicy(deploy=("all",))
    if asynchronous and UPDATE_SUBSCRIBER not in components:
        components[UPDATE_SUBSCRIBER] = ComponentPolicy(deploy=("all",))

    return PlacementPolicy(
        name=f"level-{int(level)}",
        components=components,
        query_caches=("all",) if caching else (),
        update_mode=UpdateMode.ASYNC if asynchronous else UpdateMode.SYNC,
        level=int(level),
    )


def load_policy(path: str) -> PlacementPolicy:
    """Read a policy JSON file (the ``--policy FILE`` entry point)."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise PolicyError(f"policy file {path!r} is not valid JSON: {exc}") from None
    return PlacementPolicy.from_json(payload)
