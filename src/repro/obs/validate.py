"""Validate exported observability artifacts.

Usage::

    python -m repro.obs.validate trace.json metrics.json series.json flame.txt

Each file is sniffed by shape — a ``traceEvents`` array is validated as
a Chrome trace, a ``cells`` object as a metrics dump, a ``series``
object as a time-series dump, an ``slo`` object as an SLO report, and a
file that is not JSON at all as collapsed-stack flamegraph text — and
the process exits non-zero if any file fails, which is how CI gates the
artifacts it uploads from the benchmark smoke job.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from .export import validate_chrome_trace, validate_metrics, validate_series
from .flame import validate_flamegraph
from .slo import validate_slo

__all__ = ["validate_file", "main"]


def validate_file(path: str) -> List[str]:
    """Problems found in one artifact file (empty list: valid)."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as error:
        return [f"cannot load {path}: {error}"]
    except json.JSONDecodeError:
        # Not JSON: collapsed-stack flamegraph text is the only non-JSON
        # artifact this tool knows.
        try:
            with open(path) as handle:
                return validate_flamegraph(handle.read())
        except OSError as error:
            return [f"cannot load {path}: {error}"]
    if isinstance(data, dict) and "traceEvents" in data:
        return validate_chrome_trace(data)
    if isinstance(data, dict) and "cells" in data:
        return validate_metrics(data)
    if isinstance(data, dict) and "series" in data:
        return validate_series(data)
    if isinstance(data, dict) and "slo" in data:
        return validate_slo(data)
    return [
        f"{path}: unrecognized artifact shape "
        "(no traceEvents/cells/series/slo key)"
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate exported trace/metrics JSON artifacts.",
    )
    parser.add_argument("files", nargs="+", help="artifact files to validate")
    args = parser.parse_args(argv)
    failed = 0
    for path in args.files:
        problems = validate_file(path)
        if problems:
            failed += 1
            print(f"{path}: INVALID", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
