"""Declarative SLOs evaluated per telemetry window, with burn rates.

An objectives file is plain JSON::

    {"objectives": [
        {"name": "browse-p95", "metric": "p95", "page": null, "max_ms": 2000},
        {"name": "availability", "metric": "availability", "target": 0.99}
    ]}

* ``metric: "pXX"`` (or ``"pXX.X"``) — the windowed response-time
  quantile for ``page`` (``null``/absent means the ``_all`` aggregate)
  must stay at or below ``max_ms``;
* ``metric: "availability"`` — successful responses over attempted
  requests per window must stay at or above ``target``.

Each window gets a compliance verdict plus a **burn rate**: the ratio of
the window's bad fraction to the objective's error budget, the standard
multi-window-burn formulation (burn 1.0 = exactly consuming budget,
large = an incident).  For latency objectives the bad fraction is the
interpolated histogram mass above ``max_ms`` and the budget is ``1 - q``
— so a p95 objective burns at rate ``P(late) / 0.05``.

Fault-schedule windows stamped on the series (see
:meth:`TimeSeriesRecorder.install`) are overlaid: each evaluated window
is flagged ``in_fault`` and, per fault window, **recovery time** is
reported — simulated ms from fault end until the first fully compliant
window at or after it.  That makes "how long until the system was back
inside its SLO" a first-class number instead of something eyeballed off
a chart.

Everything here is pure arithmetic on the series state dict, so reports
are deterministic and byte-identical however the series was produced.
"""

from __future__ import annotations

import json
from typing import List, Optional

from .metrics import Histogram

__all__ = [
    "SloError",
    "load_slo",
    "parse_objectives",
    "evaluate_slo",
    "render_slo_report",
    "export_slo",
    "validate_slo",
]


class SloError(ValueError):
    """An objectives file that cannot be evaluated."""


def parse_objectives(data: dict) -> List[dict]:
    """Validate raw objectives JSON into normalized objective dicts."""
    if not isinstance(data, dict) or not isinstance(data.get("objectives"), list):
        raise SloError("objectives file must be {'objectives': [...]}")
    if not data["objectives"]:
        raise SloError("objectives list is empty")
    parsed: List[dict] = []
    seen = set()
    for raw in data["objectives"]:
        if not isinstance(raw, dict):
            raise SloError(f"objective must be an object, got {raw!r}")
        name = raw.get("name")
        metric = raw.get("metric")
        if not name or not isinstance(name, str):
            raise SloError(f"objective missing a name: {raw!r}")
        if name in seen:
            raise SloError(f"duplicate objective name {name!r}")
        seen.add(name)
        if metric == "availability":
            target = raw.get("target")
            if not isinstance(target, (int, float)) or not 0.0 < target < 1.0:
                # target == 1.0 would make the error budget zero and the
                # burn rate infinite (not JSON-representable).
                raise SloError(
                    f"objective {name!r}: target must be in (0, 1), got {target!r}"
                )
            parsed.append(
                {"name": name, "metric": "availability", "target": float(target)}
            )
            continue
        if not isinstance(metric, str) or not metric.startswith("p"):
            raise SloError(
                f"objective {name!r}: metric must be 'availability' or 'pXX'"
            )
        try:
            quantile = float(metric[1:]) / 100.0
        except ValueError:
            raise SloError(f"objective {name!r}: bad quantile metric {metric!r}")
        if not 0.0 < quantile < 1.0:
            raise SloError(
                f"objective {name!r}: quantile must be in (0, 100) exclusive"
            )
        max_ms = raw.get("max_ms")
        if not isinstance(max_ms, (int, float)) or max_ms <= 0:
            raise SloError(
                f"objective {name!r}: max_ms must be positive, got {max_ms!r}"
            )
        page = raw.get("page")
        if page is not None and not isinstance(page, str):
            raise SloError(f"objective {name!r}: page must be a string or null")
        parsed.append(
            {
                "name": name,
                "metric": metric,
                "quantile": quantile,
                "page": page,
                "max_ms": float(max_ms),
            }
        )
    return parsed


def load_slo(path: str) -> List[dict]:
    """Read and validate an objectives file."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return parse_objectives(data)


def _window_histogram(entry: dict, key: str, bounds) -> Optional[Histogram]:
    data = entry.get("quantiles", {}).get(key)
    if data is None or not data["count"]:
        return None
    histogram = Histogram(bounds)
    histogram.counts = list(data["counts"])
    histogram.count = data["count"]
    histogram.total = data["sum"]
    return histogram


def _overlaps(start: float, end: float, window: dict) -> bool:
    return start < window["end"] and end > window["start"]


def evaluate_slo(series_state: dict, objectives: List[dict]) -> dict:
    """Evaluate objectives against one cell's series state.

    Returns a JSON-safe report: per objective, the per-window verdicts
    (window start ms, measured value, ok flag, burn rate, in_fault flag)
    plus totals — windows evaluated, windows violated, mean burn — and,
    when the series carries fault windows, per-fault recovery times.
    """
    interval = float(series_state["interval_ms"])
    bounds = tuple(series_state["bounds"])
    fault_windows = series_state.get("fault_windows", [])
    windows = series_state.get("windows", {})
    indices = sorted(int(key) for key in windows)

    report: dict = {"interval_ms": interval, "objectives": {}}
    for objective in objectives:
        rows = []
        for index in indices:
            entry = windows[str(index)]
            start = index * interval
            end = start + interval
            if objective["metric"] == "availability":
                counters = entry.get("counters", {})
                responses = counters.get("responses", 0)
                errors = counters.get("requests.errors", 0)
                total = responses + errors
                if not total:
                    continue
                value = responses / total
                ok = value >= objective["target"]
                budget = 1.0 - objective["target"]
                burn = (errors / total) / budget
            else:
                key = objective["page"] or "_all"
                histogram = _window_histogram(entry, key, bounds)
                if histogram is None:
                    continue
                value = histogram.percentile(objective["quantile"])
                ok = value <= objective["max_ms"]
                bad_fraction = 1.0 - histogram.cdf(objective["max_ms"])
                burn = bad_fraction / (1.0 - objective["quantile"])
            rows.append(
                {
                    "start_ms": start,
                    "value": value,
                    "ok": ok,
                    "burn": burn,
                    "in_fault": any(_overlaps(start, end, w) for w in fault_windows),
                }
            )
        violated = sum(1 for row in rows if not row["ok"])
        total_burn = sum(row["burn"] for row in rows)
        entry: dict = {
            "windows": rows,
            "evaluated": len(rows),
            "violated": violated,
            "mean_burn": total_burn / len(rows) if rows else 0.0,
        }
        if fault_windows:
            recoveries = []
            for fault in fault_windows:
                recovery_ms = None
                for row in rows:
                    if row["start_ms"] >= fault["end"] and row["ok"]:
                        recovery_ms = row["start_ms"] - fault["end"]
                        break
                recoveries.append(
                    {
                        "fault": f"{fault['kind']}:{fault['label']}",
                        "start_ms": fault["start"],
                        "end_ms": fault["end"],
                        "recovery_ms": recovery_ms,
                    }
                )
            entry["recovery"] = recoveries
        report["objectives"][objective["name"]] = entry
    return report


def render_slo_report(label: str, report: dict) -> str:
    """Terminal rendering of one cell's SLO evaluation."""
    lines = [f"SLO report — {label}"]
    for name in sorted(report["objectives"]):
        entry = report["objectives"][name]
        verdict = "OK" if not entry["violated"] else "VIOLATED"
        lines.append(
            f"  {name}: {verdict} "
            f"({entry['violated']}/{entry['evaluated']} windows out of SLO, "
            f"mean burn {entry['mean_burn']:.2f})"
        )
        worst = [row for row in entry["windows"] if not row["ok"]]
        if worst:
            peak = max(worst, key=lambda row: row["burn"])
            flag = " [fault]" if peak["in_fault"] else ""
            lines.append(
                f"    worst window @ {peak['start_ms'] / 1000.0:.0f}s: "
                f"value {peak['value']:.1f}, burn {peak['burn']:.1f}{flag}"
            )
        for recovery in entry.get("recovery", ()):
            if recovery["recovery_ms"] is None:
                took = "never recovered"
            else:
                took = f"recovered in {recovery['recovery_ms'] / 1000.0:.0f}s"
            lines.append(
                f"    after {recovery['fault']} "
                f"(ends {recovery['end_ms'] / 1000.0:.0f}s): {took}"
            )
    return "\n".join(lines)


def export_slo(reports: dict, path: str) -> None:
    """Write ``{"slo": {label: report}}`` canonically (sorted, compact)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"slo": reports}, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")


def validate_slo(data: dict) -> List[str]:
    """Structural checks for an SLO report artifact; returns problems."""
    problems: List[str] = []
    reports = data.get("slo")
    if not isinstance(reports, dict) or not reports:
        return ["top-level 'slo' must be a non-empty object"]
    for label, report in reports.items():
        objectives = report.get("objectives")
        if not isinstance(objectives, dict):
            problems.append(f"{label}: missing objectives")
            continue
        for name, entry in objectives.items():
            where = f"{label}/{name}"
            rows = entry.get("windows")
            if not isinstance(rows, list):
                problems.append(f"{where}: windows must be a list")
                continue
            if entry.get("evaluated") != len(rows):
                problems.append(f"{where}: evaluated count mismatch")
            violated = sum(1 for row in rows if not row.get("ok"))
            if entry.get("violated") != violated:
                problems.append(f"{where}: violated count mismatch")
            starts = [row.get("start_ms") for row in rows]
            if starts != sorted(starts):
                problems.append(f"{where}: windows not sorted by start_ms")
            for row in rows:
                if row.get("burn", 0) < 0:
                    problems.append(f"{where}: negative burn rate")
                    break
            for recovery in entry.get("recovery", ()):
                if recovery.get("end_ms", 0) < recovery.get("start_ms", 0):
                    problems.append(f"{where}: fault window ends before start")
    return problems
