"""Exportable observability artifacts.

* :func:`export_chrome_trace` — Chrome trace-event JSON (the format
  ``chrome://tracing`` and Perfetto load): one process row per
  (application, level) cell, one thread row per simulated node, one
  complete ("ph": "X") event per span with the span/parent ids in
  ``args`` so the causal tree survives the export.
* :func:`export_metrics` — sorted-key JSON dump of per-cell
  :class:`~repro.obs.metrics.MetricsRegistry` snapshots.

Both writers emit canonical JSON (sorted keys, fixed separators) over
canonically ordered inputs, so serial and parallel sweeps produce
byte-identical files — the same contract the tables and figures already
honour.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

__all__ = [
    "chrome_trace_events",
    "export_chrome_trace",
    "export_metrics",
    "export_series",
    "validate_chrome_trace",
    "validate_metrics",
    "validate_series",
]

# Simulation timestamps are milliseconds; trace-event ts/dur are
# microseconds.
_US_PER_MS = 1000.0


def _cell_events(pid: int, label: str, spans_state: dict) -> List[dict]:
    spans = spans_state.get("spans", ())
    nodes = sorted({span["node"] for span in spans})
    tids = {node: index + 1 for index, node in enumerate(nodes)}
    events: List[dict] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": label},
        }
    ]
    for node in nodes:
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tids[node],
                "name": "thread_name",
                "args": {"name": node},
            }
        )
    for span in spans:
        end = span.get("end")
        start = span["start"]
        args = {
            "span_id": span["id"],
            "parent_id": span.get("parent_id"),
            "request_id": span.get("request_id"),
            "wide_area": span.get("wide_area", False),
        }
        for key in ("page", "group", "target", "method"):
            if span.get(key) is not None:
                args[key] = span[key]
        if end is None:
            args["unfinished"] = True
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tids[span["node"]],
                "ts": start * _US_PER_MS,
                "dur": ((end if end is not None else start) - start) * _US_PER_MS,
                "name": span["name"],
                "cat": span["kind"],
                "args": args,
            }
        )
    return events


def chrome_trace_events(cells: List[Tuple[str, dict]]) -> dict:
    """Trace-event JSON object for labelled cell span states.

    ``cells`` is ``[(label, spans_state), ...]``; labels become process
    rows in the order given (callers pass canonical cell order).
    """
    events: List[dict] = []
    dropped = 0
    for index, (label, spans_state) in enumerate(cells):
        events.extend(_cell_events(index + 1, label, spans_state))
        dropped += spans_state.get("dropped", 0)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro.obs",
            "dropped_spans": dropped,
        },
    }


def export_chrome_trace(cells: List[Tuple[str, dict]], path: str) -> dict:
    """Write the Chrome trace for ``cells`` to ``path``; returns the object."""
    data = chrome_trace_events(cells)
    with open(path, "w") as handle:
        json.dump(data, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return data


def export_metrics(cells: List[Tuple[str, dict]], path: str) -> dict:
    """Write per-cell metrics snapshots as sorted-key JSON."""
    data = {"cells": {label: state for label, state in cells}}
    with open(path, "w") as handle:
        json.dump(data, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return data


def export_series(cells: List[Tuple[str, dict]], path: str) -> dict:
    """Write per-cell time-series states as sorted-key JSON.

    ``cells`` is ``[(label, TimeSeriesRecorder.to_state()), ...]``; the
    window keys inside each state are already canonical (merged by
    simulated-time key), so the file is byte-identical for any --jobs N.
    """
    data = {"series": {label: state for label, state in cells}}
    with open(path, "w") as handle:
        json.dump(data, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return data


# ---------------------------------------------------------------------------
# Validation (shared by tests and `python -m repro.obs.validate`)
# ---------------------------------------------------------------------------


def validate_chrome_trace(data: object) -> List[str]:
    """Schema problems of an exported trace; empty list means valid.

    Checks the trace-event envelope, per-event required fields, span-id
    uniqueness and parent resolvability, and that at least one *complete*
    span tree exists: an HTTP root with at least one finished descendant.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["top level is not an object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]

    spans: Dict[Tuple[int, int], dict] = {}  # (pid, span_id) -> event
    children: Dict[Tuple[int, int], int] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        for field in ("ph", "pid", "tid", "name"):
            if field not in event:
                problems.append(f"event {index} missing {field!r}")
        phase = event.get("ph")
        if phase == "X":
            for field in ("ts", "dur"):
                if not isinstance(event.get(field), (int, float)):
                    problems.append(f"event {index} has non-numeric {field!r}")
            if (event.get("dur") or 0) < 0:
                problems.append(f"event {index} has negative duration")
            args = event.get("args")
            if not isinstance(args, dict) or "span_id" not in args:
                problems.append(f"event {index} lacks args.span_id")
                continue
            key = (event["pid"], args["span_id"])
            if key in spans:
                problems.append(f"duplicate span id {key}")
            spans[key] = event
        elif phase not in ("M",):
            problems.append(f"event {index} has unsupported phase {phase!r}")

    complete_trees = 0
    for (pid, _span_id), event in spans.items():
        parent = event["args"].get("parent_id")
        if parent is not None:
            if (pid, parent) not in spans:
                problems.append(
                    f"span {event['args']['span_id']} (pid {pid}) has "
                    f"unresolvable parent {parent}"
                )
            else:
                children[(pid, parent)] = children.get((pid, parent), 0) + 1
    for (pid, span_id), event in spans.items():
        args = event["args"]
        if (
            args.get("parent_id") is None
            and event.get("cat") == "http"
            and children.get((pid, span_id), 0) >= 1
            and not args.get("unfinished")
        ):
            complete_trees += 1
    if not spans:
        problems.append("trace contains no spans")
    elif complete_trees == 0:
        problems.append("trace contains no complete span tree (http root with children)")
    return problems


def validate_metrics(data: object) -> List[str]:
    """Schema problems of an exported metrics dump; empty means valid."""
    problems: List[str] = []
    if not isinstance(data, dict) or "cells" not in data:
        return ["top level is not an object with a 'cells' key"]
    cells = data["cells"]
    if not isinstance(cells, dict) or not cells:
        return ["'cells' is empty or not an object"]
    for label, state in cells.items():
        if not isinstance(state, dict):
            problems.append(f"cell {label!r} is not an object")
            continue
        for section in ("counters", "gauges", "histograms"):
            if section not in state:
                problems.append(f"cell {label!r} missing {section!r}")
                continue
            if list(state[section]) != sorted(state[section]):
                problems.append(f"cell {label!r} {section} keys not sorted")
        for name, value in state.get("counters", {}).items():
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"cell {label!r} counter {name!r} invalid: {value!r}")
        for name, hist in state.get("histograms", {}).items():
            if not isinstance(hist, dict) or hist.get("count") != sum(
                hist.get("counts", ())
            ):
                problems.append(f"cell {label!r} histogram {name!r} inconsistent")
    return problems


def validate_series(data: object) -> List[str]:
    """Schema problems of an exported time-series dump; empty means valid."""
    problems: List[str] = []
    if not isinstance(data, dict) or "series" not in data:
        return ["top level is not an object with a 'series' key"]
    cells = data["series"]
    if not isinstance(cells, dict) or not cells:
        return ["'series' is empty or not an object"]
    for label, state in cells.items():
        if not isinstance(state, dict):
            problems.append(f"cell {label!r} is not an object")
            continue
        interval = state.get("interval_ms")
        if not isinstance(interval, (int, float)) or interval <= 0:
            problems.append(f"cell {label!r}: interval_ms must be positive")
        bounds = state.get("bounds")
        if not isinstance(bounds, list) or bounds != sorted(bounds):
            problems.append(f"cell {label!r}: bounds missing or unsorted")
            bounds = []
        windows = state.get("windows")
        if not isinstance(windows, dict):
            problems.append(f"cell {label!r}: missing windows object")
            continue
        for key, entry in windows.items():
            where = f"cell {label!r} window {key!r}"
            try:
                int(key)
            except (TypeError, ValueError):
                problems.append(f"{where}: key is not an integer")
                continue
            for section in ("counters", "gauges", "quantiles"):
                names = list(entry.get(section, {}))
                if names != sorted(names):
                    problems.append(f"{where}: {section} keys not sorted")
            for name, hist in entry.get("quantiles", {}).items():
                counts = hist.get("counts", ())
                if hist.get("count") != sum(counts):
                    problems.append(f"{where}: quantile {name!r} count mismatch")
                if bounds and len(counts) != len(bounds) + 1:
                    problems.append(
                        f"{where}: quantile {name!r} has {len(counts)} buckets "
                        f"for {len(bounds)} bounds"
                    )
        for fault in state.get("fault_windows", ()):
            if fault.get("end", 0) <= fault.get("start", 0):
                problems.append(
                    f"cell {label!r}: fault window {fault.get('label')!r} "
                    "ends before it starts"
                )
    return problems


def _maybe_summary(spans_state: Optional[dict]) -> dict:
    """Small digest used by CLI stderr reporting (kind counts + dropped)."""
    if not spans_state:
        return {"spans": 0, "dropped": 0, "by_kind": {}}
    by_kind: Dict[str, int] = {}
    for span in spans_state.get("spans", ()):
        by_kind[span["kind"]] = by_kind.get(span["kind"], 0) + 1
    return {
        "spans": len(spans_state.get("spans", ())),
        "dropped": spans_state.get("dropped", 0),
        "by_kind": dict(sorted(by_kind.items())),
    }
