"""Latency attribution: fold span trees into flamegraph-ready stacks.

A :class:`~repro.obs.spans.SpanTree` records *where simulated time went*
for one page request, but the per-request trees are too fine-grained for
"why is p95 high" questions.  This module folds them two ways:

* :func:`collapse_spans` — the classic collapsed-stack format
  (``frame;frame;frame count`` lines) that Brendan Gregg's
  ``flamegraph.pl`` and speedscope consume directly.  Each span
  contributes its **self time** (duration minus finished children) in
  integer microseconds under its full parent chain, so the flamegraph's
  x-axis is simulated client-path time and the nesting is the real
  causal structure: HTTP over container invocations over RMI over JDBC.
  WAN-crossing spans get a ``[wan]`` frame suffix, which makes wide-area
  time visually separable at every depth.

* :func:`layer_self_times` — the same fold but projected onto coarse
  layers (web / ejb / rmi / jdbc / jms / propagate, each with a ``@wan``
  variant), producing the per-layer attribution table rendered next to
  Tables 6/7.  The workload's accumulated think time can be appended by
  the caller as a ``think`` layer so the attribution accounts for the
  whole session timeline, not just server-side work.

Everything operates on the raw span-state dicts (``SpanRecorder.
to_state()["spans"]``), so per-cell folds work on worker-shipped state
without rehydrating Span objects, and merged output is deterministic:
lines are emitted in sorted order, weights are integers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "LAYER_OF",
    "collapse_spans",
    "merge_folded",
    "render_folded",
    "layer_self_times",
    "render_attribution",
    "render_flame_html",
    "validate_flamegraph",
]

#: Span kind -> attribution layer for the coarse per-layer table.
LAYER_OF = {
    "http": "web",
    "invoke": "ejb",
    "rmi": "rmi",
    "jdbc": "jdbc",
    "jms": "jms",
    "jms-delivery": "jms",
    "propagate": "propagate",
}


def _frame(span: dict) -> str:
    frame = f"{span['kind']}:{span['name']}"
    if span.get("wide_area"):
        frame += " [wan]"
    return frame


def _self_times_ms(spans: List[dict]) -> Dict[int, float]:
    """Span id -> self time (duration minus finished children), in ms."""
    child_ms: Dict[int, float] = {}
    for span in spans:
        parent_id = span.get("parent_id")
        end = span.get("end")
        if parent_id is not None and end is not None:
            child_ms[parent_id] = child_ms.get(parent_id, 0.0) + (
                end - span["start"]
            )
    self_ms: Dict[int, float] = {}
    for span in spans:
        end = span.get("end")
        if end is None:
            continue
        self_ms[span["id"]] = (end - span["start"]) - child_ms.get(span["id"], 0.0)
    return self_ms


def collapse_spans(spans: List[dict], root_prefix: Optional[str] = None) -> Dict[str, int]:
    """Fold raw span dicts into ``{stack: weight_us}``.

    Weights are each span's self time in integer microseconds (simulated
    1 ms granularity folds without loss; rounding keeps merged artifacts
    integral and therefore byte-stable).  Stacks are semicolon-joined
    parent chains, optionally under ``root_prefix`` — the experiment
    exporter passes the cell label so a multi-cell flamegraph separates
    into one trunk per cell.  Spans whose parent was truncated away root
    their own stack, mirroring :func:`~repro.obs.spans.build_trees`.
    """
    by_id = {span["id"]: span for span in spans}
    self_ms = _self_times_ms(spans)
    stack_cache: Dict[int, str] = {}

    def stack_of(span: dict) -> str:
        cached = stack_cache.get(span["id"])
        if cached is not None:
            return cached
        parent = by_id.get(span.get("parent_id"))
        if parent is None:
            stack = _frame(span)
            if root_prefix:
                stack = f"{root_prefix};{stack}"
        else:
            stack = f"{stack_of(parent)};{_frame(span)}"
        stack_cache[span["id"]] = stack
        return stack

    folded: Dict[str, int] = {}
    for span in spans:
        weight = int(round(self_ms.get(span["id"], 0.0) * 1000.0))
        if weight <= 0:
            continue
        stack = stack_of(span)
        folded[stack] = folded.get(stack, 0) + weight
    return folded


def merge_folded(*folds: Dict[str, int]) -> Dict[str, int]:
    merged: Dict[str, int] = {}
    for fold in folds:
        for stack, weight in fold.items():
            merged[stack] = merged.get(stack, 0) + weight
    return merged


def render_folded(folded: Dict[str, int]) -> str:
    """Collapsed-stack text: one ``stack weight`` line, sorted, final \\n.

    Consumers split on the *last* space, so spaces inside frame names
    (``GET /item``, ``[wan]``) are safe.  Sorting happens on the
    *formatted lines* — the order the validator can recheck without
    reparsing — not on the stacks, which can disagree when one stack is
    a string prefix of another inside a frame name.
    """
    lines = sorted(f"{stack} {weight}" for stack, weight in folded.items())
    return "\n".join(lines) + "\n"


def layer_self_times(spans: List[dict]) -> Dict[str, float]:
    """Per-layer self time in ms; WAN-crossing spans in ``layer@wan``."""
    self_ms = _self_times_ms(spans)
    layers: Dict[str, float] = {}
    for span in spans:
        value = self_ms.get(span["id"], 0.0)
        if value <= 0.0:
            continue
        layer = LAYER_OF.get(span["kind"], span["kind"])
        if span.get("wide_area"):
            layer += "@wan"
        layers[layer] = layers.get(layer, 0.0) + value
    return layers


def render_attribution(
    label: str, layers: Dict[str, float], think_ms: float = 0.0
) -> str:
    """Terminal table: where simulated time went, by layer."""
    rows: List[Tuple[str, float]] = sorted(layers.items())
    if think_ms > 0.0:
        rows.append(("think", think_ms))
    total = sum(value for _, value in rows)
    lines = [f"Latency attribution — {label}"]
    if not total:
        lines.append("  (no finished spans)")
        return "\n".join(lines)
    width = max(len(name) for name, _ in rows)
    for name, value in sorted(rows, key=lambda row: (-row[1], row[0])):
        share = 100.0 * value / total
        lines.append(f"  {name:<{width}}  {value:>12.0f} ms  {share:5.1f}%")
    lines.append(f"  {'total':<{width}}  {total:>12.0f} ms  100.0%")
    return "\n".join(lines)


_HTML_PAGE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>Latency flamegraph</title>
<style>
body {{ font: 13px sans-serif; margin: 16px; }}
.frame {{ position: absolute; height: 18px; overflow: hidden;
  white-space: nowrap; font-size: 11px; line-height: 18px;
  border: 1px solid #fff; box-sizing: border-box; cursor: default;
  background: #f2a93b; }}
.frame.wan {{ background: #d9534f; color: #fff; }}
#chart {{ position: relative; }}
</style></head>
<body>
<h3>Latency flamegraph (simulated time, self-time weighted)</h3>
<p>{summary}</p>
<div id="chart" style="height: {height}px">
{frames}
</div>
</body></html>
"""


def render_flame_html(folded: Dict[str, int]) -> str:
    """Self-contained HTML flamegraph (no external JS; icicle layout).

    Deliberately minimal — the collapsed-stack export is the tool-grade
    artifact (speedscope / flamegraph.pl render it interactively); this
    renderer exists so a run's attribution can be eyeballed with nothing
    but a browser.
    """
    # Aggregate total weight per stack prefix to size parent frames.
    totals: Dict[str, int] = {}
    depth_max = 0
    for stack, weight in folded.items():
        frames = stack.split(";")
        depth_max = max(depth_max, len(frames))
        for depth in range(1, len(frames) + 1):
            prefix = ";".join(frames[:depth])
            totals[prefix] = totals.get(prefix, 0) + weight
    # Every self-weight belongs to exactly one root, so the root row's
    # combined width is exactly the sum of all folded weights.
    grand = sum(folded.values())

    divs: List[str] = []
    offsets: Dict[str, float] = {}
    for prefix in sorted(totals):
        frames = prefix.split(";")
        depth = len(frames)
        parent = ";".join(frames[:-1])
        left = offsets.get(parent, 0.0)
        offsets.setdefault(parent, 0.0)
        width = 100.0 * totals[prefix] / grand if grand else 0.0
        offsets[prefix] = left
        offsets[parent] = left + width
        name = frames[-1]
        css = "frame wan" if "[wan]" in name else "frame"
        divs.append(
            f'<div class="{css}" style="left:{left:.3f}%;'
            f"top:{(depth - 1) * 19}px;width:{width:.3f}%\" "
            f'title="{name} — {totals[prefix]} us">{name}</div>'
        )
    summary = f"{len(folded)} stacks, {sum(folded.values())} us total self time"
    return _HTML_PAGE.format(
        summary=summary, height=depth_max * 19 + 4, frames="\n".join(divs)
    )


def validate_flamegraph(text: str) -> List[str]:
    """Structural checks for collapsed-stack text; returns problems."""
    problems: List[str] = []
    lines = [line for line in text.split("\n") if line]
    if not lines:
        return ["flamegraph is empty"]
    for number, line in enumerate(lines, 1):
        stack, _, weight = line.rpartition(" ")
        if not stack:
            problems.append(f"line {number}: no stack before the weight")
            continue
        try:
            if int(weight) <= 0:
                problems.append(f"line {number}: non-positive weight {weight}")
        except ValueError:
            problems.append(f"line {number}: weight {weight!r} is not an integer")
    if lines != sorted(lines):
        problems.append("stacks are not in sorted order")
    return problems
