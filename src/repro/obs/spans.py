"""Span trees: causal tracing of one page request across every tier.

A :class:`Span` is one timed operation (an HTTP request, an RMI call, a
JDBC statement, a JMS publish or delivery, a container invocation) with
a parent pointer.  The spans of one client page request form a tree
rooted at the HTTP span, which is what the design-rule checker walks to
verify the paper's "at most one wide-area call per page" — the flat
:class:`~repro.simnet.monitor.Trace` is a projection of these trees.

Span ids are assigned from a per-recorder counter in simulation-event
order, so a seeded run produces identical span tables in any process —
the property the parallel experiment runner's byte-identical
``--trace-out`` output rests on.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "SpanRecorder",
    "SpanTree",
    "build_trees",
    "client_path_wan_calls",
    "spans_to_call_records",
]

# Span kinds whose subtrees are *not* client-path work: replica
# maintenance rides on the committing request but is not a call the
# client waits on a WAN round trip for (asynchronous deliveries never
# block it at all).
MAINTENANCE_KINDS = frozenset({"propagate", "jms", "jms-delivery"})

#: Cap on the memoized per-session sampling verdicts (pure hashes —
#: evicting them wholesale is free and changes nothing).
_DECISION_CACHE_LIMIT = 65_536


@dataclass
class Span:
    """One timed operation in the causal tree of a request."""

    id: int
    parent_id: Optional[int]
    request_id: Optional[int]
    kind: str  # "http" | "invoke" | "rmi" | "jdbc" | "jms" | "jms-delivery" | "propagate"
    name: str
    node: str
    start: float
    end: Optional[float] = None  # None while the operation is in flight
    wide_area: bool = False
    page: Optional[str] = None
    group: Optional[str] = None
    target: Optional[str] = None
    method: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-safe snapshot; omits unset optionals to keep exports lean."""
        data = {
            "id": self.id,
            "parent_id": self.parent_id,
            "request_id": self.request_id,
            "kind": self.kind,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "wide_area": self.wide_area,
        }
        for key in ("page", "group", "target", "method"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            id=data["id"],
            parent_id=data.get("parent_id"),
            request_id=data.get("request_id"),
            kind=data["kind"],
            name=data["name"],
            node=data["node"],
            start=data["start"],
            end=data.get("end"),
            wide_area=data.get("wide_area", False),
            page=data.get("page"),
            group=data.get("group"),
            target=data.get("target"),
            method=data.get("method"),
        )


class SpanRecorder:
    """Append-only span table shared by every server of one deployment.

    Mirrors :class:`~repro.simnet.monitor.Trace`: cheap to consult when
    disabled, bounded by ``max_spans`` with an explicit ``dropped``
    counter so truncation is never silent.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_spans: Optional[int] = None,
        sample_rate: float = 1.0,
    ):
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate!r}")
        self.enabled = enabled
        self.max_spans = max_spans
        self.sample_rate = sample_rate
        self.sampled_requests = 0
        self.skipped_requests = 0
        self.spans: List[Span] = []
        self.dropped = 0
        self._ids = itertools.count(1)
        self._decisions: Dict[str, bool] = {}

    def __len__(self) -> int:
        return len(self.spans)

    def sample(self, session_id: str) -> bool:
        """Deterministic per-session sampling decision.

        CRC32 of the session id mapped onto [0, 1) — NOT ``hash()``
        (randomized per interpreter) and NOT an RNG stream (a draw here
        would shift every workload stream and change the run), so the
        same sessions are traced in every process and under any
        ``--jobs N``, and a sampled run's workload is byte-identical to
        an unsampled one.  Rate 1.0 short-circuits before hashing, and
        the per-session verdict is memoized — a session issues many
        requests, and the hash only needs computing on its first.
        """
        if self.sample_rate >= 1.0:
            self.sampled_requests += 1
            return True
        keep = self._decisions.get(session_id)
        if keep is None:
            keep = (
                zlib.crc32(session_id.encode("utf-8")) / 4294967296.0
                < self.sample_rate
            )
            if len(self._decisions) >= _DECISION_CACHE_LIMIT:
                # The verdict is a pure hash of the id, so the cache can
                # be dropped wholesale without changing any decision —
                # keeps memory bounded on million-session runs.
                self._decisions.clear()
            self._decisions[session_id] = keep
        if keep:
            self.sampled_requests += 1
        else:
            self.skipped_requests += 1
        return keep

    def start_span(
        self,
        kind: str,
        name: str,
        node: str,
        time: float,
        parent_id: Optional[int] = None,
        request_id: Optional[int] = None,
        wide_area: bool = False,
        page: Optional[str] = None,
        group: Optional[str] = None,
        target: Optional[str] = None,
        method: Optional[str] = None,
    ) -> Optional[Span]:
        """Open a span; returns None when disabled or over ``max_spans``.

        Dropped spans still consume an id so the surviving table keeps
        its deterministic numbering.
        """
        if not self.enabled:
            return None
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            self.dropped += 1
            next(self._ids)
            return None
        span = Span(
            id=next(self._ids),
            parent_id=parent_id,
            request_id=request_id,
            kind=kind,
            name=name,
            node=node,
            start=time,
            wide_area=wide_area,
            page=page,
            group=group,
            target=target,
            method=method,
        )
        self.spans.append(span)
        return span

    def finish_span(self, span: Optional[Span], time: float) -> None:
        if span is not None:
            span.end = time

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0

    # -- queries -------------------------------------------------------------
    def by_kind(self, kind: str) -> List[Span]:
        return [span for span in self.spans if span.kind == kind]

    def roots(self) -> List[Span]:
        known = {span.id for span in self.spans}
        return [
            span
            for span in self.spans
            if span.parent_id is None or span.parent_id not in known
        ]

    def unfinished(self) -> List[Span]:
        return [span for span in self.spans if not span.finished]

    def trees(self) -> List["SpanTree"]:
        return build_trees(self.spans)

    # -- serialization -------------------------------------------------------
    def to_state(self) -> dict:
        """Picklable, JSON-safe snapshot in span-id order.

        Sampling fields appear only when a rate below 1.0 is in force,
        so unsampled exports stay byte-identical with earlier releases.
        """
        state = {
            "dropped": self.dropped,
            "spans": [span.to_dict() for span in self.spans],
        }
        if self.sample_rate < 1.0:
            state["sample_rate"] = self.sample_rate
            state["sampled_requests"] = self.sampled_requests
            state["skipped_requests"] = self.skipped_requests
        return state

    @classmethod
    def from_state(cls, state: dict) -> "SpanRecorder":
        recorder = cls(sample_rate=state.get("sample_rate", 1.0))
        recorder.sampled_requests = state.get("sampled_requests", 0)
        recorder.skipped_requests = state.get("skipped_requests", 0)
        recorder.dropped = state.get("dropped", 0)
        recorder.spans = [Span.from_dict(item) for item in state.get("spans", ())]
        if recorder.spans:
            recorder._ids = itertools.count(
                max(span.id for span in recorder.spans) + 1
            )
        return recorder


class SpanTree:
    """One root span plus an index of its descendants."""

    def __init__(self, root: Span, children: Dict[int, List[Span]]):
        self.root = root
        self._children = children

    def children_of(self, span: Span) -> List[Span]:
        return self._children.get(span.id, [])

    def walk(self, skip_kinds: frozenset = frozenset()) -> Iterator[Span]:
        """Depth-first traversal from the root (root included).

        ``skip_kinds`` prunes whole subtrees: a span of a skipped kind is
        neither yielded nor descended into.
        """
        stack = [self.root]
        while stack:
            span = stack.pop()
            if span.kind in skip_kinds and span is not self.root:
                continue
            yield span
            stack.extend(reversed(self.children_of(span)))

    def size(self) -> int:
        return sum(1 for _ in self.walk())

    def complete(self) -> bool:
        """Every span in the tree finished (no in-flight operations)."""
        return all(span.finished for span in self.walk())


def build_trees(spans: List[Span]) -> List[SpanTree]:
    """Group a span table into trees, in root-span-id order.

    A span whose parent id is unknown (e.g. truncated away) becomes a
    root of its own tree, so partial tables still render.
    """
    known = {span.id for span in spans}
    children: Dict[int, List[Span]] = {}
    roots: List[Span] = []
    for span in spans:
        if span.parent_id is None or span.parent_id not in known:
            roots.append(span)
        else:
            children.setdefault(span.parent_id, []).append(span)
    return [SpanTree(root, children) for root in roots]


def client_path_wan_calls(tree: SpanTree, exclude_targets: frozenset = frozenset()) -> int:
    """Wide-area RMI/JDBC spans the client actually waited on.

    Prunes maintenance subtrees (update propagation, JMS publishes and
    asynchronous deliveries) and spans against excluded targets (the
    updater façade) — the tree-walk equivalent of the design-rule
    checker's flat-trace filter, but structural rather than heuristic:
    a JDBC refresh executed *inside* propagation is excluded because of
    where it sits in the tree, not because of what it is named.
    """
    count = 0
    stack = [tree.root]
    while stack:
        span = stack.pop()
        if span is not tree.root:
            if span.kind in MAINTENANCE_KINDS:
                continue
            if span.target is not None and span.target in exclude_targets:
                continue
        if span.wide_area and span.kind in ("rmi", "jdbc"):
            count += 1
        stack.extend(tree.children_of(span))
    return count


def spans_to_call_records(spans: List[Span]) -> List[tuple]:
    """Project spans onto flat (kind, target, wide_area, request_id) tuples.

    The flat :class:`~repro.simnet.monitor.Trace` is this projection plus
    source/destination nodes; tests use it to assert that the two
    instrumentation layers agree on what happened.
    """
    projected = []
    for span in spans:
        if span.kind in ("rmi", "jdbc", "jms"):
            projected.append((span.kind, span.target, span.wide_area, span.request_id))
    return projected
