"""Observability: span-based request tracing and a metrics registry.

The paper's argument is an *attribution* argument — which design pattern
makes which page pay how many wide-area round trips — so the simulator
needs first-class causal instrumentation, not just a flat call log:

* :mod:`repro.obs.spans` — every client page request opens a root span;
  :class:`~repro.middleware.context.InvocationContext` threads parent
  span ids through RMI stubs, JDBC calls, JMS publishes/MDB deliveries
  and container invocations, so one request reconstructs as one tree.
* :mod:`repro.obs.metrics` — a simulation-wide registry of counters,
  gauges and histograms whose snapshots are picklable and mergeable in
  canonical order (byte-identical output for any ``--jobs N``).
* :mod:`repro.obs.export` — Chrome trace-event JSON (``--trace-out``,
  loadable in Perfetto / ``chrome://tracing``) and sorted-key metrics
  JSON (``--metrics-out``).
* :mod:`repro.obs.timeseries` — streaming per-window telemetry (a
  kernel sampler process + windowed HDR-style quantiles) behind
  ``--series-out``; merged by simulated-time key across parallel cells.
* :mod:`repro.obs.slo` — declarative objectives evaluated per window
  with burn rates and fault-overlay recovery times (``--slo``).
* :mod:`repro.obs.flame` — span trees folded into collapsed-stack
  flamegraphs and per-layer latency attribution (``--flame-out``).
* :mod:`repro.obs.validate` — ``python -m repro.obs.validate`` checks
  exported artifacts parse and contain at least one complete span tree
  (used by CI on the uploaded artifacts).
"""

from .flame import collapse_spans, layer_self_times, merge_folded, render_folded
from .metrics import MetricsRegistry, collect_cache_stats, collect_system_metrics, merge_cache_stats
from .slo import evaluate_slo, load_slo, parse_objectives, render_slo_report
from .spans import Span, SpanRecorder, SpanTree, client_path_wan_calls
from .timeseries import HDR_BOUNDS, TimeSeriesRecorder

__all__ = [
    "Span",
    "SpanRecorder",
    "SpanTree",
    "client_path_wan_calls",
    "MetricsRegistry",
    "collect_system_metrics",
    "collect_cache_stats",
    "merge_cache_stats",
    "HDR_BOUNDS",
    "TimeSeriesRecorder",
    "evaluate_slo",
    "load_slo",
    "parse_objectives",
    "render_slo_report",
    "collapse_spans",
    "layer_self_times",
    "merge_folded",
    "render_folded",
]
