"""A simulation-wide metrics registry with canonical, mergeable snapshots.

Three instrument types — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — registered by name in a :class:`MetricsRegistry`.
The registry's :meth:`~MetricsRegistry.to_state` emits instruments in
sorted name order, exactly like
:meth:`~repro.simnet.monitor.ResponseTimeMonitor.to_state`, so anything
derived from a snapshot is byte-identical however the observations were
produced or shipped (``--jobs 1`` vs ``--jobs N``).

Two acquisition styles coexist:

* **live instruments** — components that must sample mid-run (JMS topic
  depth and delivery lag, database execution time) hold the registry and
  observe as events happen;
* **end-of-run collection** — :func:`collect_system_metrics` walks a
  finished :class:`~repro.core.distribution.DeployedSystem` and registers
  every counter the containers already keep (query-cache hits, replica
  hit/miss, propagator pushes, executor scan counts), which previously
  died with the worker process.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_system_metrics",
    "collect_cache_stats",
    "merge_cache_stats",
]

Number = Union[int, float]

# Log-ish default bounds in milliseconds; the last bucket is open-ended.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self, value: Number = 0):
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A point-in-time value (utilization, cache size, ...)."""

    __slots__ = ("value",)

    def __init__(self, value: Number = 0):
        self.value = value

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """Fixed-bound bucketed distribution (counts + sum, mergeable)."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        # counts[i] observes values <= bounds[i]; the final slot is +inf.
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: Number) -> None:
        # bisect_left returns the first i with bounds[i] >= value, which
        # is exactly the "value <= bound" bucket the linear scan found;
        # with the wide HDR-style grids the windowed quantiles use, the
        # O(log n) lookup keeps the per-request cost flat.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-interpolated quantile; ``q`` in [0, 1].

        Linearly interpolates inside the bucket holding the q-th
        observation (bucket ``i`` spans ``(bounds[i-1], bounds[i]]``;
        the first starts at 0.0).  The open-ended overflow bucket has no
        upper edge, so quantiles landing there clamp to the last finite
        bound — callers wanting tail fidelity pick bounds wide enough
        that the overflow stays empty.
        """
        if not self.count:
            return 0.0
        rank = min(max(q, 0.0), 1.0) * self.count
        cumulative = 0.0
        lower = 0.0
        for i, count in enumerate(self.counts):
            upper = self.bounds[i] if i < len(self.bounds) else lower
            if count and cumulative + count >= rank:
                if i >= len(self.bounds):
                    return lower
                fraction = (rank - cumulative) / count
                return lower + (upper - lower) * fraction
            cumulative += count
            lower = upper
        return lower

    def cdf(self, value: float) -> float:
        """Interpolated fraction of observations at or below ``value``.

        Overflow-bucket mass (beyond the last finite bound) counts as
        *above* any finite value — the conservative reading for SLO
        bad-fraction math.  An empty histogram reports 1.0 (vacuously
        compliant).
        """
        if not self.count:
            return 1.0
        cumulative = 0.0
        lower = 0.0
        for i, bound in enumerate(self.bounds):
            count = self.counts[i]
            if value < bound:
                if count:
                    width = bound - lower
                    part = (value - lower) / width if width > 0.0 else 1.0
                    if part > 0.0:
                        cumulative += count * min(1.0, part)
                return cumulative / self.count
            cumulative += count
            lower = bound
        return cumulative / self.count


class MetricsRegistry:
    """Named instruments, snapshot in canonical order."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- registration ------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, self._counters)
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, self._gauges)
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name, self._histograms)
            instrument = self._histograms[name] = Histogram(bounds)
        return instrument

    def _check_free(self, name: str, owner: dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not owner and name in family:
                raise ValueError(f"metric {name!r} already registered with another type")

    def names(self) -> List[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def value(self, name: str) -> Number:
        """Counter/gauge value or histogram observation count, by name."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        if name in self._histograms:
            return self._histograms[name].count
        raise KeyError(name)

    # -- serialization ------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot; instruments emitted in sorted name order."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "MetricsRegistry":
        registry = cls()
        for name, value in state.get("counters", {}).items():
            registry._counters[name] = Counter(value)
        for name, value in state.get("gauges", {}).items():
            registry._gauges[name] = Gauge(value)
        for name, data in state.get("histograms", {}).items():
            histogram = Histogram(tuple(data["bounds"]))
            histogram.counts = list(data["counts"])
            histogram.total = data["sum"]
            histogram.count = data["count"]
            registry._histograms[name] = histogram
        return registry

    def merge_state(self, state: dict) -> None:
        """Fold another snapshot in: counters/histograms add, gauges max.

        Gauges are point-in-time readings with no meaningful sum across
        cells; max keeps "worst seen", which is what utilization-style
        gauges are read for.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in state.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, value))
        for name, data in state.get("histograms", {}).items():
            histogram = self.histogram(name, tuple(data["bounds"]))
            if histogram.bounds != tuple(data["bounds"]):
                raise ValueError(f"histogram {name!r} bound mismatch in merge")
            for i, count in enumerate(data["counts"]):
                histogram.counts[i] += count
            histogram.total += data["sum"]
            histogram.count += data["count"]


# ---------------------------------------------------------------------------
# End-of-run collection from a deployed system
# ---------------------------------------------------------------------------


def collect_cache_stats(system) -> dict:
    """Query-cache and read-only replica counters, in canonical nesting.

    ``{"query_cache": {server: {query_id: {...}}}, "replicas": {server:
    {component: {...}}}}`` — the per-container evidence behind the
    paper's caching claims, previously discarded when a worker process
    exited.  Keys are sorted so the dict is deterministic and directly
    comparable across runs.
    """
    query_cache: Dict[str, dict] = {}
    replicas: Dict[str, dict] = {}
    method_cache: Dict[str, dict] = {}
    for server_name in sorted(system.servers):
        server = system.servers[server_name]
        if getattr(server, "method_cache", None) is not None:
            method_cache[server_name] = server.method_cache.stats.as_dict()
        if server.query_cache is not None:
            query_cache[server_name] = {
                query_id: server.query_cache.stats[query_id].as_dict()
                for query_id in sorted(server.query_cache.stats)
            }
        replica_stats = {}
        for name in sorted(system.plan.replicas):
            container = server.readonly_container(name)
            if container is None:
                continue
            replica_stats[name] = {
                "hits": container.hits,
                "misses": container.misses,
                "refreshes": container.refreshes,
                "invalidations": container.invalidations,
            }
        if replica_stats:
            replicas[server_name] = replica_stats
    stats = {"query_cache": query_cache, "replicas": replicas}
    # The method-cache section exists only when level 6 is active, so
    # levels 1-5 keep emitting byte-identical cache-stat dicts.
    if method_cache:
        stats["method_cache"] = method_cache
    return stats


def merge_cache_stats(*stats: Optional[dict]) -> dict:
    """Sum cache-stat dicts leaf-wise (missing branches are zeros)."""
    merged: dict = {"query_cache": {}, "replicas": {}}
    for item in stats:
        if not item:
            continue
        for section in ("query_cache", "replicas"):
            for server, per_key in item.get(section, {}).items():
                into_server = merged[section].setdefault(server, {})
                for key, counters in per_key.items():
                    into = into_server.setdefault(key, {})
                    for counter, value in counters.items():
                        into[counter] = into.get(counter, 0) + value
        # Method-cache stats are one flat dict per server (the cache is
        # per-container-chain, not per-query); the merged dict only grows
        # the section when some input carried it.
        for server, counters in item.get("method_cache", {}).items():
            into = merged.setdefault("method_cache", {}).setdefault(server, {})
            for counter, value in counters.items():
                into[counter] = into.get(counter, 0) + value
    return merged


def collect_system_metrics(registry: MetricsRegistry, system, generator=None) -> MetricsRegistry:
    """Register every per-container counter of a finished deployment.

    Walks servers, database, JMS topics, the update propagator, caches
    and replicas in sorted order; names are stable dotted paths so the
    registry snapshot is canonical.
    """
    config = system.testbed.config
    registry.gauge("topology.edge_servers").set(float(config.edge_servers))
    registry.gauge("topology.wan_latency_ms").set(float(config.wan_latency))
    registry.gauge("topology.clients_per_group").set(float(config.clients_per_group))

    for server_name in sorted(system.servers):
        server = system.servers[server_name]
        prefix = f"app_server.{server_name}"
        registry.counter(f"{prefix}.http_requests").inc(server.http_requests)
        registry.counter(f"{prefix}.web_sessions_created").inc(server.web_sessions.created)
        registry.gauge(f"{prefix}.cpu_utilization").set(server.node.cpu_utilization())

    db_server = system.db_server
    database = db_server.database
    registry.counter("db.statements").inc(db_server.statements)
    registry.counter("db.commits").inc(db_server.commits)
    registry.counter("db.rollbacks").inc(db_server.rollbacks)
    registry.counter("db.rows_scanned").inc(database.rows_scanned_total)
    registry.counter("db.statements_executed").inc(database.statements_executed)
    registry.gauge("db.cpu_utilization").set(db_server.node.cpu_utilization())
    executor = database.executor
    registry.counter("db.executor.index_scans").inc(executor.index_scans)
    registry.counter("db.executor.full_scans").inc(executor.full_scans)
    registry.counter("db.executor.range_scans").inc(executor.range_scans)
    registry.counter("db.executor.prefix_scans").inc(executor.prefix_scans)
    registry.counter("db.executor.join_index_lookups").inc(executor.join_index_lookups)
    registry.counter("db.executor.join_full_scans").inc(executor.join_full_scans)

    jms = system.main.jms
    if jms is not None:
        registry.counter("jms.deliveries").inc(jms.deliveries)
        registry.gauge("jms.in_flight_at_end").set(jms.in_flight)
        registry.gauge("jms.mean_delivery_latency_ms").set(jms.mean_delivery_latency())
        for topic_name in sorted(jms.topics):
            topic = jms.topics[topic_name]
            registry.counter(f"jms.topic.{topic_name}.published").inc(topic.published)
            registry.counter(f"jms.topic.{topic_name}.delivered").inc(topic.delivered)

    propagator = system.main.update_propagator
    if propagator is not None:
        registry.counter("propagator.sync_pushes").inc(propagator.sync_pushes)
        registry.counter("propagator.async_publishes").inc(propagator.async_publishes)
        registry.counter("propagator.coalesced_events").inc(propagator.coalesced_events)
        registry.counter("propagator.bounded_flushes").inc(propagator.bounded_flushes)
        registry.gauge("propagator.blocking_time_ms").set(propagator.blocking_time_total)

    cache_stats = collect_cache_stats(system)
    for server_name, per_query in cache_stats["query_cache"].items():
        for query_id, counters in per_query.items():
            prefix = f"querycache.{server_name}.{query_id}"
            for counter_name, value in counters.items():
                registry.counter(f"{prefix}.{counter_name}").inc(value)
    for server_name, per_component in cache_stats["replicas"].items():
        for component, counters in per_component.items():
            prefix = f"replica.{server_name}.{component}"
            for counter_name, value in counters.items():
                registry.counter(f"{prefix}.{counter_name}").inc(value)
    # methodcache.* names exist only under level 6 (see collect_cache_stats).
    for server_name, counters in cache_stats.get("method_cache", {}).items():
        for counter_name, value in counters.items():
            registry.counter(f"methodcache.{server_name}.{counter_name}").inc(value)

    if generator is not None:
        registry.counter("workload.requests").inc(generator.total_requests())
        clients = getattr(generator, "clients", None)
        if clients is not None:
            registry.counter("workload.errors").inc(
                sum(client.errors for client in clients)
            )
            registry.counter("workload.failovers").inc(
                sum(client.failovers for client in clients)
            )
            registry.counter("workload.think_time_ms").inc(
                sum(client.think_ms for client in clients)
            )
        else:
            # Open-loop generator: per-run session health.  These names
            # exist only for open-loop runs, so closed-loop metrics
            # snapshots stay byte-identical with earlier releases.
            registry.counter("workload.errors").inc(generator.errors)
            registry.counter("workload.failovers").inc(generator.failovers)
            registry.counter("workload.sessions_arrived").inc(generator.arrivals)
            registry.counter("workload.sessions_admitted").inc(generator.admitted)
            registry.counter("workload.sessions_completed").inc(generator.completions)
            registry.counter("workload.sessions_dropped").inc(
                generator.dropped_sessions
            )
            registry.counter("workload.think_time_ms").inc(generator.think_ms)
            registry.gauge("workload.sessions_active").set(float(generator.active))
            registry.gauge("workload.sessions_peak").set(float(generator.peak_active))

    # Resilience counters are emitted only when nonzero: a fault-free run
    # produces a metrics snapshot byte-identical to one taken before the
    # fault subsystem existed.
    resilience = getattr(system, "resilience", None)
    if resilience is not None:
        resilience.finalize(system.env.now)
        snapshot = resilience.to_dict()
        staleness = snapshot.pop("staleness_ms")
        for name in sorted(snapshot):
            if snapshot[name]:
                registry.counter(f"resilience.{name}").inc(snapshot[name])
        for server_name in sorted(staleness):
            if staleness[server_name]:
                registry.gauge(f"resilience.staleness_ms.{server_name}").set(
                    staleness[server_name]
                )

    # Data-tier cluster counters exist only under a data_tier policy, so
    # single-instance snapshots stay byte-identical with earlier releases.
    cluster = getattr(system, "cluster", None)
    if cluster is not None:
        snapshot = cluster.stats.to_dict()
        staleness_ms = snapshot.pop("staleness_ms")
        for name in sorted(snapshot):
            registry.counter(f"cluster.{name}").inc(snapshot[name])
        registry.gauge("cluster.staleness_ms").set(staleness_ms)
        registry.gauge("cluster.shards").set(float(cluster.tier.shard_count))
        registry.gauge("cluster.replication_factor").set(
            float(cluster.tier.replication_factor)
        )
    return registry
