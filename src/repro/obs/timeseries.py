"""Streaming time-series telemetry sampled on simulated-time windows.

A single end-of-run :class:`~repro.obs.metrics.MetricsRegistry` snapshot
erases exactly the behavior the open-loop engine exists to produce:
flash-crowd admission-drop ramps, fault-window recovery, cache warm-up.
This module keeps the transients.  A :class:`TimeSeriesRecorder` divides
simulated time into fixed windows (``interval_ms`` wide, window ``k``
covering ``[k*interval, (k+1)*interval)``) and accumulates three things
per window:

* **counters** — per-window deltas of cumulative sources (arrivals,
  admissions, drops, completions, errors, DB statements, executor
  index-vs-scan mix, JMS deliveries, cache hits/misses, kernel events);
* **gauges** — point-in-time readings at the window boundary (active
  sessions, JMS in-flight, ready-deque length, calendar-queue bucket
  occupancy and overflow);
* **quantiles** — fixed-bucket HDR-style :class:`Histogram` per page
  class (plus an ``_all`` aggregate) over response times observed in
  the window, so p50/p95/p99 per window are streaming and deterministic
  — no reservoir, no randomness.

The sampler is an ordinary kernel process riding the sleep fast lane
(``yield interval_ms``), so a telemetry-on run schedules one extra wheel
entry per window and nothing else: workload RNG draws and event
timestamps are untouched, and the tables/monitor output stays
byte-identical with telemetry on or off.  The sampler terminates itself
via the kernel's non-mutating :meth:`~repro.simnet.kernel.Environment.
pending` check — calling ``peek()`` from inside a process could promote
buckets under the run loop's cached locals and lose events.

State discipline mirrors the rest of ``repro.obs``: ``to_state()`` is a
sorted-key, JSON-safe dict; ``merge_state()`` folds another recorder's
windows in **by simulated-time key** (counters add, gauges max,
histogram counts add), which is what keeps ``--series-out`` artifacts
byte-identical for any ``--jobs N``.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..simnet.kernel import Environment
from .metrics import Histogram

__all__ = [
    "HDR_BOUNDS",
    "TimeSeriesRecorder",
    "install_sampler",
]


def _hdr_bounds(
    lo: float = 1.0, hi: float = 60_000.0, per_decade: int = 12
) -> Tuple[float, ...]:
    """Geometric bucket grid: ~±10% relative error over [lo, hi] ms."""
    bounds: List[float] = []
    ratio = 10.0 ** (1.0 / per_decade)
    value = lo
    while value < hi:
        bounds.append(round(value, 6))
        value *= ratio
    bounds.append(hi)
    return tuple(bounds)


#: Default response-time grid: 12 buckets per decade from 1 ms to 60 s —
#: wide enough that the connect-timeout tail (3 s per failed attempt)
#: lands in finite buckets, fine enough that windowed p95/p99 carry the
#: resolution the SLO monitor needs.
HDR_BOUNDS: Tuple[float, ...] = _hdr_bounds()


class TimeSeriesRecorder:
    """Per-window counters, gauges and response-time quantiles.

    All mutation goes through :meth:`observe_response` (called by the
    workload generators on every successful page fetch) and the sampler
    process (window-boundary deltas and gauges).  Reading back goes
    through the state dict or the ``*_series`` helpers.
    """

    def __init__(
        self,
        interval_ms: float = 1000.0,
        bounds: Sequence[float] = HDR_BOUNDS,
    ):
        if interval_ms <= 0:
            raise ValueError(f"interval_ms must be positive, got {interval_ms!r}")
        self.interval_ms = float(interval_ms)
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("quantile bounds must be sorted")
        # window index -> {"counters": {}, "gauges": {}, "quantiles": {}}
        self._windows: Dict[int, dict] = {}
        # Fault-schedule overlay rows (see FaultSchedule.windows()); set
        # by install() so the artifact carries the schedule it ran under.
        self.fault_windows: Tuple[dict, ...] = ()

    # -- accumulation -------------------------------------------------------
    def _window(self, index: int) -> dict:
        window = self._windows.get(index)
        if window is None:
            window = self._windows[index] = {
                "counters": {},
                "gauges": {},
                "quantiles": {},
            }
        return window

    def observe_response(self, now: float, page: str, response_time: float) -> None:
        """Feed one successful page response into the current window."""
        window = self._window(int(now // self.interval_ms))
        quantiles = window["quantiles"]
        for key in ("_all", page):
            histogram = quantiles.get(key)
            if histogram is None:
                histogram = quantiles[key] = Histogram(self.bounds)
            histogram.observe(response_time)
        counters = window["counters"]
        counters["responses"] = counters.get("responses", 0) + 1

    def count(self, now: float, name: str, amount: float = 1) -> None:
        if amount:
            counters = self._window(int(now // self.interval_ms))["counters"]
            counters[name] = counters.get(name, 0) + amount

    def record_gauge(self, now: float, name: str, value: float) -> None:
        self._window(int(now // self.interval_ms))["gauges"][name] = value

    # -- wiring -------------------------------------------------------------
    def install(self, env: Environment, system, generator, faults=None) -> None:
        """Register the boundary sampler process on ``env``.

        Must run after the system and generator exist and before
        ``env.run()``.  When a non-empty fault schedule is given its
        labelled windows are stamped onto the recorder so the series
        artifact carries its own overlay.
        """
        if faults is not None and not faults.empty:
            self.fault_windows = faults.windows()
        install_sampler(env, self, system, generator)

    # -- reading back -------------------------------------------------------
    def indices(self) -> List[int]:
        return sorted(self._windows)

    def window_start(self, index: int) -> float:
        return index * self.interval_ms

    def counter_series(self, name: str) -> List[Tuple[float, float]]:
        """[(window start ms, per-window value)] for windows holding it."""
        return [
            (index * self.interval_ms, self._windows[index]["counters"][name])
            for index in sorted(self._windows)
            if name in self._windows[index]["counters"]
        ]

    def gauge_series(self, name: str) -> List[Tuple[float, float]]:
        return [
            (index * self.interval_ms, self._windows[index]["gauges"][name])
            for index in sorted(self._windows)
            if name in self._windows[index]["gauges"]
        ]

    def quantile_series(self, key: str, q: float) -> List[Tuple[float, float]]:
        """[(window start ms, percentile)] for ``key`` (a page or ``_all``)."""
        series = []
        for index in sorted(self._windows):
            histogram = self._windows[index]["quantiles"].get(key)
            if histogram is not None and histogram.count:
                series.append((index * self.interval_ms, histogram.percentile(q)))
        return series

    def window_quantiles(self, index: int) -> Dict[str, Histogram]:
        window = self._windows.get(index)
        return dict(window["quantiles"]) if window else {}

    # -- serialization ------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot: sorted keys at every level.

        Empty sections are omitted per window to keep artifacts lean;
        ``fault_windows`` appears only when a schedule was installed, so
        fault-free series stay byte-identical with pre-fault tooling.
        """
        windows = {}
        for index in sorted(self._windows):
            window = self._windows[index]
            entry: dict = {}
            if window["counters"]:
                entry["counters"] = {
                    name: window["counters"][name]
                    for name in sorted(window["counters"])
                }
            if window["gauges"]:
                entry["gauges"] = {
                    name: window["gauges"][name] for name in sorted(window["gauges"])
                }
            if window["quantiles"]:
                entry["quantiles"] = {
                    key: {
                        "counts": list(histogram.counts),
                        "count": histogram.count,
                        "sum": histogram.total,
                    }
                    for key, histogram in sorted(window["quantiles"].items())
                }
            windows[str(index)] = entry
        state = {
            "interval_ms": self.interval_ms,
            "bounds": list(self.bounds),
            "windows": windows,
        }
        if self.fault_windows:
            state["fault_windows"] = [dict(row) for row in self.fault_windows]
        return state

    @classmethod
    def from_state(cls, state: dict) -> "TimeSeriesRecorder":
        recorder = cls(
            interval_ms=state["interval_ms"], bounds=tuple(state["bounds"])
        )
        recorder.merge_state(state)
        return recorder

    def merge_state(self, state: dict) -> None:
        """Fold another recorder's windows in by simulated-time key.

        Counters add, gauges take the max (worst-seen, matching
        :meth:`MetricsRegistry.merge_state`), histogram counts/sums add.
        Interval and bounds must match — merging series sampled on
        different grids would silently misalign windows.
        """
        if float(state["interval_ms"]) != self.interval_ms:
            raise ValueError(
                f"interval mismatch in merge: {state['interval_ms']!r} "
                f"vs {self.interval_ms!r}"
            )
        if tuple(state["bounds"]) != self.bounds:
            raise ValueError("quantile bound mismatch in merge")
        for key, entry in state.get("windows", {}).items():
            window = self._window(int(key))
            counters = window["counters"]
            for name, value in entry.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            gauges = window["gauges"]
            for name, value in entry.get("gauges", {}).items():
                previous = gauges.get(name)
                gauges[name] = value if previous is None else max(previous, value)
            quantiles = window["quantiles"]
            for qkey, data in entry.get("quantiles", {}).items():
                histogram = quantiles.get(qkey)
                if histogram is None:
                    histogram = quantiles[qkey] = Histogram(self.bounds)
                counts = data["counts"]
                if len(counts) != len(histogram.counts):
                    raise ValueError(f"quantile {qkey!r} count-vector mismatch")
                for i, count in enumerate(counts):
                    histogram.counts[i] += count
                histogram.count += data["count"]
                histogram.total += data["sum"]
        incoming = state.get("fault_windows")
        if incoming:
            rows = {
                tuple(sorted(row.items()))
                for row in (*self.fault_windows, *incoming)
            }
            self.fault_windows = tuple(
                sorted(
                    (dict(row) for row in rows),
                    key=lambda r: (r["start"], r["end"], r["kind"], r["label"]),
                )
            )


# ---------------------------------------------------------------------------
# The boundary sampler
# ---------------------------------------------------------------------------


class _Sampler:
    """Reads cumulative sources at window boundaries and stores deltas.

    Pull-based: components keep their existing cumulative counters and
    pay nothing per event; the only per-request telemetry cost is the
    generator's ``observe_response`` call.  The k-th wake (at simulated
    time ~``k * interval``) closes window ``k-1``; the tick counter, not
    float arithmetic on ``env.now``, keys the window so accumulated
    floating-point drift cannot skew the binning.
    """

    def __init__(self, recorder: TimeSeriesRecorder, system, generator):
        self.recorder = recorder
        self.system = system
        self.generator = generator
        self.ticks = 0
        self._last: Dict[str, float] = {}

    # -- cumulative sources -------------------------------------------------
    def _cumulative(self, env: Environment) -> Dict[str, float]:
        current: Dict[str, float] = {"kernel.events": env._sequence}
        system = self.system
        db_server = system.db_server
        database = db_server.database
        current["db.statements"] = db_server.statements
        executor = database.executor
        current["db.executor.index_scans"] = executor.index_scans
        current["db.executor.full_scans"] = executor.full_scans
        current["db.executor.range_scans"] = executor.range_scans
        current["db.executor.prefix_scans"] = executor.prefix_scans
        jms = system.main.jms
        if jms is not None:
            current["jms.deliveries"] = jms.deliveries
        query_hits = query_misses = 0
        replica_hits = replica_misses = 0
        for server_name in sorted(system.servers):
            server = system.servers[server_name]
            if server.query_cache is not None:
                for stats in server.query_cache.stats.values():
                    query_hits += stats.hits
                    query_misses += stats.misses
            for name in system.plan.replicas:
                container = server.readonly_container(name)
                if container is not None:
                    replica_hits += container.hits
                    replica_misses += container.misses
        current["cache.query_hits"] = query_hits
        current["cache.query_misses"] = query_misses
        current["replica.hits"] = replica_hits
        current["replica.misses"] = replica_misses

        # Method-cache counters appear only under level 6, so the
        # paper-level series artifacts stay byte-identical.
        method_hits = method_misses = 0
        any_method_cache = False
        for server_name in sorted(system.servers):
            cache = getattr(system.servers[server_name], "method_cache", None)
            if cache is not None:
                any_method_cache = True
                method_hits += cache.stats.hits
                method_misses += cache.stats.misses
        if any_method_cache:
            current["methodcache.hits"] = method_hits
            current["methodcache.misses"] = method_misses

        # Cluster counters appear only under a data_tier policy, so
        # single-instance series stay byte-identical with earlier runs.
        cluster = getattr(system, "cluster", None)
        if cluster is not None:
            stats = cluster.stats
            current["cluster.elections_won"] = stats.elections_won
            current["cluster.leader_failovers"] = stats.leader_failovers
            current["cluster.quorum_commits"] = stats.quorum_commits
            current["cluster.cross_shard_txns"] = stats.cross_shard_txns
            current["cluster.scatter_gather_queries"] = stats.scatter_gather_queries
            current["cluster.stale_reads_served"] = stats.stale_reads_served
            current["cluster.staleness_ms"] = stats.staleness_ms
            current["cluster.catchup_entries"] = stats.catchup_entries

        generator = self.generator
        clients = getattr(generator, "clients", None)
        if clients is not None:
            current["requests.sent"] = sum(c.requests_sent for c in clients)
            current["requests.errors"] = sum(c.errors for c in clients)
            current["requests.failovers"] = sum(c.failovers for c in clients)
            current["think_ms"] = sum(c.think_ms for c in clients)
        else:
            current["requests.sent"] = generator.requests_sent
            current["requests.errors"] = generator.errors
            current["requests.failovers"] = generator.failovers
            current["sessions.arrivals"] = generator.arrivals
            current["sessions.admitted"] = generator.admitted
            current["sessions.dropped"] = generator.dropped_sessions
            current["sessions.completed"] = generator.completions
            current["think_ms"] = generator.think_ms
        return current

    def _sample(self, env: Environment) -> None:
        self.ticks += 1
        index = self.ticks - 1
        recorder = self.recorder
        current = self._cumulative(env)
        last = self._last
        window = recorder._window(index)
        counters = window["counters"]
        for name, value in current.items():
            delta = value - last.get(name, 0)
            if delta:
                counters[name] = counters.get(name, 0) + delta
        self._last = current

        gauges = window["gauges"]
        generator = self.generator
        if getattr(generator, "clients", None) is None:
            gauges["sessions.active"] = generator.active
        jms = self.system.main.jms
        if jms is not None:
            gauges["jms.in_flight"] = jms.in_flight
        kernel = env.stats()
        gauges["kernel.ready"] = kernel["ready"]
        gauges["kernel.current_bucket"] = kernel["current_bucket"]
        gauges["kernel.future_entries"] = kernel["future_entries"]
        gauges["kernel.buckets_occupied"] = kernel["buckets_occupied"]
        gauges["kernel.overflow"] = kernel["overflow"]

    def run(self, env: Environment) -> Generator[float, None, None]:
        interval = self.recorder.interval_ms
        # Baseline before the run: replica/query-cache warming happens at
        # construction time, and its counters must not pollute window 0.
        self._last = self._cumulative(env)
        while True:
            yield interval
            self._sample(env)
            if not env.pending():
                # Nothing but this sampler left alive: final deltas are
                # taken, so let the run drain.  pending() is the
                # non-mutating check — see the class docstring.
                return


def install_sampler(
    env: Environment, recorder: TimeSeriesRecorder, system, generator
) -> None:
    """Register the window-boundary sampler as a kernel process."""
    sampler = _Sampler(recorder, system, generator)
    env.process(sampler.run(env), name="obs-sampler")
