"""RUBiS session façades (the "Session Façade" configuration, §2.2).

"For each type of web page there is a separate servlet which ... invokes
business method(s) on associated stateless session bean(s), that in turn
access related entity EJBs."  Each façade below backs one page family;
the edge-deployment level of each mirrors §4.3/§4.4 (view beans move to
the edge with the read-only replicas, form beans with the query caches,
store beans never).
"""

from __future__ import annotations

import itertools

from ...middleware.ejb import StatelessSessionBean

__all__ = [
    "BrowseCategoriesBean",
    "BrowseRegionsBean",
    "SearchItemsInCategoryBean",
    "SearchItemsInCategoryRegionBean",
    "ViewItemBean",
    "ViewBidHistoryBean",
    "ViewUserInfoBean",
    "PutBidBean",
    "PutCommentBean",
    "StoreBidBean",
    "StoreCommentBean",
    "Q_ALL_CATEGORIES",
    "Q_ALL_REGIONS",
    "Q_ITEMS_IN_CATEGORY",
    "Q_ITEMS_IN_CATEGORY_REGION",
    "Q_BID_HISTORY",
    "Q_USER_COMMENTS",
]

Q_ALL_CATEGORIES = "rubis.all_categories"
Q_ALL_REGIONS = "rubis.all_regions"
Q_ITEMS_IN_CATEGORY = "rubis.items_in_category"
Q_ITEMS_IN_CATEGORY_REGION = "rubis.items_in_category_region"
Q_BID_HISTORY = "rubis.bid_history"
Q_USER_COMMENTS = "rubis.user_comments"

_bid_ids = itertools.count(1_000_000)
_comment_ids = itertools.count(1_000_000)


class _DelegatingFacade(StatelessSessionBean):
    """Shared helper: forward a whole call to the central twin (§4.3)."""

    component_name: str = ""

    def _delegate(self, ctx, method, *args):
        central = yield from ctx.lookup(f"{self.component_name}@central")
        result = yield from central.call(ctx, method, *args)
        return result


def _authenticate(ctx, user_id, password):
    """Shared credential check against the User entity (read path)."""
    user_home = yield from ctx.lookup("User")
    ok = yield from user_home.entity(user_id).call(ctx, "check_password", password)
    return bool(ok)


class BrowseCategoriesBean(_DelegatingFacade):
    component_name = "SB_BrowseCategories"

    def get_all(self, ctx):
        server = ctx.server
        if not server.can_query_locally(Q_ALL_CATEGORIES):
            result = yield from self._delegate(ctx, "get_all")
            return result
        rows = yield from server.cached_query(ctx, Q_ALL_CATEGORIES, ())
        return rows

    def get_for_region(self, ctx, region_id):
        server = ctx.server
        if not server.can_query_locally(Q_ALL_CATEGORIES) or not server.can_query_locally(
            Q_ALL_REGIONS
        ):
            result = yield from self._delegate(ctx, "get_for_region", region_id)
            return result
        # The region header comes from the (cached) regions query rather
        # than a Region entity read: Region has no read-only replica
        # (only Item and User do, §4.3), and entities are local-only (R1).
        regions = yield from server.cached_query(ctx, Q_ALL_REGIONS, ())
        region = next((row for row in regions if row["id"] == region_id), None)
        if region is None:
            raise ValueError(f"unknown region {region_id!r}")
        rows = yield from server.cached_query(ctx, Q_ALL_CATEGORIES, ())
        return {"region": region, "categories": rows}


class BrowseRegionsBean(_DelegatingFacade):
    component_name = "SB_BrowseRegions"

    def get_all(self, ctx):
        server = ctx.server
        if not server.can_query_locally(Q_ALL_REGIONS):
            result = yield from self._delegate(ctx, "get_all")
            return result
        rows = yield from server.cached_query(ctx, Q_ALL_REGIONS, ())
        return rows


class SearchItemsInCategoryBean(_DelegatingFacade):
    component_name = "SB_SearchItemsInCategory"

    def get(self, ctx, category_id):
        server = ctx.server
        if not server.can_query_locally(Q_ITEMS_IN_CATEGORY):
            result = yield from self._delegate(ctx, "get", category_id)
            return result
        rows = yield from server.cached_query(ctx, Q_ITEMS_IN_CATEGORY, (category_id,))
        return rows


class SearchItemsInCategoryRegionBean(_DelegatingFacade):
    component_name = "SB_SearchItemsInCategoryRegion"

    def get(self, ctx, category_id, region_id):
        server = ctx.server
        if not server.can_query_locally(Q_ITEMS_IN_CATEGORY_REGION):
            result = yield from self._delegate(ctx, "get", category_id, region_id)
            return result
        rows = yield from server.cached_query(
            ctx, Q_ITEMS_IN_CATEGORY_REGION, (category_id, region_id)
        )
        return rows


class ViewItemBean(StatelessSessionBean):
    """Item page: pure entity reads — fully replica-servable (§4.3)."""

    def get(self, ctx, item_id):
        item_home = yield from ctx.lookup("RubisItem")
        details = yield from item_home.entity(item_id).call(ctx, "get_details")
        summary = yield from item_home.entity(item_id).call(ctx, "get_bid_summary")
        return {"item": details, "summary": summary}


class ViewBidHistoryBean(_DelegatingFacade):
    component_name = "SB_ViewBidHistory"

    def get(self, ctx, item_id):
        server = ctx.server
        if not server.can_query_locally(Q_BID_HISTORY):
            result = yield from self._delegate(ctx, "get", item_id)
            return result
        rows = yield from server.cached_query(ctx, Q_BID_HISTORY, (item_id,))
        return rows


class ViewUserInfoBean(_DelegatingFacade):
    component_name = "SB_ViewUserInfo"

    def get(self, ctx, user_id):
        server = ctx.server
        if not server.can_query_locally(Q_USER_COMMENTS):
            result = yield from self._delegate(ctx, "get", user_id)
            return result
        user_home = yield from ctx.lookup("User")
        details = yield from user_home.entity(user_id).call(ctx, "get_details")
        comments = yield from server.cached_query(ctx, Q_USER_COMMENTS, (user_id,))
        return {"user": details, "comments": comments}


class PutBidBean(StatelessSessionBean):
    """Put Bid Form: verify credentials, then show the bidding form."""

    def get_form(self, ctx, user_id, password, item_id):
        ok = yield from _authenticate(ctx, user_id, password)
        if not ok:
            return {"authenticated": False}
        item_home = yield from ctx.lookup("RubisItem")
        details = yield from item_home.entity(item_id).call(ctx, "get_details")
        summary = yield from item_home.entity(item_id).call(ctx, "get_bid_summary")
        return {"authenticated": True, "item": details, "summary": summary}


class PutCommentBean(StatelessSessionBean):
    """Put Comment Form: verify credentials, then show the comment form."""

    def get_form(self, ctx, user_id, password, to_user):
        ok = yield from _authenticate(ctx, user_id, password)
        if not ok:
            return {"authenticated": False}
        user_home = yield from ctx.lookup("User")
        target = yield from user_home.entity(to_user).call(ctx, "get_details")
        return {"authenticated": True, "to_user": target}


class StoreBidBean(StatelessSessionBean):
    """The bid write path: one transaction on the main server."""

    def store(self, ctx, user_id, item_id, increment):
        item_home = yield from ctx.server.lookup(ctx, "RubisItem", for_update=True)
        amount = yield from item_home.entity(item_id).call(
            ctx, "register_bid_increment", increment
        )
        bid_home = yield from ctx.lookup("Bid")
        bid_id = next(_bid_ids)
        yield from bid_home.call(
            ctx,
            "create",
            {
                "id": bid_id,
                "user_id": user_id,
                "item_id": item_id,
                "qty": 1,
                "bid": amount,
                "max_bid": amount,
                "date": ctx.env.now,
            },
        )
        return {"bid_id": bid_id, "amount": amount}


class StoreCommentBean(StatelessSessionBean):
    """The comment write path: insert + rating adjustment."""

    def store(self, ctx, from_user, to_user, item_id, rating, text):
        comment_home = yield from ctx.lookup("Comment")
        comment_id = next(_comment_ids)
        yield from comment_home.call(
            ctx,
            "create",
            {
                "id": comment_id,
                "from_user": from_user,
                "to_user": to_user,
                "item_id": item_id,
                "rating": rating,
                "date": ctx.env.now,
                "comment": text,
            },
        )
        user_home = yield from ctx.server.lookup(ctx, "User", for_update=True)
        new_rating = yield from user_home.entity(to_user).call(
            ctx, "adjust_rating", rating
        )
        return {"comment_id": comment_id, "rating": new_rating}
