"""RUBiS database schema (the eBay-like auction site).

Follows the RUBiS relational schema: regions, categories, users, items,
bids, comments.  ``items`` carries the denormalized ``nb_of_bids`` /
``max_bid`` columns the real RUBiS maintains — which is precisely why
storing a bid *writes the Item entity* and triggers replica pushes in
§4.3.
"""

from __future__ import annotations

from typing import List

from ...rdbms.schema import Column, ForeignKey, TableSchema
from ...rdbms.types import FLOAT, INTEGER, TEXT

__all__ = ["rubis_schemas"]


def rubis_schemas() -> List[TableSchema]:
    return [
        TableSchema(
            "regions",
            [Column("id", INTEGER), Column("name", TEXT)],
            primary_key="id",
        ),
        TableSchema(
            "categories",
            [Column("id", INTEGER), Column("name", TEXT)],
            primary_key="id",
        ),
        TableSchema(
            "users",
            [
                Column("id", INTEGER),
                Column("nickname", TEXT),
                Column("password", TEXT),
                Column("email", TEXT),
                Column("rating", INTEGER, default=0),
                Column("balance", FLOAT, default=0.0),
                Column("region_id", INTEGER),
                Column("creation_date", FLOAT, default=0.0),
            ],
            primary_key="id",
            indexes=["region_id", "nickname"],
            foreign_keys=[ForeignKey("region_id", "regions", "id")],
        ),
        TableSchema(
            "items",
            [
                Column("id", INTEGER),
                Column("name", TEXT),
                Column("description", TEXT),
                Column("initial_price", FLOAT),
                Column("reserve_price", FLOAT, nullable=True),
                Column("buy_now", FLOAT, nullable=True),
                Column("quantity", INTEGER, default=1),
                Column("nb_of_bids", INTEGER, default=0),
                Column("max_bid", FLOAT, default=0.0),
                Column("start_date", FLOAT, default=0.0),
                Column("end_date", FLOAT, default=0.0),
                Column("seller", INTEGER),
                Column("category", INTEGER),
            ],
            primary_key="id",
            indexes=["category", "seller"],
            foreign_keys=[
                ForeignKey("seller", "users", "id"),
                ForeignKey("category", "categories", "id"),
            ],
        ),
        TableSchema(
            "bids",
            [
                Column("id", INTEGER),
                Column("user_id", INTEGER),
                Column("item_id", INTEGER),
                Column("qty", INTEGER, default=1),
                Column("bid", FLOAT),
                Column("max_bid", FLOAT),
                Column("date", FLOAT, default=0.0),
            ],
            primary_key="id",
            indexes=["item_id", "user_id"],
            foreign_keys=[
                ForeignKey("user_id", "users", "id"),
                ForeignKey("item_id", "items", "id"),
            ],
        ),
        TableSchema(
            "comments",
            [
                Column("id", INTEGER),
                Column("from_user", INTEGER),
                Column("to_user", INTEGER),
                Column("item_id", INTEGER),
                Column("rating", INTEGER),
                Column("date", FLOAT, default=0.0),
                Column("comment", TEXT),
            ],
            primary_key="id",
            indexes=["to_user", "item_id"],
            foreign_keys=[
                ForeignKey("from_user", "users", "id"),
                ForeignKey("to_user", "users", "id"),
                ForeignKey("item_id", "items", "id"),
            ],
        ),
    ]
