"""RUBiS data generation.

The paper: "we added 400 users from 20 regions, selling 400 items
belonging to 20 categories" — plus a plausible bid/comment history so
the Bids and User Info pages have rows to list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ...rdbms.engine import Database
from ...simnet.rng import Streams
from .schema import rubis_schemas

__all__ = ["RubisCatalog", "populate_rubis", "DEFAULT_SIZES"]

DEFAULT_SIZES = {
    "regions": 20,
    "categories": 20,
    "users": 400,
    "items": 400,
    "bids_per_item_max": 6,
    "comments_per_user_max": 4,
}


@dataclass
class RubisCatalog:
    """Identifier catalog for workload generators."""

    region_ids: List[int] = field(default_factory=list)
    category_ids: List[int] = field(default_factory=list)
    user_ids: List[int] = field(default_factory=list)
    item_ids: List[int] = field(default_factory=list)
    items_by_category: Dict[int, List[int]] = field(default_factory=dict)
    seller_of_item: Dict[int, int] = field(default_factory=dict)
    region_of_user: Dict[int, int] = field(default_factory=dict)
    next_bid_id: int = 1
    next_comment_id: int = 1


def populate_rubis(
    streams: Streams, sizes: Dict[str, int] = None
) -> "tuple[Database, RubisCatalog]":
    """Create and fill the RUBiS database; returns (db, id catalog)."""
    sizes = dict(DEFAULT_SIZES, **(sizes or {}))
    database = Database("rubis")
    for schema in rubis_schemas():
        database.create_table(schema)

    catalog = RubisCatalog()
    rng = streams.get("rubis-data")

    for region_id in range(1, sizes["regions"] + 1):
        database.execute(
            "INSERT INTO regions (id, name) VALUES (?, ?)",
            (region_id, f"Region-{region_id}"),
        )
        catalog.region_ids.append(region_id)

    for category_id in range(1, sizes["categories"] + 1):
        database.execute(
            "INSERT INTO categories (id, name) VALUES (?, ?)",
            (category_id, f"Category-{category_id}"),
        )
        catalog.category_ids.append(category_id)
        catalog.items_by_category[category_id] = []

    for user_id in range(1, sizes["users"] + 1):
        region_id = catalog.region_ids[(user_id - 1) % len(catalog.region_ids)]
        database.execute(
            "INSERT INTO users (id, nickname, password, email, rating, balance, "
            "region_id, creation_date) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                user_id,
                f"user{user_id}",
                f"password{user_id}",
                f"user{user_id}@rubis.example",
                0,
                0.0,
                region_id,
                0.0,
            ),
        )
        catalog.user_ids.append(user_id)
        catalog.region_of_user[user_id] = region_id

    for item_id in range(1, sizes["items"] + 1):
        category_id = catalog.category_ids[(item_id - 1) % len(catalog.category_ids)]
        seller = catalog.user_ids[(item_id * 7) % len(catalog.user_ids)]
        initial_price = round(rng.uniform(5.0, 500.0), 2)
        database.execute(
            "INSERT INTO items (id, name, description, initial_price, reserve_price, "
            "buy_now, quantity, nb_of_bids, max_bid, start_date, end_date, seller, "
            "category) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                item_id,
                f"Item-{item_id}",
                f"A fine auction lot number {item_id}",
                initial_price,
                round(initial_price * 1.2, 2),
                round(initial_price * 2.0, 2),
                1,
                0,
                0.0,
                0.0,
                7.0 * 24 * 3600 * 1000,
                seller,
                category_id,
            ),
        )
        catalog.item_ids.append(item_id)
        catalog.items_by_category[category_id].append(item_id)
        catalog.seller_of_item[item_id] = seller

    # -- bid history -----------------------------------------------------------
    bid_id = 1
    for item_id in catalog.item_ids:
        bids = rng.randint(0, sizes["bids_per_item_max"])
        price = None
        for _ in range(bids):
            bidder = rng.choice(catalog.user_ids)
            row = database.execute(
                "SELECT initial_price, max_bid FROM items WHERE id = ?", (item_id,)
            ).first()
            price = round(max(row["initial_price"], row["max_bid"]) + rng.uniform(1, 20), 2)
            database.execute(
                "INSERT INTO bids (id, user_id, item_id, qty, bid, max_bid, date) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (bid_id, bidder, item_id, 1, price, price, 0.0),
            )
            database.execute(
                "UPDATE items SET nb_of_bids = ?, max_bid = ? WHERE id = ?",
                (bid_id_count(database, item_id), price, item_id),
            )
            bid_id += 1
    catalog.next_bid_id = bid_id

    # -- comment history -----------------------------------------------------
    comment_id = 1
    for user_id in catalog.user_ids:
        comments = rng.randint(0, sizes["comments_per_user_max"])
        for _ in range(comments):
            author = rng.choice(catalog.user_ids)
            rating = rng.choice([-1, 0, 1])
            database.execute(
                "INSERT INTO comments (id, from_user, to_user, item_id, rating, date, "
                "comment) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    comment_id,
                    author,
                    user_id,
                    rng.choice(catalog.item_ids),
                    rating,
                    0.0,
                    f"Comment {comment_id}: pleasure doing business",
                ),
            )
            comment_id += 1
    catalog.next_comment_id = comment_id

    return database, catalog


def bid_id_count(database: Database, item_id: int) -> int:
    """Current number of bids on ``item_id`` (used while seeding)."""
    return database.execute(
        "SELECT COUNT(*) AS n FROM bids WHERE item_id = ?", (item_id,)
    ).scalar()
