"""RUBiS service usage patterns (Tables 4 and 5).

Browser: 40-request sessions with the Table 4 weights.  Bidder: the
seven-page script — "bidder bids on an item and leaves a comment for the
seller of the item".
"""

from __future__ import annotations

from ...core.usage import ScriptedPattern, WeightedPattern
from ...simnet.rng import Streams
from .data import RubisCatalog

__all__ = ["browser_pattern", "bidder_pattern", "BROWSER_WEIGHTS", "BIDDER_SCRIPT"]

# Table 4: request percentages within a browser session.
BROWSER_WEIGHTS = {
    "Main": 2.5,
    "Browse": 2.5,
    "All Categories": 2.5,
    "All Regions": 2.5,
    "Region": 2.5,
    "Category": 7.5,
    "Category & Region": 7.5,
    "Item": 42.5,
    "Bids": 15.0,
    "User Info": 15.0,
}

BROWSER_SESSION_LENGTH = 40

# Table 5: bid on an item, then comment on its seller.
BIDDER_SCRIPT = [
    "Main",
    "Put Bid Auth",
    "Put Bid Form",
    "Store Bid",
    "Put Comment Auth",
    "Put Comment Form",
    "Store Comment",
]


def browser_pattern(catalog: RubisCatalog) -> WeightedPattern:
    """Table 4's browser with structurally consistent parameters."""

    def params_for(streams: Streams, page: str, previous):
        rng = "rubis-browser-params"
        if page == "Region":
            return {"region_id": streams.choice(rng, catalog.region_ids)}
        if page == "Category":
            return {"category_id": streams.choice(rng, catalog.category_ids)}
        if page == "Category & Region":
            return {
                "category_id": streams.choice(rng, catalog.category_ids),
                "region_id": streams.choice(rng, catalog.region_ids),
            }
        if page in ("Item", "Bids"):
            # Prefer an item of the category just listed.
            if previous is not None and previous.page in ("Category", "Category & Region"):
                category_id = previous.params["category_id"]
                items = catalog.items_by_category.get(category_id) or catalog.item_ids
            else:
                items = catalog.item_ids
            return {"item_id": streams.choice(rng, items)}
        if page == "User Info":
            return {"user_id": streams.choice(rng, catalog.user_ids)}
        return {}

    return WeightedPattern(
        name="rubis-browser",
        length=BROWSER_SESSION_LENGTH,
        weights=BROWSER_WEIGHTS,
        first_page="Main",
        params_for=params_for,
    )


def bidder_pattern(catalog: RubisCatalog) -> ScriptedPattern:
    """Table 5's bidder: one bid, one comment for the item's seller."""

    # Session-scoped draws: the same user bids and comments throughout a
    # session, and the comment goes to the seller of the bid-upon item.
    # ScriptedPattern generates a session's visits in one ordered pass, so
    # re-drawing at the script's first page scopes the identity correctly.
    session_state = {}

    def params_for(streams: Streams, page: str, index: int):
        rng = "rubis-bidder-params"
        if index == 0 or not session_state:
            session_state["user_id"] = streams.choice(rng, catalog.user_ids)
            session_state["item_id"] = streams.choice(rng, catalog.item_ids)
        user_id = session_state["user_id"]
        item_id = session_state["item_id"]
        seller = catalog.seller_of_item[item_id]
        common = {
            "user_id": user_id,
            "password": f"password{user_id}",
            "item_id": item_id,
        }
        if page in ("Put Bid Form", "Store Bid"):
            return dict(common, increment=round(streams.uniform(rng, 1.0, 10.0), 2))
        if page == "Put Comment Form":
            return dict(common, to_user=seller)
        if page == "Store Comment":
            return dict(
                common,
                to_user=seller,
                rating=streams.choice(rng, [-1, 1]),  # a zero rating would be a no-op write
                text="pleasure doing business with you",
            )
        return {}

    return ScriptedPattern(name="rubis-bidder", script=BIDDER_SCRIPT, params_for=params_for)
