"""Assembly of the RUBiS application descriptor.

Placement hints follow §4.3/§4.4: the ``SB_View*`` façades move to the
edge with the read-only replicas (level 3); the browse/search and form
façades move with the query caches (level 4); the ``SB_Store*`` write
façades stay with the database.  RUBiS query caches are **push-based**
("A push-based query update mechanism was implemented", §4.4).
"""

from __future__ import annotations

from ...core.patterns import PatternLevel
from ...middleware.descriptors import (
    ApplicationDescriptor,
    ComponentDescriptor,
    ComponentKind,
    Persistence,
    QueryCacheDescriptor,
    ReadMostlyDescriptor,
    RefreshMode,
    TxAttribute,
)
from . import entities, facades, web
from .facades import (
    Q_ALL_CATEGORIES,
    Q_ALL_REGIONS,
    Q_BID_HISTORY,
    Q_ITEMS_IN_CATEGORY,
    Q_ITEMS_IN_CATEGORY_REGION,
    Q_USER_COMMENTS,
)
from .schema import rubis_schemas

__all__ = ["build_application", "BROWSER_PAGES", "BIDDER_PAGES", "ALL_PAGES"]

BROWSER_PAGES = [
    "Main",
    "Browse",
    "All Categories",
    "All Regions",
    "Region",
    "Category",
    "Category & Region",
    "Item",
    "Bids",
    "User Info",
]
BIDDER_PAGES = [
    "Main",
    "Put Bid Auth",
    "Put Bid Form",
    "Store Bid",
    "Put Comment Auth",
    "Put Comment Form",
    "Store Comment",
]
ALL_PAGES = BROWSER_PAGES + BIDDER_PAGES[1:]


def _entity(name, impl, table, read_mostly=False):
    return ComponentDescriptor(
        name=name,
        kind=ComponentKind.ENTITY,
        impl=impl,
        table=table,
        # "Entity beans moved from CMP 1.1 to CMP 2.0" (§3.4).
        persistence=Persistence.CMP,
        remote_interface=False,
        read_mostly=(
            ReadMostlyDescriptor(updater=name, refresh_mode=RefreshMode.PUSH)
            if read_mostly
            else None
        ),
    )


def _facade(name, impl, edge_from_level=None, cached_methods=()):
    return ComponentDescriptor(
        name=name,
        kind=ComponentKind.STATELESS_SESSION,
        impl=impl,
        remote_interface=True,
        edge_from_level=edge_from_level,
        cached_methods=tuple(cached_methods),
    )


def _servlet(name, impl):
    return ComponentDescriptor(
        name=name,
        kind=ComponentKind.SERVLET,
        impl=impl,
        remote_interface=False,
        tx_attribute=TxAttribute.NOT_SUPPORTED,
    )


def build_application(level: PatternLevel, catalog=None) -> ApplicationDescriptor:
    """The RUBiS application (Session Façade version) for ``level``.

    ``catalog`` (a :class:`~repro.apps.rubis.data.RubisCatalog`) sharpens
    the category-and-region cache's invalidation key: the seller's region
    is not part of an item update event, but the deployer knows the
    static user-to-region mapping and can declare it (§5: invalidating
    operations "should be possibly specified via deployment descriptors").
    """
    level = PatternLevel(level)
    app = ApplicationDescriptor(name="rubis")

    for schema in rubis_schemas():
        app.add_schema(schema)

    # -- entity tier: "Read-only BMP versions of Item and User beans were
    #    introduced" (§4.3) -------------------------------------------------
    app.add(_entity("Region", entities.RegionBean, "regions"))
    app.add(_entity("Category", entities.CategoryBean, "categories"))
    app.add(_entity("User", entities.UserBean, "users", read_mostly=True))
    app.add(_entity("RubisItem", entities.RubisItemBean, "items", read_mostly=True))
    app.add(_entity("Bid", entities.BidBean, "bids"))
    app.add(_entity("Comment", entities.CommentBean, "comments"))

    # -- session façades ---------------------------------------------------------
    # ``cached_methods`` marks read-only business methods eligible for
    # level-6 transactional method caching; the write facades carry none.
    app.add(
        _facade(
            "SB_BrowseCategories",
            facades.BrowseCategoriesBean,
            edge_from_level=4,
            cached_methods=("get_all", "get_for_region"),
        )
    )
    app.add(
        _facade(
            "SB_BrowseRegions",
            facades.BrowseRegionsBean,
            edge_from_level=4,
            cached_methods=("get_all",),
        )
    )
    app.add(
        _facade(
            "SB_SearchItemsInCategory",
            facades.SearchItemsInCategoryBean,
            edge_from_level=4,
            cached_methods=("get",),
        )
    )
    app.add(
        _facade(
            "SB_SearchItemsInCategoryRegion",
            facades.SearchItemsInCategoryRegionBean,
            edge_from_level=4,
            cached_methods=("get",),
        )
    )
    app.add(
        _facade(
            "SB_ViewItem",
            facades.ViewItemBean,
            edge_from_level=3,
            cached_methods=("get",),
        )
    )
    app.add(
        _facade(
            "SB_ViewBidHistory",
            facades.ViewBidHistoryBean,
            edge_from_level=3,
            cached_methods=("get",),
        )
    )
    app.add(
        _facade(
            "SB_ViewUserInfo",
            facades.ViewUserInfoBean,
            edge_from_level=3,
            cached_methods=("get",),
        )
    )
    app.add(_facade("SB_PutBid", facades.PutBidBean, edge_from_level=4))
    app.add(_facade("SB_PutComment", facades.PutCommentBean, edge_from_level=4))
    app.add(_facade("SB_StoreBid", facades.StoreBidBean))
    app.add(_facade("SB_StoreComment", facades.StoreCommentBean))

    # -- queries & push-based edge caches ("caching of all queries involved
    #    in the processing of all requests in our browser and bidder
    #    sessions", §4.4) -----------------------------------------------------
    def cache(query_id, sql, invalidated_by=(), key_of_update=None):
        app.add_query_cache(
            QueryCacheDescriptor(
                query_id=query_id,
                sql=sql,
                invalidated_by=tuple(invalidated_by),
                refresh_mode=RefreshMode.PUSH,
                key_of_update=key_of_update,
            )
        )

    cache(Q_ALL_CATEGORIES, "SELECT * FROM categories")
    cache(Q_ALL_REGIONS, "SELECT * FROM regions")
    cache(
        Q_ITEMS_IN_CATEGORY,
        "SELECT id, name, initial_price, max_bid, nb_of_bids FROM items "
        "WHERE category = ?",
        invalidated_by=("items",),
        key_of_update=lambda event: (
            (event.state.get("category"),) if event.state else None
        ),
    )
    if catalog is not None:
        region_of_user = dict(catalog.region_of_user)

        def category_region_key(event):
            if not event.state:
                return None
            region = region_of_user.get(event.state.get("seller"))
            if region is None:
                return None
            return (event.state.get("category"), region)

    else:
        category_region_key = None  # region unknown: invalidate all entries
    cache(
        Q_ITEMS_IN_CATEGORY_REGION,
        "SELECT items.id, items.name, items.max_bid, items.nb_of_bids "
        "FROM items JOIN users u ON items.seller = u.id "
        "WHERE items.category = ? AND u.region_id = ?",
        invalidated_by=("items",),
        key_of_update=category_region_key,
    )
    cache(
        Q_BID_HISTORY,
        "SELECT bids.id, bids.bid, bids.date, u.nickname "
        "FROM bids JOIN users u ON bids.user_id = u.id WHERE bids.item_id = ?",
        invalidated_by=("bids",),
        key_of_update=lambda event: (
            (event.state.get("item_id"),) if event.state else None
        ),
    )
    cache(
        Q_USER_COMMENTS,
        "SELECT comments.id, comments.rating, comments.comment, u.nickname "
        "FROM comments JOIN users u ON comments.from_user = u.id "
        "WHERE comments.to_user = ?",
        invalidated_by=("comments",),
        key_of_update=lambda event: (
            (event.state.get("to_user"),) if event.state else None
        ),
    )

    # -- web tier ------------------------------------------------------------
    servlet_impls = {
        "Main": web.MainServlet,
        "Browse": web.BrowseServlet,
        "All Categories": web.AllCategoriesServlet,
        "All Regions": web.AllRegionsServlet,
        "Region": web.RegionServlet,
        "Category": web.CategoryServlet,
        "Category & Region": web.CategoryRegionServlet,
        "Item": web.ItemServlet,
        "Bids": web.BidsServlet,
        "User Info": web.UserInfoServlet,
        "Put Bid Auth": web.PutBidAuthServlet,
        "Put Bid Form": web.PutBidFormServlet,
        "Store Bid": web.StoreBidServlet,
        "Put Comment Auth": web.PutCommentAuthServlet,
        "Put Comment Form": web.PutCommentFormServlet,
        "Store Comment": web.StoreCommentServlet,
    }
    for page, impl in servlet_impls.items():
        component = f"servlet.{page}"
        app.add(_servlet(component, impl))
        app.map_page(page, component)

    app.validate()
    return app
