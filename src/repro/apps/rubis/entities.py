"""RUBiS entity beans (CMP 2.0, per the paper's modifications).

"Read-only BMP versions of Item and User beans were introduced" in §4.3
— so Item and User carry read-mostly descriptors; Region, Category, Bid
and Comment remain plain entities (list pages are served by query
caches instead).
"""

from __future__ import annotations

from ...middleware.ejb import EntityBean
from ...middleware.entity import FinderSpec

__all__ = [
    "RegionBean",
    "CategoryBean",
    "UserBean",
    "RubisItemBean",
    "BidBean",
    "CommentBean",
]


class RegionBean(EntityBean):
    FINDERS = {"find_all": FinderSpec("SELECT * FROM regions")}

    def get_details(self, ctx):
        return dict(self.state)


class CategoryBean(EntityBean):
    FINDERS = {"find_all": FinderSpec("SELECT * FROM categories")}

    def get_details(self, ctx):
        return dict(self.state)


class UserBean(EntityBean):
    """A registered user; rating changes when comments are stored."""

    FINDERS = {
        "find_by_nickname": FinderSpec("SELECT * FROM users WHERE nickname = ?"),
        "find_by_region": FinderSpec("SELECT * FROM users WHERE region_id = ?"),
    }

    def get_details(self, ctx):
        # Public info only — password stays server-side.
        public = dict(self.state)
        public.pop("password", None)
        return public

    def check_password(self, ctx, password):
        return self.state["password"] == password

    def adjust_rating(self, ctx, delta):
        self.set_field("rating", self.state["rating"] + delta)
        return self.state["rating"]


class RubisItemBean(EntityBean):
    """An auction item with denormalized bid summary columns."""

    FINDERS = {
        "find_by_category": FinderSpec("SELECT * FROM items WHERE category = ?"),
        "find_by_seller": FinderSpec("SELECT * FROM items WHERE seller = ?"),
    }

    def get_details(self, ctx):
        return dict(self.state)

    def get_bid_summary(self, ctx):
        return {
            "nb_of_bids": self.state["nb_of_bids"],
            "max_bid": self.state["max_bid"],
            "current_price": max(self.state["max_bid"], self.state["initial_price"]),
        }

    def register_bid(self, ctx, amount):
        """Apply a new bid to the denormalized summary columns."""
        if amount <= 0:
            raise ValueError("bid amount must be positive")
        current = max(self.state["max_bid"], self.state["initial_price"])
        if amount <= current:
            raise ValueError(
                f"bid {amount} does not beat the current price {current}"
            )
        self.set_field("nb_of_bids", self.state["nb_of_bids"] + 1)
        self.set_field("max_bid", amount)
        return self.state["nb_of_bids"]

    def register_bid_increment(self, ctx, increment):
        """Bid ``increment`` above the current price; returns the new bid."""
        if increment <= 0:
            raise ValueError("bid increment must be positive")
        current = max(self.state["max_bid"], self.state["initial_price"])
        amount = round(current + increment, 2)
        self.set_field("nb_of_bids", self.state["nb_of_bids"] + 1)
        self.set_field("max_bid", amount)
        return amount


class BidBean(EntityBean):
    FINDERS = {
        "find_by_item": FinderSpec("SELECT * FROM bids WHERE item_id = ?"),
        "find_by_user": FinderSpec("SELECT * FROM bids WHERE user_id = ?"),
    }

    def get_details(self, ctx):
        return dict(self.state)


class CommentBean(EntityBean):
    FINDERS = {
        "find_by_to_user": FinderSpec("SELECT * FROM comments WHERE to_user = ?"),
    }

    def get_details(self, ctx):
        return dict(self.state)
