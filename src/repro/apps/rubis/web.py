"""RUBiS web tier: one thin servlet per page (Tables 4 and 5).

RUBiS's design is "rather streamlined": each servlet invokes at most one
business method on its dedicated session façade ("we only made sure that
there is only one RMI call from the web layer to the EJB layer in every
servlet web page generation method", §4.2).
"""

from __future__ import annotations

from ...middleware.ejb import Servlet
from ...middleware.web import Response, WebRequest

__all__ = [
    "PAGE_SIZES",
    "MainServlet",
    "BrowseServlet",
    "AllCategoriesServlet",
    "AllRegionsServlet",
    "RegionServlet",
    "CategoryServlet",
    "CategoryRegionServlet",
    "ItemServlet",
    "BidsServlet",
    "UserInfoServlet",
    "PutBidAuthServlet",
    "PutBidFormServlet",
    "StoreBidServlet",
    "PutCommentAuthServlet",
    "PutCommentFormServlet",
    "StoreCommentServlet",
]

PAGE_SIZES = {
    "Main": 2_100,
    "Browse": 2_000,
    "All Categories": 2_600,
    "All Regions": 2_600,
    "Region": 2_800,
    "Category": 3_400,
    "Category & Region": 3_400,
    "Item": 3_800,
    "Bids": 3_400,
    "User Info": 3_400,
    "Put Bid Auth": 2_200,
    "Put Bid Form": 3_200,
    "Store Bid": 2_400,
    "Put Comment Auth": 2_200,
    "Put Comment Form": 2_800,
    "Store Comment": 2_400,
}
ROW_HTML = 90


class MainServlet(Servlet):
    """Static entry page."""

    def handle(self, ctx, request: WebRequest):
        return Response(PAGE_SIZES["Main"], data={"page": "Main"})


class BrowseServlet(Servlet):
    """Static page listing browsing options."""

    def handle(self, ctx, request: WebRequest):
        return Response(PAGE_SIZES["Browse"], data={"page": "Browse"})


class AllCategoriesServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        facade = yield from ctx.lookup("SB_BrowseCategories")
        rows = yield from facade.call(ctx, "get_all")
        return Response(
            PAGE_SIZES["All Categories"] + ROW_HTML * len(rows),
            data={"categories": len(rows)},
        )


class AllRegionsServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        facade = yield from ctx.lookup("SB_BrowseRegions")
        rows = yield from facade.call(ctx, "get_all")
        return Response(
            PAGE_SIZES["All Regions"] + ROW_HTML * len(rows),
            data={"regions": len(rows)},
        )


class RegionServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        facade = yield from ctx.lookup("SB_BrowseCategories")
        page = yield from facade.call(ctx, "get_for_region", request.param("region_id"))
        return Response(
            PAGE_SIZES["Region"] + ROW_HTML * len(page["categories"]),
            data={"region": page["region"]["name"], "categories": len(page["categories"])},
        )


class CategoryServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        facade = yield from ctx.lookup("SB_SearchItemsInCategory")
        rows = yield from facade.call(ctx, "get", request.param("category_id"))
        return Response(
            PAGE_SIZES["Category"] + ROW_HTML * len(rows),
            data={"items": len(rows)},
        )


class CategoryRegionServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        facade = yield from ctx.lookup("SB_SearchItemsInCategoryRegion")
        rows = yield from facade.call(
            ctx, "get", request.param("category_id"), request.param("region_id")
        )
        return Response(
            PAGE_SIZES["Category & Region"] + ROW_HTML * len(rows),
            data={"items": len(rows)},
        )


class ItemServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        facade = yield from ctx.lookup("SB_ViewItem")
        page = yield from facade.call(ctx, "get", request.param("item_id"))
        return Response(
            PAGE_SIZES["Item"],
            data={"item": page["item"]["name"], "summary": page["summary"]},
        )


class BidsServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        facade = yield from ctx.lookup("SB_ViewBidHistory")
        rows = yield from facade.call(ctx, "get", request.param("item_id"))
        return Response(
            PAGE_SIZES["Bids"] + ROW_HTML * len(rows),
            data={"bids": len(rows)},
        )


class UserInfoServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        facade = yield from ctx.lookup("SB_ViewUserInfo")
        page = yield from facade.call(ctx, "get", request.param("user_id"))
        return Response(
            PAGE_SIZES["User Info"] + ROW_HTML * len(page["comments"]),
            data={"user": page["user"]["nickname"], "comments": len(page["comments"])},
        )


class PutBidAuthServlet(Servlet):
    """Static authentication form for bidding."""

    def handle(self, ctx, request: WebRequest):
        return Response(PAGE_SIZES["Put Bid Auth"], data={"page": "Put Bid Auth"})


class PutBidFormServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        facade = yield from ctx.lookup("SB_PutBid")
        form = yield from facade.call(
            ctx,
            "get_form",
            request.param("user_id"),
            request.param("password"),
            request.param("item_id"),
        )
        status = 200 if form["authenticated"] else 401
        return Response(PAGE_SIZES["Put Bid Form"], status=status, data=form)


class StoreBidServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        facade = yield from ctx.lookup("SB_StoreBid")
        receipt = yield from facade.call(
            ctx,
            "store",
            request.param("user_id"),
            request.param("item_id"),
            request.param("increment", 5.0),
        )
        return Response(PAGE_SIZES["Store Bid"], data=receipt)


class PutCommentAuthServlet(Servlet):
    """Static authentication form for commenting."""

    def handle(self, ctx, request: WebRequest):
        return Response(
            PAGE_SIZES["Put Comment Auth"], data={"page": "Put Comment Auth"}
        )


class PutCommentFormServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        facade = yield from ctx.lookup("SB_PutComment")
        form = yield from facade.call(
            ctx,
            "get_form",
            request.param("user_id"),
            request.param("password"),
            request.param("to_user"),
        )
        status = 200 if form["authenticated"] else 401
        return Response(PAGE_SIZES["Put Comment Form"], status=status, data=form)


class StoreCommentServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        facade = yield from ctx.lookup("SB_StoreComment")
        receipt = yield from facade.call(
            ctx,
            "store",
            request.param("user_id"),
            request.param("to_user"),
            request.param("item_id"),
            request.param("rating", 1),
            request.param("text", "great counterpart"),
        )
        return Response(PAGE_SIZES["Store Comment"], data=receipt)
