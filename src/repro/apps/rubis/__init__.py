"""RUBiS — the Rice University Bidding System (Session Façade version)."""

from .app import ALL_PAGES, BIDDER_PAGES, BROWSER_PAGES, build_application
from .data import DEFAULT_SIZES, RubisCatalog, populate_rubis
from .workload import bidder_pattern, browser_pattern

__all__ = [
    "ALL_PAGES",
    "BIDDER_PAGES",
    "BROWSER_PAGES",
    "build_application",
    "DEFAULT_SIZES",
    "RubisCatalog",
    "populate_rubis",
    "bidder_pattern",
    "browser_pattern",
]
