"""Pet Store data generation.

The paper enlarged the stock database "to allow testing a greater number
of concurrent users without contention for the data.  Specifically, we
added five artificial categories, 50 products and 300 items."  On top of
Pet Store's original five categories and modest product list, that gives
the defaults below.  Accounts/signons are generated for the buyer
population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ...rdbms.engine import Database
from ...simnet.rng import Streams
from .schema import petstore_schemas

__all__ = ["PetStoreCatalog", "populate_petstore", "DEFAULT_SIZES"]

ORIGINAL_CATEGORIES = ["Fish", "Dogs", "Cats", "Reptiles", "Birds"]

DEFAULT_SIZES = {
    "artificial_categories": 5,   # paper: "added five artificial categories"
    "products": 66,               # ~16 original + 50 added
    "items": 350,                 # ~50 original + 300 added
    "accounts": 200,
    "initial_quantity": 10_000,
}


@dataclass
class PetStoreCatalog:
    """Identifier catalog handed to workload generators.

    Knowing which ids exist lets browser sessions request structurally
    valid pages (an Item page always names an item of the previously
    viewed product).
    """

    category_ids: List[int] = field(default_factory=list)
    products_by_category: Dict[int, List[int]] = field(default_factory=dict)
    items_by_product: Dict[int, List[int]] = field(default_factory=dict)
    user_ids: List[str] = field(default_factory=list)
    keywords: List[str] = field(default_factory=list)

    @property
    def product_ids(self) -> List[int]:
        return [p for products in self.products_by_category.values() for p in products]

    @property
    def item_ids(self) -> List[int]:
        return [i for items in self.items_by_product.values() for i in items]


def populate_petstore(
    streams: Streams, sizes: Dict[str, int] = None
) -> "tuple[Database, PetStoreCatalog]":
    """Create and fill the Pet Store database; returns (db, id catalog)."""
    sizes = dict(DEFAULT_SIZES, **(sizes or {}))
    database = Database("petstore")
    for schema in petstore_schemas():
        database.create_table(schema)

    catalog = PetStoreCatalog()
    rng = streams.get("petstore-data")

    # -- categories -----------------------------------------------------------
    names = list(ORIGINAL_CATEGORIES) + [
        f"Exotic-{index}" for index in range(sizes["artificial_categories"])
    ]
    for category_id, name in enumerate(names, start=1):
        database.execute(
            "INSERT INTO category (id, name, description) VALUES (?, ?, ?)",
            (category_id, name, f"All about {name.lower()} and their care"),
        )
        catalog.category_ids.append(category_id)
        catalog.products_by_category[category_id] = []

    # -- products -----------------------------------------------------------
    breeds = ["Angel", "Tiger", "Golden", "Spotted", "Dwarf", "Royal", "Shadow", "Amazon"]
    for product_id in range(1, sizes["products"] + 1):
        category_id = catalog.category_ids[(product_id - 1) % len(catalog.category_ids)]
        breed = breeds[product_id % len(breeds)]
        name = f"{breed} {names[category_id - 1]} #{product_id}"
        database.execute(
            "INSERT INTO product (id, category_id, name, description) VALUES (?, ?, ?, ?)",
            (product_id, category_id, name, f"A fine specimen of {name}"),
        )
        catalog.products_by_category[category_id].append(product_id)
        catalog.items_by_product[product_id] = []
    catalog.keywords = sorted({breed.lower() for breed in breeds})

    # -- items + inventory ----------------------------------------------------
    product_ids = catalog.product_ids
    for item_id in range(1, sizes["items"] + 1):
        product_id = product_ids[(item_id - 1) % len(product_ids)]
        breed = breeds[product_id % len(breeds)]
        price = round(rng.uniform(9.5, 220.0), 2)
        database.execute(
            "INSERT INTO item (id, product_id, name, list_price, unit_cost, description) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                item_id,
                product_id,
                f"EST-{item_id}",
                price,
                round(price * 0.6, 2),
                # The breed keyword makes items findable by keyword search.
                f"Variant {item_id} of the {breed} line (product {product_id})",
            ),
        )
        database.execute(
            "INSERT INTO inventory (item_id, quantity) VALUES (?, ?)",
            (item_id, sizes["initial_quantity"]),
        )
        catalog.items_by_product[product_id].append(item_id)

    # -- accounts / signons -------------------------------------------------
    for index in range(sizes["accounts"]):
        user_id = f"user{index}"
        database.execute(
            "INSERT INTO account (user_id, email, first_name, last_name, address, "
            "city, state, zip, country, phone) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                user_id,
                f"{user_id}@example.net",
                f"First{index}",
                f"Last{index}",
                f"{100 + index} Main Street",
                "New York",
                "NY",
                f"1000{index % 10}",
                "USA",
                f"555-01{index % 100:02d}",
            ),
        )
        database.execute(
            "INSERT INTO signon (user_id, password) VALUES (?, ?)",
            (user_id, f"pw-{index}"),
        )
        catalog.user_ids.append(user_id)

    return database, catalog
