"""Pet Store session façades (stateless).

``Catalog`` is the paper's canonical façade (Figures 3-5): it wraps the
product domain model, serves reads from read-only replicas and query
caches when they are deployed locally, and *delegates to its central
counterpart* when a request "cannot be served locally by delegating to
the read-only beans" (§4.3) — one bulk RMI call.

``SignOnFacade`` / ``CustomerFacade`` / ``OrderFacade`` carry the buyer
path; they live only on the main server, co-located with the
transactional entities they wrap.
"""

from __future__ import annotations

import itertools

from ...middleware.ejb import StatelessSessionBean

__all__ = ["CatalogBean", "SignOnFacadeBean", "CustomerFacadeBean", "OrderFacadeBean"]

Q_PRODUCTS_OF_CATEGORY = "petstore.products_of_category"
Q_ITEMS_OF_PRODUCT = "petstore.items_of_product"
Q_SEARCH_ITEMS = "petstore.search_items"

_order_ids = itertools.count(100_000)


class CatalogBean(StatelessSessionBean):
    """Read façade over the product catalog."""

    def _delegate(self, ctx, method, *args):
        central = yield from ctx.lookup("Catalog@central")
        result = yield from central.call(ctx, method, *args)
        return result

    def get_category_page(self, ctx, category_id):
        """Category details plus its product list (aggregate query)."""
        server = ctx.server
        if not server.can_query_locally(Q_PRODUCTS_OF_CATEGORY):
            result = yield from self._delegate(ctx, "get_category_page", category_id)
            return result
        category_home = yield from ctx.lookup("Category")
        details = yield from category_home.entity(category_id).call(ctx, "get_details")
        products = yield from server.cached_query(
            ctx, Q_PRODUCTS_OF_CATEGORY, (category_id,)
        )
        return {"category": details, "products": products}

    def get_product_page(self, ctx, product_id):
        """Product details plus its item list (aggregate query)."""
        server = ctx.server
        if not server.can_query_locally(Q_ITEMS_OF_PRODUCT):
            result = yield from self._delegate(ctx, "get_product_page", product_id)
            return result
        product_home = yield from ctx.lookup("Product")
        details = yield from product_home.entity(product_id).call(ctx, "get_details")
        items = yield from server.cached_query(ctx, Q_ITEMS_OF_PRODUCT, (product_id,))
        return {"product": details, "items": items}

    def get_item_page(self, ctx, item_id):
        """Item details + availability: pure entity reads, replica-servable."""
        item_home = yield from ctx.lookup("Item")
        details = yield from item_home.entity(item_id).call(ctx, "get_details")
        inventory_home = yield from ctx.lookup("Inventory")
        quantity = yield from inventory_home.entity(item_id).call(ctx, "get_quantity")
        return {"item": details, "quantity": quantity}

    def get_item_details(self, ctx, item_id):
        """Lightweight item lookup used by the shopping cart."""
        item_home = yield from ctx.lookup("Item")
        details = yield from item_home.entity(item_id).call(ctx, "get_details")
        return details

    def search(self, ctx, keyword):
        """Keyword search: a customized query that is never cached (§4.4)."""
        server = ctx.server
        if not server.is_main:
            result = yield from self._delegate(ctx, "search", keyword)
            return result
        result = yield from server.db_execute(
            ctx,
            "SELECT id, name, list_price FROM item WHERE name LIKE ? "
            "OR description LIKE ?",
            (f"%{keyword}%", f"%{keyword}%"),
        )
        return [dict(row) for row in result.rows]


class SignOnFacadeBean(StatelessSessionBean):
    """Authentication against the SignOn entity (main server only)."""

    def authenticate(self, ctx, user_id, password):
        signon_home = yield from ctx.lookup("SignOn")
        try:
            yield from signon_home.find(ctx, "find_by_primary_key", user_id)
        except Exception:
            return False
        ok = yield from signon_home.entity(user_id).call(ctx, "check_password", password)
        return bool(ok)


class CustomerFacadeBean(StatelessSessionBean):
    """Profile access over the Account entity (main server only)."""

    def get_profile(self, ctx, user_id):
        account_home = yield from ctx.lookup("Account")
        details = yield from account_home.entity(user_id).call(ctx, "get_details")
        return details

    def update_address(self, ctx, user_id, address, city, state, zip_code):
        account_home = yield from ctx.lookup("Account")
        yield from account_home.entity(user_id).call(
            ctx, "update_address", address, city, state, zip_code
        )
        return True


class OrderFacadeBean(StatelessSessionBean):
    """The write path: creates the order and updates inventory in one
    container-managed transaction whose commit triggers replica pushes.

    "the Commit page of the buyer session updates the Inventory bean"
    (§4.3) — with several cart items this writes one Inventory bean per
    item, the scalability hazard §4.5 removes.
    """

    def place_order(self, ctx, user_id, cart_items, ship_address):
        if not cart_items:
            raise ValueError("cannot place an empty order")
        order_home = yield from ctx.lookup("Order")
        lineitem_home = yield from ctx.lookup("LineItem")

        total = sum(entry["price"] * entry["quantity"] for entry in cart_items)
        order_id = next(_order_ids)
        yield from order_home.call(
            ctx,
            "create",
            {
                "id": order_id,
                "user_id": user_id,
                "order_date": ctx.env.now,
                "ship_address": ship_address,
                "total_price": round(total, 2),
                "status": "PLACED",
            },
        )
        for index, entry in enumerate(cart_items):
            yield from lineitem_home.call(
                ctx,
                "create",
                {
                    "id": order_id * 100 + index,
                    "order_id": order_id,
                    "item_id": entry["item_id"],
                    "quantity": entry["quantity"],
                    "unit_price": entry["price"],
                },
            )
            inventory = yield from ctx.server.lookup(ctx, "Inventory", for_update=True)
            yield from inventory.entity(entry["item_id"]).call(
                ctx, "decrement", entry["quantity"]
            )
        return {"order_id": order_id, "total": round(total, 2)}
