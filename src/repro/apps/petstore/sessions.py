"""Pet Store stateful session beans.

``ShoppingCart`` and ``ShoppingClientController`` are the paper's two
stateful session beans (Table 1); ``CustomerSession`` holds the
logged-in customer's profile ("create a Customer session bean for the
customer that logged in", §4.2).  All three are per-client conversational
state and therefore edge-deployable from level 2.
"""

from __future__ import annotations

from ...middleware.ejb import StatefulSessionBean

__all__ = ["ShoppingCartBean", "CustomerSessionBean", "ShoppingClientControllerBean"]


class ShoppingCartBean(StatefulSessionBean):
    """Maintains the list of items to be bought by the customer."""

    def ejb_create(self, ctx, *args):
        self.state["items"] = {}

    def add_item(self, ctx, item_details, quantity):
        if quantity <= 0:
            raise ValueError("quantity must be positive")
        items = self.state["items"]
        item_id = item_details["id"]
        entry = items.get(item_id)
        if entry is None:
            items[item_id] = {
                "item_id": item_id,
                "name": item_details["name"],
                "price": item_details["list_price"],
                "quantity": quantity,
            }
        else:
            entry["quantity"] += quantity
        return len(items)

    def get_items(self, ctx):
        return [dict(entry) for entry in self.state["items"].values()]

    def total(self, ctx):
        return round(
            sum(e["price"] * e["quantity"] for e in self.state["items"].values()), 2
        )

    def clear(self, ctx):
        self.state["items"] = {}


class CustomerSessionBean(StatefulSessionBean):
    """The logged-in customer's cached profile (edge-side)."""

    def ejb_create(self, ctx, *args):
        self.state["profile"] = None

    def set_profile(self, ctx, profile):
        self.state["profile"] = dict(profile)

    def get_profile(self, ctx):
        profile = self.state["profile"]
        if profile is None:
            raise ValueError("no customer is signed in for this session")
        return dict(profile)

    def is_signed_in(self, ctx):
        return self.state["profile"] is not None


class ShoppingClientControllerBean(StatefulSessionBean):
    """The EJB-tier half of the MVC Controller (§2.2).

    Translates user actions into calls on the model: catalog reads for
    cart additions (replica-servable from level 3), façade calls across
    the WAN only where shared transactional state is involved.
    """

    def sign_in(self, ctx, user_id, password):
        """Two remote calls, as the paper notes for Verify Signin (§4.2)."""
        signon = yield from ctx.lookup("SignOnFacade")
        ok = yield from signon.call(ctx, "authenticate", user_id, password)
        if not ok:
            return False
        customer_facade = yield from ctx.lookup("CustomerFacade")
        profile = yield from customer_facade.call(ctx, "get_profile", user_id)
        customer = yield from ctx.lookup("CustomerSession")
        yield from customer.call(ctx, "set_profile", profile)
        return True

    def sign_out(self, ctx):
        customer = yield from ctx.lookup("CustomerSession")
        yield from customer.call(ctx, "remove")
        cart = yield from ctx.lookup("ShoppingCart")
        yield from cart.call(ctx, "remove")
        return True

    def add_to_cart(self, ctx, item_id, quantity=1):
        """Item details come from the catalog — one RMI at level 2,
        local replica reads from level 3 ("the buyer's Shopping Cart page
        can be served locally due to the newly introduced read-only
        beans", §4.3)."""
        catalog = yield from ctx.lookup("Catalog")
        details = yield from catalog.call(ctx, "get_item_details", item_id)
        cart = yield from ctx.lookup("ShoppingCart")
        count = yield from cart.call(ctx, "add_item", details, quantity)
        return count

    def get_cart(self, ctx):
        cart = yield from ctx.lookup("ShoppingCart")
        items = yield from cart.call(ctx, "get_items")
        total = yield from cart.call(ctx, "total")
        return {"items": items, "total": total}

    def get_billing_info(self, ctx):
        customer = yield from ctx.lookup("CustomerSession")
        profile = yield from customer.call(ctx, "get_profile")
        return profile

    def commit_order(self, ctx):
        """One bulk remote call to the order façade; the write transaction
        (and any blocking replica push) happens on the main server."""
        customer = yield from ctx.lookup("CustomerSession")
        profile = yield from customer.call(ctx, "get_profile")
        cart = yield from ctx.lookup("ShoppingCart")
        items = yield from cart.call(ctx, "get_items")
        order_facade = yield from ctx.lookup("OrderFacade")
        receipt = yield from order_facade.call(
            ctx,
            "place_order",
            profile["user_id"],
            items,
            f"{profile['address']}, {profile['city']}",
        )
        yield from cart.call(ctx, "clear")
        return receipt
