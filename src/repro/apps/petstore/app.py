"""Assembly of the Java Pet Store application descriptor.

``build_application(level)`` returns the application wired the way the
paper ran it at that configuration level — V1 (direct-JDBC) catalog
servlets in the centralized baseline, V2 (façade) servlets afterwards.
Read-mostly and query-cache extended descriptors are always declared;
:func:`repro.core.automation.configure_for_level` activates them per
level.
"""

from __future__ import annotations

from ...core.patterns import PatternLevel
from ...middleware.descriptors import (
    ApplicationDescriptor,
    ComponentDescriptor,
    ComponentKind,
    Persistence,
    QueryCacheDescriptor,
    ReadMostlyDescriptor,
    RefreshMode,
    TxAttribute,
)
from . import entities, facades, sessions, web
from .facades import Q_ITEMS_OF_PRODUCT, Q_PRODUCTS_OF_CATEGORY, Q_SEARCH_ITEMS
from .schema import petstore_schemas

__all__ = ["build_application", "BROWSER_PAGES", "BUYER_PAGES", "ALL_PAGES"]

BROWSER_PAGES = ["Main", "Category", "Product", "Item", "Search"]
BUYER_PAGES = [
    "Main",
    "Signin",
    "Verify Signin",
    "Shopping Cart",
    "Checkout",
    "Place Order",
    "Billing",
    "Commit Order",
    "Signout",
]
ALL_PAGES = BROWSER_PAGES + BUYER_PAGES[1:]


def _entity(name, impl, table, read_mostly=False):
    return ComponentDescriptor(
        name=name,
        kind=ComponentKind.ENTITY,
        impl=impl,
        table=table,
        # Pet Store 1.1.2: "All entity beans ... are implemented using
        # Bean Managed Persistence" (§2.2).
        persistence=Persistence.BMP,
        remote_interface=False,  # entities are local-only (design rule R1)
        read_mostly=(
            ReadMostlyDescriptor(updater=name, refresh_mode=RefreshMode.PUSH)
            if read_mostly
            else None
        ),
    )


def _stateless(name, impl, edge_from_level=None, cached_methods=()):
    return ComponentDescriptor(
        name=name,
        kind=ComponentKind.STATELESS_SESSION,
        impl=impl,
        remote_interface=True,
        edge_from_level=edge_from_level,
        cached_methods=tuple(cached_methods),
    )


def _stateful(name, impl):
    return ComponentDescriptor(
        name=name,
        kind=ComponentKind.STATEFUL_SESSION,
        impl=impl,
        remote_interface=False,
        tx_attribute=TxAttribute.NOT_SUPPORTED,
    )


def _servlet(name, impl):
    return ComponentDescriptor(
        name=name,
        kind=ComponentKind.SERVLET,
        impl=impl,
        remote_interface=False,
        tx_attribute=TxAttribute.NOT_SUPPORTED,
    )


def build_application(level: PatternLevel, catalog=None) -> ApplicationDescriptor:
    """The Pet Store application as configured for ``level``.

    ``catalog`` is accepted for interface parity with RUBiS; Pet Store's
    cache keys derive fully from update events, so it is unused.
    """
    level = PatternLevel(level)
    app = ApplicationDescriptor(name="petstore")

    for schema in petstore_schemas():
        app.add_schema(schema)

    # -- entity tier ---------------------------------------------------------
    app.add(_entity("Category", entities.CategoryBean, "category", read_mostly=True))
    app.add(_entity("Product", entities.ProductBean, "product", read_mostly=True))
    app.add(_entity("Item", entities.ItemBean, "item", read_mostly=True))
    app.add(_entity("Inventory", entities.InventoryBean, "inventory", read_mostly=True))
    app.add(_entity("Account", entities.AccountBean, "account"))
    app.add(_entity("SignOn", entities.SignOnBean, "signon"))
    app.add(_entity("Order", entities.OrderBean, "orders"))
    app.add(_entity("LineItem", entities.LineItemBean, "lineitem"))

    # -- session tier -----------------------------------------------------------
    # Level-6 method caching covers the read-only catalog pages; keyword
    # ``search`` stays uncached (unbounded key space, low repeat rate).
    app.add(
        _stateless(
            "Catalog",
            facades.CatalogBean,
            edge_from_level=3,
            cached_methods=(
                "get_category_page",
                "get_item_details",
                "get_item_page",
                "get_product_page",
            ),
        )
    )
    app.add(_stateless("SignOnFacade", facades.SignOnFacadeBean))
    app.add(_stateless("CustomerFacade", facades.CustomerFacadeBean))
    app.add(_stateless("OrderFacade", facades.OrderFacadeBean))
    app.add(_stateful("ShoppingCart", sessions.ShoppingCartBean))
    app.add(_stateful("CustomerSession", sessions.CustomerSessionBean))
    app.add(
        _stateful("ShoppingClientController", sessions.ShoppingClientControllerBean)
    )

    # -- queries and their edge caches (§4.4: "the set of products for a
    #    given category, and the set of items belonging to a given product") --
    app.add_query(
        Q_SEARCH_ITEMS,
        "SELECT id, name, list_price FROM item WHERE name LIKE ?",
    )
    app.add_query_cache(
        QueryCacheDescriptor(
            query_id=Q_PRODUCTS_OF_CATEGORY,
            sql="SELECT id, name, description FROM product WHERE category_id = ?",
            invalidated_by=("product",),
            # Pet Store: "For simplicity, we implemented the pull-based
            # update mechanism for caching query results" (§4.4).
            refresh_mode=RefreshMode.PULL,
            key_of_update=lambda event: (
                (event.state.get("category_id"),) if event.state else None
            ),
        )
    )
    app.add_query_cache(
        QueryCacheDescriptor(
            query_id=Q_ITEMS_OF_PRODUCT,
            sql="SELECT id, name, list_price FROM item WHERE product_id = ?",
            invalidated_by=("item",),
            refresh_mode=RefreshMode.PULL,
            key_of_update=lambda event: (
                (event.state.get("product_id"),) if event.state else None
            ),
        )
    )

    # -- web tier ------------------------------------------------------------
    facade_era = level >= PatternLevel.REMOTE_FACADE
    catalog_servlets = {
        "Category": web.CategoryServletV2 if facade_era else web.CategoryServletV1,
        "Product": web.ProductServletV2 if facade_era else web.ProductServletV1,
        "Item": web.ItemServletV2 if facade_era else web.ItemServletV1,
        "Search": web.SearchServletV2 if facade_era else web.SearchServletV1,
    }
    servlet_impls = {
        "Main": web.MainServlet,
        "Signin": web.SigninServlet,
        "Verify Signin": web.VerifySigninServlet,
        "Shopping Cart": web.ShoppingCartServlet,
        "Checkout": web.CheckoutServlet,
        "Place Order": web.PlaceOrderServlet,
        "Billing": web.BillingServlet,
        "Commit Order": web.CommitOrderServlet,
        "Signout": web.SignoutServlet,
    }
    servlet_impls.update(catalog_servlets)
    for page, impl in servlet_impls.items():
        component = f"servlet.{page}"
        app.add(_servlet(component, impl))
        app.map_page(page, component)

    app.validate()
    return app
