"""Pet Store web tier: one servlet per page (Tables 2 and 3).

Two generations of the catalog servlets exist, mirroring §4.2's rewrite:

* **V1** (the original, used in the centralized configuration): the web
  tier retrieves product information "from the Product database directly
  via JDBC" — several statements per page;
* **V2** (from the remote-façade configuration on): every page makes at
  most one call to the ``Catalog`` session façade.

Buyer-path servlets delegate to the ``ShoppingClientController``
stateful bean in both generations.
"""

from __future__ import annotations

from ...middleware.ejb import Servlet
from ...middleware.web import Response, WebRequest

__all__ = [
    "PAGE_SIZES",
    "MainServlet",
    "CategoryServletV1",
    "CategoryServletV2",
    "ProductServletV1",
    "ProductServletV2",
    "ItemServletV1",
    "ItemServletV2",
    "SearchServletV1",
    "SearchServletV2",
    "SigninServlet",
    "VerifySigninServlet",
    "ShoppingCartServlet",
    "CheckoutServlet",
    "PlaceOrderServlet",
    "BillingServlet",
    "CommitOrderServlet",
    "SignoutServlet",
]

# Base HTML sizes per page (bytes); list pages add a per-row contribution.
PAGE_SIZES = {
    "Main": 8_200,
    "Category": 9_800,
    "Product": 9_600,
    "Item": 9_200,
    "Search": 8_400,
    "Signin": 5_600,
    "Verify Signin": 6_200,
    "Shopping Cart": 7_400,
    "Checkout": 7_000,
    "Place Order": 6_800,
    "Billing": 6_400,
    "Commit Order": 6_600,
    "Signout": 5_200,
}
ROW_HTML = 140  # bytes of rendered HTML per listed row


class MainServlet(Servlet):
    """Entry point: static welcome page with the top-level category bar."""

    def handle(self, ctx, request: WebRequest):
        return Response(PAGE_SIZES["Main"], data={"page": "Main"})


# ---------------------------------------------------------------------------
# Catalog pages, V1: direct JDBC from the web tier (original Pet Store)
# ---------------------------------------------------------------------------


class CategoryServletV1(Servlet):
    def handle(self, ctx, request: WebRequest):
        category_id = request.param("category_id")
        category = yield from ctx.server.db_execute(
            ctx, "SELECT * FROM category WHERE id = ?", (category_id,)
        )
        products = yield from ctx.server.db_execute(
            ctx,
            "SELECT id, name, description FROM product WHERE category_id = ?",
            (category_id,),
        )
        return Response(
            PAGE_SIZES["Category"] + ROW_HTML * len(products.rows),
            data={"category": category.first(), "products": len(products.rows)},
        )


class ProductServletV1(Servlet):
    def handle(self, ctx, request: WebRequest):
        product_id = request.param("product_id")
        product = yield from ctx.server.db_execute(
            ctx, "SELECT * FROM product WHERE id = ?", (product_id,)
        )
        items = yield from ctx.server.db_execute(
            ctx,
            "SELECT id, name, list_price FROM item WHERE product_id = ?",
            (product_id,),
        )
        return Response(
            PAGE_SIZES["Product"] + ROW_HTML * len(items.rows),
            data={"product": product.first(), "items": len(items.rows)},
        )


class ItemServletV1(Servlet):
    def handle(self, ctx, request: WebRequest):
        item_id = request.param("item_id")
        item = yield from ctx.server.db_execute(
            ctx, "SELECT * FROM item WHERE id = ?", (item_id,)
        )
        inventory = yield from ctx.server.db_execute(
            ctx, "SELECT quantity FROM inventory WHERE item_id = ?", (item_id,)
        )
        return Response(
            PAGE_SIZES["Item"],
            data={"item": item.first(), "quantity": inventory.scalar()},
        )


class SearchServletV1(Servlet):
    def handle(self, ctx, request: WebRequest):
        keyword = request.param("keyword", "")
        rows = yield from ctx.server.db_execute(
            ctx,
            "SELECT id, name, list_price FROM item WHERE name LIKE ? "
            "OR description LIKE ?",
            (f"%{keyword}%", f"%{keyword}%"),
        )
        return Response(
            PAGE_SIZES["Search"] + ROW_HTML * len(rows.rows),
            data={"matches": len(rows.rows)},
        )


# ---------------------------------------------------------------------------
# Catalog pages, V2: one façade call per page (§4.2)
# ---------------------------------------------------------------------------


class CategoryServletV2(Servlet):
    def handle(self, ctx, request: WebRequest):
        catalog = yield from ctx.lookup("Catalog")
        page = yield from catalog.call(
            ctx, "get_category_page", request.param("category_id")
        )
        return Response(
            PAGE_SIZES["Category"] + ROW_HTML * len(page["products"]),
            data={"category": page["category"], "products": len(page["products"])},
        )


class ProductServletV2(Servlet):
    def handle(self, ctx, request: WebRequest):
        catalog = yield from ctx.lookup("Catalog")
        page = yield from catalog.call(
            ctx, "get_product_page", request.param("product_id")
        )
        return Response(
            PAGE_SIZES["Product"] + ROW_HTML * len(page["items"]),
            data={"product": page["product"], "items": len(page["items"])},
        )


class ItemServletV2(Servlet):
    def handle(self, ctx, request: WebRequest):
        catalog = yield from ctx.lookup("Catalog")
        page = yield from catalog.call(ctx, "get_item_page", request.param("item_id"))
        return Response(
            PAGE_SIZES["Item"],
            data={"item": page["item"], "quantity": page["quantity"]},
        )


class SearchServletV2(Servlet):
    def handle(self, ctx, request: WebRequest):
        catalog = yield from ctx.lookup("Catalog")
        rows = yield from catalog.call(ctx, "search", request.param("keyword", ""))
        return Response(
            PAGE_SIZES["Search"] + ROW_HTML * len(rows),
            data={"matches": len(rows)},
        )


# ---------------------------------------------------------------------------
# Buyer pages (Table 3)
# ---------------------------------------------------------------------------


class SigninServlet(Servlet):
    """Static form prompting for user id and password."""

    def handle(self, ctx, request: WebRequest):
        return Response(PAGE_SIZES["Signin"], data={"page": "Signin"})


class VerifySigninServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        scc = yield from ctx.lookup("ShoppingClientController")
        ok = yield from scc.call(
            ctx, "sign_in", request.param("user_id"), request.param("password")
        )
        return Response(
            PAGE_SIZES["Verify Signin"],
            status=200 if ok else 401,
            data={"signed_in": ok},
        )


class ShoppingCartServlet(Servlet):
    """Add an item, then display the updated cart content."""

    def handle(self, ctx, request: WebRequest):
        scc = yield from ctx.lookup("ShoppingClientController")
        yield from scc.call(
            ctx, "add_to_cart", request.param("item_id"), request.param("quantity", 1)
        )
        cart = yield from scc.call(ctx, "get_cart")
        return Response(
            PAGE_SIZES["Shopping Cart"] + ROW_HTML * len(cart["items"]),
            data={"cart_size": len(cart["items"]), "total": cart["total"]},
        )


class CheckoutServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        scc = yield from ctx.lookup("ShoppingClientController")
        cart = yield from scc.call(ctx, "get_cart")
        return Response(
            PAGE_SIZES["Checkout"] + ROW_HTML * len(cart["items"]),
            data={"cart_size": len(cart["items"]), "total": cart["total"]},
        )


class PlaceOrderServlet(Servlet):
    """Order confirmation: rendered purely from session state."""

    def handle(self, ctx, request: WebRequest):
        scc = yield from ctx.lookup("ShoppingClientController")
        cart = yield from scc.call(ctx, "get_cart")
        return Response(
            PAGE_SIZES["Place Order"],
            data={"total": cart["total"]},
        )


class BillingServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        scc = yield from ctx.lookup("ShoppingClientController")
        profile = yield from scc.call(ctx, "get_billing_info")
        return Response(PAGE_SIZES["Billing"], data={"user_id": profile["user_id"]})


class CommitOrderServlet(Servlet):
    """All database updates happen here (Table 3)."""

    def handle(self, ctx, request: WebRequest):
        scc = yield from ctx.lookup("ShoppingClientController")
        receipt = yield from scc.call(ctx, "commit_order")
        return Response(PAGE_SIZES["Commit Order"], data=receipt)


class SignoutServlet(Servlet):
    def handle(self, ctx, request: WebRequest):
        scc = yield from ctx.lookup("ShoppingClientController")
        yield from scc.call(ctx, "sign_out")
        yield from scc.call(ctx, "remove")
        ctx.server.web_sessions.discard(request.session_id)
        return Response(PAGE_SIZES["Signout"], data={"signed_out": True})
