"""Pet Store entity beans (Table 1's entity tier).

Category/Product/Item are the read-write beans the paper *introduced* in
§4.3 ("previously handled by the Catalog bean, which accessed the product
database directly via JDBC"); Inventory, SignOn, Order and Account exist
from the start.  Category, Product, Item and Inventory acquire read-only
replicas at level 3 — SignOn/Account/Order stay transactional-only, which
is why Verify Signin never becomes a local page.
"""

from __future__ import annotations

from ...middleware.ejb import EntityBean
from ...middleware.entity import FinderSpec

__all__ = [
    "CategoryBean",
    "ProductBean",
    "ItemBean",
    "InventoryBean",
    "AccountBean",
    "SignOnBean",
    "OrderBean",
    "LineItemBean",
]


class CategoryBean(EntityBean):
    """A product category (read-mostly)."""

    FINDERS = {
        "find_all": FinderSpec("SELECT * FROM category"),
    }

    def get_details(self, ctx):
        return dict(self.state)

    def get_name(self, ctx):
        return self.state["name"]


class ProductBean(EntityBean):
    """A product within a category (read-mostly)."""

    FINDERS = {
        "find_by_category": FinderSpec("SELECT * FROM product WHERE category_id = ?"),
    }

    def get_details(self, ctx):
        return dict(self.state)

    def get_category_id(self, ctx):
        return self.state["category_id"]


class ItemBean(EntityBean):
    """A sellable item: the bean behind the hottest browser page."""

    FINDERS = {
        "find_by_product": FinderSpec("SELECT * FROM item WHERE product_id = ?"),
    }

    def get_details(self, ctx):
        return dict(self.state)

    def get_price(self, ctx):
        return self.state["list_price"]


class InventoryBean(EntityBean):
    """Availability per item; written by every committed order (§4.3)."""

    def get_quantity(self, ctx):
        return self.state["quantity"]

    def decrement(self, ctx, amount):
        """Reduce stock; refuses to go negative."""
        if amount <= 0:
            raise ValueError(f"decrement amount must be positive, got {amount!r}")
        current = self.state["quantity"]
        if current < amount:
            raise ValueError(
                f"insufficient inventory for item {self.primary_key!r}: "
                f"{current} < {amount}"
            )
        self.set_field("quantity", current - amount)
        return current - amount

    def replenish(self, ctx, amount):
        if amount <= 0:
            raise ValueError("replenish amount must be positive")
        self.set_field("quantity", self.state["quantity"] + amount)
        return self.state["quantity"]


class AccountBean(EntityBean):
    """Customer account: billing and shipping information."""

    def get_details(self, ctx):
        return dict(self.state)

    def update_address(self, ctx, address, city, state, zip_code):
        self.set_field("address", address)
        self.set_field("city", city)
        self.set_field("state", state)
        self.set_field("zip", zip_code)


class SignOnBean(EntityBean):
    """Keeps userid/password information (Table 1)."""

    def check_password(self, ctx, password):
        return self.state["password"] == password


class OrderBean(EntityBean):
    """A committed order."""

    FINDERS = {
        "find_by_user": FinderSpec("SELECT * FROM orders WHERE user_id = ?"),
    }

    def get_details(self, ctx):
        return dict(self.state)

    def set_status(self, ctx, status):
        self.set_field("status", status)


class LineItemBean(EntityBean):
    """One item position within an order."""

    FINDERS = {
        "find_by_order": FinderSpec("SELECT * FROM lineitem WHERE order_id = ?"),
    }

    def get_details(self, ctx):
        return dict(self.state)
