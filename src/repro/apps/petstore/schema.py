"""Java Pet Store database schema.

Mirrors the Pet Store 1.1.2 product database (category / product / item /
inventory) plus the account, signon and order tables used by the buyer
path (Table 1, Figure 1).
"""

from __future__ import annotations

from typing import List

from ...rdbms.schema import Column, ForeignKey, TableSchema
from ...rdbms.types import FLOAT, INTEGER, TEXT

__all__ = ["petstore_schemas"]


def petstore_schemas() -> List[TableSchema]:
    """All Pet Store table schemas, in creation order."""
    return [
        TableSchema(
            "category",
            [
                Column("id", INTEGER),
                Column("name", TEXT),
                Column("description", TEXT),
            ],
            primary_key="id",
        ),
        TableSchema(
            "product",
            [
                Column("id", INTEGER),
                Column("category_id", INTEGER),
                Column("name", TEXT),
                Column("description", TEXT),
            ],
            primary_key="id",
            indexes=["category_id"],
            foreign_keys=[ForeignKey("category_id", "category", "id")],
        ),
        TableSchema(
            "item",
            [
                Column("id", INTEGER),
                Column("product_id", INTEGER),
                Column("name", TEXT),
                Column("list_price", FLOAT),
                Column("unit_cost", FLOAT),
                Column("description", TEXT),
            ],
            primary_key="id",
            indexes=["product_id"],
            foreign_keys=[ForeignKey("product_id", "product", "id")],
        ),
        TableSchema(
            "inventory",
            [
                Column("item_id", INTEGER),
                Column("quantity", INTEGER),
            ],
            primary_key="item_id",
            foreign_keys=[ForeignKey("item_id", "item", "id")],
        ),
        TableSchema(
            "account",
            [
                Column("user_id", TEXT),
                Column("email", TEXT),
                Column("first_name", TEXT),
                Column("last_name", TEXT),
                Column("address", TEXT),
                Column("city", TEXT),
                Column("state", TEXT),
                Column("zip", TEXT),
                Column("country", TEXT),
                Column("phone", TEXT),
            ],
            primary_key="user_id",
        ),
        TableSchema(
            "signon",
            [
                Column("user_id", TEXT),
                Column("password", TEXT),
            ],
            primary_key="user_id",
        ),
        TableSchema(
            "orders",
            [
                Column("id", INTEGER),
                Column("user_id", TEXT),
                Column("order_date", FLOAT),
                Column("ship_address", TEXT),
                Column("total_price", FLOAT),
                Column("status", TEXT),
            ],
            primary_key="id",
            indexes=["user_id"],
            foreign_keys=[ForeignKey("user_id", "account", "user_id")],
        ),
        TableSchema(
            "lineitem",
            [
                Column("id", INTEGER),
                Column("order_id", INTEGER),
                Column("item_id", INTEGER),
                Column("quantity", INTEGER),
                Column("unit_price", FLOAT),
            ],
            primary_key="id",
            indexes=["order_id"],
            foreign_keys=[
                ForeignKey("order_id", "orders", "id"),
                ForeignKey("item_id", "item", "id"),
            ],
        ),
    ]
