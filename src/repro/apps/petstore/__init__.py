"""The Java Pet Store sample application (version 1.1.2 analogue)."""

from .app import ALL_PAGES, BROWSER_PAGES, BUYER_PAGES, build_application
from .data import DEFAULT_SIZES, PetStoreCatalog, populate_petstore
from .workload import browser_pattern, buyer_pattern

__all__ = [
    "ALL_PAGES",
    "BROWSER_PAGES",
    "BUYER_PAGES",
    "build_application",
    "DEFAULT_SIZES",
    "PetStoreCatalog",
    "populate_petstore",
    "browser_pattern",
    "buyer_pattern",
]
