"""Pet Store service usage patterns (Tables 2 and 3).

Browser: 20-request sessions over the five product pages with the
paper's weights; an Item page always requests an item of the previously
viewed product.  Buyer: the fixed nine-page sign-in / buy / sign-out
script.
"""

from __future__ import annotations

from ...core.usage import ScriptedPattern, WeightedPattern
from ...simnet.rng import Streams
from .data import PetStoreCatalog

__all__ = ["browser_pattern", "buyer_pattern", "BROWSER_WEIGHTS", "BUYER_SCRIPT"]

# Table 2: request percentages within a browser session.
BROWSER_WEIGHTS = {
    "Main": 5.0,
    "Category": 15.0,
    "Product": 30.0,
    "Item": 45.0,
    "Search": 5.0,
}

BROWSER_SESSION_LENGTH = 20

# Table 3: the buyer's essential activities.
BUYER_SCRIPT = [
    "Main",
    "Signin",
    "Verify Signin",
    "Shopping Cart",
    "Checkout",
    "Place Order",
    "Billing",
    "Commit Order",
    "Signout",
]


def browser_pattern(catalog: PetStoreCatalog) -> WeightedPattern:
    """Table 2's browser with structurally consistent page parameters."""

    def params_for(streams: Streams, page: str, previous):
        rng_name = "petstore-browser-params"
        if page == "Category":
            return {"category_id": streams.choice(rng_name, catalog.category_ids)}
        if page == "Product":
            # Prefer a product of the category just viewed.
            if previous is not None and previous.page == "Category":
                category_id = previous.params["category_id"]
                products = catalog.products_by_category.get(category_id) or catalog.product_ids
            else:
                products = catalog.product_ids
            return {"product_id": streams.choice(rng_name, products)}
        if page == "Item":
            # "a request of an Item page always goes after a request for a
            # Product page, such that the requested item belongs to the
            # previously requested product" (§3.2).
            if previous is not None and previous.page == "Product":
                product_id = previous.params["product_id"]
                items = catalog.items_by_product.get(product_id) or catalog.item_ids
            else:
                items = catalog.item_ids
            return {"item_id": streams.choice(rng_name, items)}
        if page == "Search":
            return {"keyword": streams.choice(rng_name, catalog.keywords)}
        return {}

    return WeightedPattern(
        name="petstore-browser",
        length=BROWSER_SESSION_LENGTH,
        weights=BROWSER_WEIGHTS,
        first_page="Main",
        params_for=params_for,
        follows={"Item": "Product"},
    )


def buyer_pattern(catalog: PetStoreCatalog) -> ScriptedPattern:
    """Table 3's buyer: sign in, buy one item, sign out."""

    def params_for(streams: Streams, page: str, index: int):
        rng_name = "petstore-buyer-params"
        if page == "Verify Signin":
            user_index = streams.randint(rng_name, 0, len(catalog.user_ids) - 1)
            user_id = catalog.user_ids[user_index]
            return {"user_id": user_id, "password": f"pw-{user_index}"}
        if page == "Shopping Cart":
            return {
                "item_id": streams.choice(rng_name, catalog.item_ids),
                "quantity": 1,  # "we never put more than one item" (§4.5)
            }
        return {}

    return ScriptedPattern(
        name="petstore-buyer", script=BUYER_SCRIPT, params_for=params_for
    )
