"""Sample applications: Java Pet Store and RUBiS."""
