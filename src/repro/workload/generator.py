"""The load generator: the paper's client population (§3.3).

"In all of our tests, we use a combined client load of 30 web page
requests per second, coming from a mixture of 80% browsers and 20%
buyers/bidders, equally divided between all client machines (10 HTTP
requests per second coming from each of the three client groups)."

Each client issues one request per ``think_time`` on average (soft
delays make the rate response-time independent), so a group of
``rate x think_time`` clients produces ``rate`` requests/second.
Client start times are staggered across one think-time interval to
avoid lockstep arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.distribution import DeployedSystem
from ..core.usage import UsagePattern
from ..simnet.kernel import Environment
from ..simnet.monitor import ResponseTimeMonitor
from ..simnet.rng import Streams
from .client import Client

__all__ = ["WorkloadConfig", "LoadGenerator"]


@dataclass
class WorkloadConfig:
    """Paper defaults: 30 req/s combined, 80/20 mix, soft think time."""

    total_rate_per_s: float = 30.0
    browser_fraction: float = 0.8
    think_time_ms: float = 7_000.0
    duration_ms: float = 120_000.0
    warmup_ms: float = 20_000.0

    def __post_init__(self):
        if not 0.0 <= self.browser_fraction <= 1.0:
            raise ValueError("browser_fraction must be in [0, 1]")
        if self.total_rate_per_s <= 0 or self.think_time_ms <= 0:
            raise ValueError("rate and think time must be positive")


class LoadGenerator:
    """Builds and runs the full client population against a deployment."""

    def __init__(
        self,
        system: DeployedSystem,
        streams: Streams,
        browser_pattern: UsagePattern,
        writer_pattern: UsagePattern,
        config: Optional[WorkloadConfig] = None,
        writer_group_name: str = "buyer",
    ):
        self.system = system
        self.streams = streams
        self.browser_pattern = browser_pattern
        self.writer_pattern = writer_pattern
        self.config = config or WorkloadConfig()
        self.writer_group_name = writer_group_name
        self.monitor = ResponseTimeMonitor(warmup=self.config.warmup_ms)
        #: Optional TimeSeriesRecorder fanned out to every client at
        #: start() time (the clients stream responses into it directly).
        self.timeseries = None
        self.clients: List[Client] = []

    # -- population maths ---------------------------------------------------
    def _group_rate(self) -> float:
        """Requests/second contributed by each server's client group."""
        groups = len(self.system.testbed.app_servers)
        return self.config.total_rate_per_s / groups

    def clients_per_group(self) -> Dict[str, int]:
        """(browsers, writers) per group, from rate x think time."""
        per_group = self._group_rate() * self.config.think_time_ms / 1000.0
        browsers = max(1, round(per_group * self.config.browser_fraction))
        writers = max(1, round(per_group * (1.0 - self.config.browser_fraction)))
        return {"browser": browsers, "writer": writers}

    # -- assembly -----------------------------------------------------------
    def build(self) -> List[Client]:
        """Create the client population (idempotent)."""
        if self.clients:
            return self.clients
        counts = self.clients_per_group()
        testbed = self.system.testbed
        end_time = self.config.duration_ms
        stagger_stream = self.streams.get("client-stagger")
        for server_name in testbed.app_servers:
            locality = "local" if server_name == testbed.main_server else "remote"
            machines = testbed.clients_of(server_name)
            specs = [("browser", self.browser_pattern, counts["browser"])]
            specs.append((self.writer_group_name, self.writer_pattern, counts["writer"]))
            for kind, pattern, count in specs:
                group = f"{locality}-{kind if kind != 'writer' else self.writer_group_name}"
                for index in range(count):
                    machine = machines[index % len(machines)]
                    self.clients.append(
                        Client(
                            system=self.system,
                            monitor=self.monitor,
                            streams=self.streams,
                            client_node=machine,
                            group=group,
                            pattern=pattern,
                            think_time=self.config.think_time_ms,
                            start_offset=stagger_stream.uniform(
                                0, self.config.think_time_ms
                            ),
                            end_time=end_time,
                        )
                    )
        return self.clients

    def start(self, env: Environment) -> None:
        """Register every client as a simulation process."""
        for client in self.build():
            client.timeseries = self.timeseries
            env.process(client.run(env), name=f"client-{client.id}")

    def run(self, env: Environment) -> ResponseTimeMonitor:
        """Start the population and run the simulation to completion."""
        self.start(env)
        env.run()
        return self.monitor

    # -- reporting ------------------------------------------------------------
    def total_requests(self) -> int:
        return sum(client.requests_sent for client in self.clients)

    def achieved_rate_per_s(self) -> float:
        if not self.clients:
            return 0.0
        return self.total_requests() / (self.config.duration_ms / 1000.0)
