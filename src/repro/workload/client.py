"""Emulated clients (§3.3).

Each client repeatedly runs sessions of its usage pattern with *soft
delays*: "instead of waiting a predefined DELAY time interval after
receiving response from the previous request, the client waits for only
DELAY - response time.  So effectively DELAY becomes the time interval
between sending requests, which allowed us to simulate steady client
load independent of response times."
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional

from ..core.distribution import DeployedSystem
from ..core.usage import UsagePattern
from ..middleware.resilience import RETRYABLE_ERRORS, RmiTimeout
from ..middleware.web import ServerUnavailable, WebRequest, http_get
from ..simnet.kernel import Environment, Event
from ..simnet.monitor import ResponseTimeMonitor
from ..simnet.rng import Streams

__all__ = ["Client"]

# Failures a browser reacts to by trying the other entry point: the
# server refusing connections, an RMI call beneath the page timing out,
# or the transport layer itself faulting mid-request.
_REQUEST_FAULTS = (ServerUnavailable, RmiTimeout) + RETRYABLE_ERRORS

_client_ids = itertools.count(1)


class Client:
    """One emulated user bound to a client machine and a usage pattern."""

    def __init__(
        self,
        system: DeployedSystem,
        monitor: ResponseTimeMonitor,
        streams: Streams,
        client_node: str,
        group: str,
        pattern: UsagePattern,
        think_time: float,
        start_offset: float = 0.0,
        end_time: Optional[float] = None,
    ):
        self.id = next(_client_ids)
        self.system = system
        self.monitor = monitor
        self.streams = streams
        self.client_node = client_node
        self.group = group
        self.pattern = pattern
        self.think_time = think_time
        self.start_offset = start_offset
        self.end_time = end_time
        self.requests_sent = 0
        self.sessions_completed = 0
        self.errors = 0
        self.failovers = 0
        self.think_ms = 0.0
        # Optional TimeSeriesRecorder, set by LoadGenerator.start().
        self.timeseries = None

    def run(self, env: Environment) -> Generator[Event, None, None]:
        """The client process: sessions back-to-back until ``end_time``."""
        if self.start_offset > 0:
            yield env.sleep(self.start_offset)
        session_index = 0
        while self.end_time is None or env.now < self.end_time:
            session_id = f"c{self.id}-s{session_index}"
            visits = self.pattern.session(self.streams, session_index)
            session_index += 1
            for visit in visits:
                if self.end_time is not None and env.now >= self.end_time:
                    return
                request = WebRequest(
                    page=visit.page,
                    params=dict(visit.params),
                    session_id=session_id,
                    client_node=self.client_node,
                )
                started = env.now
                # One page fetch with client-side failover: "client
                # requests can utilize several entry points into the
                # service" (§1) — when the local edge is down, fall back
                # to the main server after the connect timeout.  Session
                # state lives on the failed edge, so mid-session state is
                # lost, but browse pages keep working.  (Inlined rather
                # than a helper generator: one less frame per request and
                # one less delegation hop for every resume beneath it.)
                server = self.system.entry_server_for(self.client_node)
                session_broken = False
                try:
                    yield from http_get(
                        env, server, request, client_group=self.group
                    )
                    response_time = env.now - started
                except _REQUEST_FAULTS:
                    fallback = self.system.main
                    if fallback is server or not fallback.available:
                        response_time = None
                    else:
                        self.failovers += 1
                        try:
                            yield from http_get(
                                env, fallback, request, client_group=self.group
                            )
                            response_time = env.now - started
                        except _REQUEST_FAULTS:
                            response_time = None
                        except Exception:
                            # The fallback answered with an application
                            # error: conversational state (cart, bid
                            # drafts) lived on the faulted edge, so the
                            # replayed request is inconsistent there.
                            response_time = None
                            session_broken = True
                except Exception:
                    # The server itself answered with an application error
                    # (a 500): under faults, earlier lost visits leave the
                    # session's state inconsistent (e.g. committing a cart
                    # whose additions never landed).  Never reached in
                    # fault-free runs — every session is then consistent
                    # by construction.
                    response_time = None
                    session_broken = True
                if response_time is None:
                    # Both entry points down, or the session is broken:
                    # the visit is lost.
                    self.errors += 1
                    response_time = env.now - started
                else:
                    self.requests_sent += 1
                    self.monitor.observe(
                        env.now, self.group, visit.page, response_time
                    )
                    ts = self.timeseries
                    if ts is not None:
                        ts.observe_response(env.now, visit.page, response_time)
                # Soft delay: the think time absorbs the response time.
                remaining = self.think_time - response_time
                if remaining > 0:
                    self.think_ms += remaining
                    yield env.sleep(remaining)
                if session_broken:
                    # The user gives up on this session and starts a new
                    # one after the think time.
                    break
            self.sessions_completed += 1

