"""Client simulation: usage-pattern-driven load generation and metrics."""

from .client import Client
from .generator import LoadGenerator, WorkloadConfig
from .openloop import OpenLoopConfig, OpenLoopGenerator, TransitionMatrixPattern

__all__ = [
    "Client",
    "LoadGenerator",
    "WorkloadConfig",
    "OpenLoopConfig",
    "OpenLoopGenerator",
    "TransitionMatrixPattern",
]
