"""Client simulation: usage-pattern-driven load generation and metrics."""

from .client import Client
from .generator import LoadGenerator, WorkloadConfig

__all__ = ["Client", "LoadGenerator", "WorkloadConfig"]
