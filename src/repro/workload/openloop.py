"""Open-loop workload engine: arrivals decoupled from completions.

The closed-loop generator (:mod:`.generator`) fixes a client *population*
and lets soft think times pin the request rate.  That shape cannot model
the situations the paper's motivation leans on — flash crowds, overload,
and very large mostly-idle user bases — because a closed loop throttles
itself: when the service slows down, the population slows its arrivals.

This module provides the open-loop complement: an *arrival process*
spawns independent, finite sessions at a configured rate regardless of
how the service is doing.  Three inter-arrival laws are supported —
Poisson (memoryless), Pareto (heavy-tailed bursts) and lognormal — and
three canned scenarios modulate the instantaneous rate over the run:
``steady``, ``flash-crowd`` (a rate spike in a configurable window) and
``diurnal`` (a one-cycle sinusoidal ramp).

Sessions draw their page sequences from a first-order Markov walk
(:class:`TransitionMatrixPattern`) with geometric session lengths, so
each synthetic user follows its own path through the page graph instead
of replaying a fixed-length weighted mix.

Scale notes.  The engine is built to sustain 10^5-10^6 concurrent
sessions on the two-tier simulation kernel: a session costs one
generator frame plus its precomputed visit list while it sleeps, and a
sleeping session occupies exactly one calendar-queue slot (the bare
float fast lane in :mod:`..simnet.kernel`).  For million-session runs
the benchmark harness additionally calls :func:`gc.freeze` after the
population is spawned so the cyclic collector stops re-tracing the
long-lived session frames; the engine itself allocates nothing cyclic
on the steady-state path.

Determinism.  All draws come from named :class:`~..simnet.rng.Streams`
(``openloop-arrivals``, ``openloop-mix``, ``openloop-think`` and the
pattern streams), and the kernel's (time, sequence) ordering makes the
interleaving reproducible, so a run is a pure function of the master
seed and the config — byte-identical under ``--jobs N`` because each
parallel cell owns its own stream family.
"""

from __future__ import annotations

import math
from bisect import bisect
from dataclasses import dataclass
from itertools import accumulate
from typing import Dict, Generator, List, Optional, Tuple

from ..core.distribution import DeployedSystem
from ..core.usage import PageVisit, PatternError, UsagePattern, WeightedPattern
from ..middleware.web import WebRequest, http_get
from ..simnet.kernel import Environment, Event
from ..simnet.monitor import ResponseTimeMonitor
from ..simnet.rng import Streams
from .client import _REQUEST_FAULTS

__all__ = [
    "ARRIVALS",
    "SCENARIOS",
    "OpenLoopConfig",
    "TransitionMatrixPattern",
    "OpenLoopGenerator",
]

ARRIVALS = ("poisson", "pareto", "lognormal")
SCENARIOS = ("steady", "flash-crowd", "diurnal")


@dataclass(frozen=True)
class OpenLoopConfig:
    """Arrival process, scenario and session shape for one open-loop run.

    Frozen (and therefore trivially picklable) so parallel experiment
    cells can ship it to workers unchanged.
    """

    arrival: str = "poisson"
    scenario: str = "steady"
    session_rate_per_s: float = 10.0
    duration_ms: float = 120_000.0
    warmup_ms: float = 20_000.0
    think_time_ms: float = 7_000.0
    browser_fraction: float = 0.8
    #: Admission cap on concurrently active sessions; 0 means unbounded.
    #: Arrivals beyond the cap are counted as dropped, not queued.
    max_sessions: int = 0
    #: Pareto shape; must exceed 1 so the inter-arrival mean is finite.
    pareto_alpha: float = 1.5
    lognormal_sigma: float = 1.0
    #: flash-crowd: rate multiplier inside the window, window expressed
    #: as fractions of the run duration.
    flash_multiplier: float = 8.0
    flash_start: float = 0.4
    flash_end: float = 0.6
    #: diurnal: rate swings between (1-a) and (1+a) over one full cycle.
    diurnal_amplitude: float = 0.5

    def __post_init__(self):
        if self.arrival not in ARRIVALS:
            raise ValueError(f"arrival must be one of {ARRIVALS}, got {self.arrival!r}")
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"scenario must be one of {SCENARIOS}, got {self.scenario!r}"
            )
        if self.session_rate_per_s <= 0 or self.think_time_ms <= 0:
            raise ValueError("session rate and think time must be positive")
        if self.duration_ms <= 0 or self.warmup_ms < 0:
            raise ValueError("duration must be positive and warmup non-negative")
        if not 0.0 <= self.browser_fraction <= 1.0:
            raise ValueError("browser_fraction must be in [0, 1]")
        if self.max_sessions < 0:
            raise ValueError("max_sessions must be non-negative")
        if self.pareto_alpha <= 1.0:
            raise ValueError("pareto_alpha must exceed 1 (finite mean)")
        if self.lognormal_sigma <= 0.0:
            raise ValueError("lognormal_sigma must be positive")
        if self.flash_multiplier <= 0.0:
            raise ValueError("flash_multiplier must be positive")
        if not 0.0 <= self.flash_start < self.flash_end <= 1.0:
            raise ValueError("flash window must satisfy 0 <= start < end <= 1")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")

    @property
    def mean_gap_ms(self) -> float:
        return 1000.0 / self.session_rate_per_s

    def rate_factor(self, now: float) -> float:
        """Instantaneous rate multiplier of the scenario at time ``now``."""
        if self.scenario == "flash-crowd":
            start = self.flash_start * self.duration_ms
            end = self.flash_end * self.duration_ms
            return self.flash_multiplier if start <= now < end else 1.0
        if self.scenario == "diurnal":
            phase = 2.0 * math.pi * (now / self.duration_ms)
            return 1.0 + self.diurnal_amplitude * math.sin(phase)
        return 1.0


class TransitionMatrixPattern(UsagePattern):
    """First-order Markov page walk with geometric session lengths.

    Built from a :class:`WeightedPattern`: every row of the transition
    matrix starts from the base page mix, with the self-transition weight
    damped by ``self_loop`` (users rarely re-request the page they are
    looking at) and renormalized.  ``follows`` constraints are honoured
    exactly as in the base pattern — drawing P with ``follows[P] = Q``
    when the previous page was not Q inserts a Q visit first.

    Session length is geometric: after each page the session continues
    with probability ``1 - 1/mean_length``, so the *mean* matches the
    base pattern's fixed length while individual sessions vary — the
    per-session page-mix variability the open-loop engine wants.  A hard
    cap bounds the tail so one unlucky draw cannot pin a session (and
    its memory) forever.
    """

    def __init__(
        self,
        base: WeightedPattern,
        mean_length: Optional[float] = None,
        self_loop: float = 0.0,
        max_length: Optional[int] = None,
    ):
        if not 0.0 <= self_loop <= 1.0:
            raise PatternError("self_loop must be in [0, 1]")
        mean = float(mean_length if mean_length is not None else base.length)
        if mean <= 1.0:
            raise PatternError("mean_length must exceed 1")
        self.base = base
        self.name = f"markov:{base.name}"
        self.mean_length = mean
        self.self_loop = self_loop
        self.max_length = int(max_length) if max_length else max(4, int(8 * mean))
        self._continue_p = 1.0 - 1.0 / mean
        self._stream_name = f"pattern:{self.name}"
        self._pages = pages = tuple(base.weights.keys())
        self._hi = len(pages) - 1
        base_cum = list(accumulate(base.weights.values()))
        base_total = base_cum[-1] + 0.0
        if base_total <= 0.0:
            raise PatternError("base pattern weights must have a positive total")
        self._default_row = (base_cum, base_total)
        # One damped row per source page; rows for pages outside the
        # weight table (e.g. a zero-weight first page) fall back to the
        # base mix.
        self._rows: Dict[str, Tuple[List[float], float]] = {}
        for source in pages:
            weights = dict(base.weights)
            weights[source] = weights[source] * self_loop
            cum = list(accumulate(weights.values()))
            total = cum[-1] + 0.0
            if total <= 0.0:
                cum, total = base_cum, base_total
            self._rows[source] = (cum, total)

    def session(self, streams: Streams, session_index: int) -> List[PageVisit]:
        base = self.base
        pages = self._pages
        hi = self._hi
        rows = self._rows
        default_row = self._default_row
        follows = base.follows
        continue_p = self._continue_p
        max_length = self.max_length
        rng_random = streams.get(self._stream_name).random
        visits: List[PageVisit] = []
        previous: Optional[PageVisit] = None

        def visit(page: str) -> PageVisit:
            nonlocal previous
            params = base.params_for(streams, page, previous)
            page_visit = PageVisit(page, params)
            visits.append(page_visit)
            previous = page_visit
            return page_visit

        visit(base.first_page)
        while len(visits) < max_length and rng_random() < continue_p:
            cum_weights, total = rows.get(previous.page, default_row)
            page = pages[bisect(cum_weights, rng_random() * total, 0, hi)]
            required = follows.get(page)
            if required is not None and previous.page != required:
                visit(required)
                if len(visits) >= max_length:
                    break
            visit(page)
        return visits


class OpenLoopGenerator:
    """Spawns independent sessions from an arrival process.

    API-compatible with :class:`.generator.LoadGenerator` where the
    experiment runner cares (``monitor``, ``start``, ``run``,
    ``total_requests``, ``achieved_rate_per_s``), so the two are
    interchangeable behind the ``--workload`` knob.
    """

    def __init__(
        self,
        system: DeployedSystem,
        streams: Streams,
        browser_pattern: UsagePattern,
        writer_pattern: UsagePattern,
        config: Optional[OpenLoopConfig] = None,
        writer_group_name: str = "buyer",
    ):
        self.system = system
        self.streams = streams
        self.browser_pattern = browser_pattern
        self.writer_pattern = writer_pattern
        self.config = config or OpenLoopConfig()
        self.writer_group_name = writer_group_name
        self.monitor = ResponseTimeMonitor(warmup=self.config.warmup_ms)
        # Open-loop session accounting (the obs layer reports these).
        self.arrivals = 0
        self.admitted = 0
        self.dropped_sessions = 0
        self.completions = 0
        self.active = 0
        self.peak_active = 0
        self.requests_sent = 0
        self.errors = 0
        self.failovers = 0
        self.think_ms = 0.0
        #: Optional :class:`~repro.obs.timeseries.TimeSeriesRecorder`;
        #: when set, every successful response is streamed into the
        #: current window as it happens (the one per-request telemetry
        #: cost the sampler's pull model does not cover).
        self.timeseries = None
        self._targets: List[Tuple[str, str]] = []

    # -- assembly -----------------------------------------------------------
    def _build_targets(self) -> List[Tuple[str, str]]:
        """(client machine, locality) in round-robin order across groups.

        Transposed — first machine of every group, then second of every
        group, ... — so consecutive arrivals spread across entry points
        instead of piling onto one edge.
        """
        if self._targets:
            return self._targets
        testbed = self.system.testbed
        columns: List[List[Tuple[str, str]]] = []
        for server_name in testbed.app_servers:
            locality = "local" if server_name == testbed.main_server else "remote"
            columns.append(
                [(machine, locality) for machine in testbed.clients_of(server_name)]
            )
        depth = max(len(column) for column in columns)
        for index in range(depth):
            for column in columns:
                if index < len(column):
                    self._targets.append(column[index])
        return self._targets

    # -- arrival process ----------------------------------------------------
    def _draw_gap(self, rng, mean: float) -> float:
        arrival = self.config.arrival
        if arrival == "poisson":
            return rng.expovariate(1.0 / mean)
        if arrival == "pareto":
            # paretovariate(a) - 1 has mean 1/(a-1) on [0, inf), so this
            # gap has mean ``mean`` with a heavy right tail and mass near
            # zero: bursty arrivals.
            alpha = self.config.pareto_alpha
            return mean * (alpha - 1.0) * (rng.paretovariate(alpha) - 1.0)
        # lognormal: choose mu so the mean is exactly ``mean``.
        sigma = self.config.lognormal_sigma
        mu = math.log(mean) - 0.5 * sigma * sigma
        return rng.lognormvariate(mu, sigma)

    def _arrivals(self, env: Environment) -> Generator[Event, None, None]:
        config = self.config
        targets = self._build_targets()
        n_targets = len(targets)
        gap_rng = self.streams.get("openloop-arrivals")
        mix_random = self.streams.get("openloop-mix").random
        mean_gap = config.mean_gap_ms
        duration = config.duration_ms
        max_sessions = config.max_sessions
        index = 0
        while True:
            gap = self._draw_gap(gap_rng, mean_gap)
            # Scenario modulation scales the *local* mean gap by the
            # instantaneous rate factor.
            factor = config.rate_factor(env.now)
            if factor != 1.0:
                gap /= factor
            yield env.sleep(gap)
            if env.now >= duration:
                return
            self.arrivals += 1
            if max_sessions and self.active >= max_sessions:
                # Open loop: an arrival finding the system full is turned
                # away, never queued — the defining drop mode.
                self.dropped_sessions += 1
                continue
            machine, locality = targets[index % n_targets]
            index += 1
            if mix_random() < config.browser_fraction:
                kind, pattern = "browser", self.browser_pattern
            else:
                kind, pattern = self.writer_group_name, self.writer_pattern
            group = f"{locality}-{kind}"
            self.admitted += 1
            env.process(
                self._session(env, self.arrivals, machine, group, pattern),
                name=f"open-session-{self.arrivals}",
            )

    # -- one session --------------------------------------------------------
    def _session(
        self,
        env: Environment,
        session_index: int,
        machine: str,
        group: str,
        pattern: UsagePattern,
    ) -> Generator[Event, None, None]:
        self.active += 1
        if self.active > self.peak_active:
            self.peak_active = self.active
        think_rng = self.streams.get("openloop-think")
        mean_think = self.config.think_time_ms
        session_id = f"o{session_index}"
        try:
            visits = pattern.session(self.streams, session_index)
            last = len(visits) - 1
            for position, visit in enumerate(visits):
                request = WebRequest(
                    page=visit.page,
                    params=dict(visit.params),
                    session_id=session_id,
                    client_node=machine,
                )
                started = env.now
                # Same failover shape as the closed-loop Client: try the
                # local entry point, fall back to main on transport-level
                # faults, give the session up on application errors.
                server = self.system.entry_server_for(machine)
                session_broken = False
                try:
                    yield from http_get(env, server, request, client_group=group)
                    response_time = env.now - started
                except _REQUEST_FAULTS:
                    fallback = self.system.main
                    if fallback is server or not fallback.available:
                        response_time = None
                    else:
                        self.failovers += 1
                        try:
                            yield from http_get(
                                env, fallback, request, client_group=group
                            )
                            response_time = env.now - started
                        except _REQUEST_FAULTS:
                            response_time = None
                        except Exception:
                            response_time = None
                            session_broken = True
                except Exception:
                    response_time = None
                    session_broken = True
                if response_time is None:
                    self.errors += 1
                else:
                    self.requests_sent += 1
                    self.monitor.observe(env.now, group, visit.page, response_time)
                    ts = self.timeseries
                    if ts is not None:
                        ts.observe_response(env.now, visit.page, response_time)
                if session_broken:
                    break
                if position != last:
                    # Open loop uses the *full* think time: the arrival
                    # process owns the rate, so there is nothing for a
                    # soft delay to hold steady.  Truncated to whole
                    # milliseconds — the RUBiS client emulator schedules
                    # think times through Thread.sleep(ms) — which also
                    # lets the kernel batch same-instant wake-ups.
                    think = float(int(think_rng.expovariate(1.0 / mean_think)))
                    if think > 0.0:
                        self.think_ms += think
                        yield env.sleep(think)
        finally:
            self.active -= 1
            self.completions += 1

    # -- driving ------------------------------------------------------------
    def start(self, env: Environment) -> None:
        """Register the arrival process."""
        self._build_targets()
        env.process(self._arrivals(env), name="open-loop-arrivals")

    def run(self, env: Environment) -> ResponseTimeMonitor:
        """Start arrivals and run until every admitted session finishes."""
        self.start(env)
        env.run()
        return self.monitor

    # -- reporting ----------------------------------------------------------
    def total_requests(self) -> int:
        return self.requests_sent

    def achieved_rate_per_s(self) -> float:
        return self.requests_sent / (self.config.duration_ms / 1000.0)
