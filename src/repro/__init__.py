"""repro — a reproduction of "Efficiently Distributing Component-Based
Applications Across Wide-Area Environments" (Llambiri, Totok, Karamcheti;
ICDCS 2003).

The package layers, bottom-up:

* :mod:`repro.simnet` — discrete-event simulation kernel, Click-style
  network emulation, and the paper's 3-server + 9-client WAN testbed;
* :mod:`repro.rdbms` — an in-memory relational engine with a SQL subset
  and a JDBC-like remote access protocol;
* :mod:`repro.middleware` — a J2EE-style component middleware: EJB
  containers (stateless/stateful session, entity, message-driven), RMI,
  JNDI, JMS, servlets, read-only replication, and query caching;
* :mod:`repro.core` — the paper's contribution: pattern levels,
  deployment planning, extended-descriptor automation, design-rule
  checking, and mutable-services dynamic redeployment;
* :mod:`repro.apps` — Java Pet Store and RUBiS built on the middleware;
* :mod:`repro.workload` — usage-pattern-driven client simulation;
* :mod:`repro.experiments` — the harness regenerating Tables 6/7 and
  Figures 7/8.

Quick start::

    from repro import PatternLevel, run_configuration
    result = run_configuration("rubis", PatternLevel.QUERY_CACHING)
    print(result.session_mean("remote-browser"))
"""

from .core import (
    DeployedSystem,
    DesignRuleChecker,
    MutableServiceManager,
    PatternLevel,
    distribute,
)
from .experiments import run_configuration, run_series
from .simnet import Environment, Streams, Trace, build_testbed

__version__ = "1.0.0"

__all__ = [
    "DeployedSystem",
    "DesignRuleChecker",
    "MutableServiceManager",
    "PatternLevel",
    "distribute",
    "run_configuration",
    "run_series",
    "Environment",
    "Streams",
    "Trace",
    "build_testbed",
    "__version__",
]
