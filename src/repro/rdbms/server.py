"""The database *server*: the engine bound to a node, with time and locks.

Statement execution charges the database node's CPU according to a simple
cost model (fixed overhead + per-row-scanned + per-result-row), and write
statements acquire row-level locks that are held until the enclosing
transaction finishes — so lock contention and database load show up in
simulated response times.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Generator, Optional, Tuple, Union

from ..simnet.kernel import Environment, Event
from ..simnet.network import Node
from .engine import Database
from .executor import ResultSet
from .sql import Select, Statement, parse_cached
from .transactions import LockManager, Transaction

__all__ = ["DbCostModel", "DbSession", "DatabaseServer", "result_wire_size"]


@dataclass
class DbCostModel:
    """CPU-time model for statement execution on the database node (ms)."""

    statement_overhead: float = 0.15
    per_row_scanned: float = 0.004
    per_result_row: float = 0.02
    per_write: float = 0.30
    commit_overhead: float = 0.25

    def execution_time(self, result: ResultSet, is_write: bool) -> float:
        time = self.statement_overhead
        time += self.per_row_scanned * result.rows_scanned
        time += self.per_result_row * len(result.rows)
        if is_write:
            time += self.per_write * max(1, result.affected)
        return time


def result_wire_size(result: ResultSet) -> int:
    """Approximate serialized size of a result set in bytes."""
    size = 64  # framing / column metadata
    size += 16 * len(result.columns)
    for row in result.rows:
        for value in row.values():
            if value is None:
                size += 1
            elif isinstance(value, str):
                size += len(value) + 2
            else:
                size += 10
    return size


_session_ids = itertools.count(1)


class DbSession:
    """Server-side state for one client connection.

    A session has at most one open transaction.  In auto-commit mode each
    statement commits immediately (releasing its locks).
    """

    def __init__(self, server: "DatabaseServer"):
        self.id = next(_session_ids)
        self.server = server
        self.transaction: Optional[Transaction] = None
        self.auto_commit = True

    @property
    def in_transaction(self) -> bool:
        return self.transaction is not None


class DatabaseServer:
    """Binds a :class:`Database` to a :class:`Node` and meters execution."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        database: Database,
        cost_model: Optional[DbCostModel] = None,
        lock_timeout_ms: float = 10_000.0,
    ):
        self.env = env
        self.node = node
        self.database = database
        self.cost_model = cost_model or DbCostModel()
        self.locks = LockManager(env, timeout_ms=lock_timeout_ms)
        self.statements = 0
        self.commits = 0
        self.rollbacks = 0

    # -- session lifecycle -----------------------------------------------------
    def open_session(self) -> DbSession:
        return DbSession(self)

    def begin(self, session: DbSession, read_only: bool = False) -> None:
        """Start an explicit transaction (turns auto-commit off)."""
        if session.in_transaction:
            raise RuntimeError(f"session {session.id} already in a transaction")
        session.transaction = self.database.begin(read_only=read_only)
        session.auto_commit = False

    def commit(self, session: DbSession) -> Generator[Event, Any, None]:
        """Commit the session's transaction; charges CPU, releases locks."""
        transaction = session.transaction
        if transaction is None:
            raise RuntimeError(f"session {session.id} has no transaction")
        yield from self.node.compute(self.cost_model.commit_overhead)
        transaction.commit()
        self.locks.release_all(transaction)
        session.transaction = None
        session.auto_commit = True
        self.commits += 1

    def rollback(self, session: DbSession) -> Generator[Event, Any, None]:
        transaction = session.transaction
        if transaction is None:
            raise RuntimeError(f"session {session.id} has no transaction")
        yield from self.node.compute(self.cost_model.commit_overhead)
        transaction.rollback()
        self.locks.release_all(transaction)
        session.transaction = None
        session.auto_commit = True
        self.rollbacks += 1

    # -- execution -----------------------------------------------------------
    def execute(
        self,
        session: DbSession,
        statement: Union[str, Statement],
        params: Tuple[Any, ...] = (),
    ) -> Generator[Event, Any, ResultSet]:
        """Run one statement inside the session, in simulated time."""
        if isinstance(statement, str):
            statement = parse_cached(statement)
        is_write = not isinstance(statement, Select)

        implicit = False
        if session.transaction is None:
            session.transaction = self.database.begin()
            implicit = True
        transaction = session.transaction

        if is_write:
            for table, key in self.database.write_targets(statement, params):
                yield from self.locks.acquire(transaction, table, key)

        result = self.database.execute(statement, params, transaction=transaction)
        self.statements += 1
        yield from self.node.compute(self.cost_model.execution_time(result, is_write))

        if implicit:
            if session.auto_commit:
                transaction.commit()
                self.locks.release_all(transaction)
                session.transaction = None
                self.commits += 1
            # else: the caller issued BEGIN lazily; keep the transaction.
        return result
