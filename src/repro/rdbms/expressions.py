"""Predicate and scalar expression AST used by the SQL layer.

The executor evaluates these against row dicts.  The AST is also built
programmatically by the entity-bean containers (CMP finder methods render
to these expressions rather than to SQL text).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Expression",
    "ColumnRef",
    "Literal",
    "Parameter",
    "Comparison",
    "And",
    "Or",
    "Not",
    "Like",
    "InList",
    "EvaluationError",
    "bind_parameters",
    "like_matcher",
    "like_prefix",
]


# ---------------------------------------------------------------------------
# LIKE pattern semantics (shared by the tree-walker and the compiler)
# ---------------------------------------------------------------------------

_LIKE_CACHE: Dict[str, Callable[[str], bool]] = {}
_LIKE_CACHE_LIMIT = 1024


def _compile_like(pattern: str) -> Callable[[str], bool]:
    parts = pattern.lower().split("%")
    if len(parts) == 1:  # no wildcard: exact (case-insensitive) match
        exact = parts[0]
        return lambda value: value == exact
    if len(parts) == 2:
        head, tail = parts
        if not tail:  # 'abc%'
            return lambda value: value.startswith(head)
        if not head:  # '%abc'
            return lambda value: value.endswith(tail)
        floor = len(head) + len(tail)
        return lambda value: (
            len(value) >= floor and value.startswith(head) and value.endswith(tail)
        )
    if len(parts) == 3 and not parts[0] and not parts[2]:  # '%abc%'
        needle = parts[1]
        return lambda value: needle in value
    regex = re.compile(".*".join(re.escape(part) for part in parts), re.DOTALL)
    return lambda value: regex.fullmatch(value) is not None


def like_matcher(pattern: str) -> Callable[[str], bool]:
    """Predicate for a SQL LIKE ``pattern`` (``%`` wildcard, case-insensitive).

    The returned callable expects an already-**lowercased** value; callers
    lower each candidate once instead of per pattern segment.
    """
    matcher = _LIKE_CACHE.get(pattern)
    if matcher is None:
        matcher = _compile_like(pattern)
        if len(_LIKE_CACHE) < _LIKE_CACHE_LIMIT:
            _LIKE_CACHE[pattern] = matcher
    return matcher


def like_prefix(pattern: str) -> Optional[str]:
    """The literal prefix when ``pattern`` is prefix-shaped (``abc%``), else None.

    A pattern qualifies for an ordered-index prefix scan only when its
    single ``%`` is the final character and the prefix is non-empty.
    """
    if len(pattern) > 1 and pattern.endswith("%") and "%" not in pattern[:-1]:
        return pattern[:-1]
    return None


class EvaluationError(Exception):
    """Raised when an expression cannot be evaluated against a row."""


class Expression:
    """Base expression node."""

    def evaluate(self, row: Dict[str, Any]) -> Any:
        raise NotImplementedError

    def columns(self) -> List[str]:
        """All column names referenced (qualified names kept as-is)."""
        return []

    def parameters(self) -> int:
        """Number of ``?`` placeholders in this subtree."""
        return 0


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column, optionally table-qualified (``t.col``)."""

    name: str

    def evaluate(self, row: Dict[str, Any]) -> Any:
        if self.name in row:
            return row[self.name]
        # Permit unqualified access to a qualified row key and vice versa.
        if "." in self.name:
            bare = self.name.split(".", 1)[1]
            if bare in row:
                return row[bare]
        else:
            matches = [key for key in row if key.endswith("." + self.name)]
            if len(matches) == 1:
                return row[matches[0]]
            if len(matches) > 1:
                raise EvaluationError(f"ambiguous column {self.name!r}: {matches}")
        raise EvaluationError(f"row has no column {self.name!r}")

    def columns(self) -> List[str]:
        return [self.name]


@dataclass(frozen=True)
class Literal(Expression):
    value: Any

    def evaluate(self, row: Dict[str, Any]) -> Any:
        return self.value


@dataclass(frozen=True)
class Parameter(Expression):
    """A ``?`` placeholder; must be bound before evaluation."""

    index: int

    def evaluate(self, row: Dict[str, Any]) -> Any:
        raise EvaluationError(f"unbound parameter ?{self.index}")

    def parameters(self) -> int:
        return 1


_OPERATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_RANGE_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True)
class Comparison(Expression):
    left: Expression
    operator: str
    right: Expression

    def __post_init__(self):
        if self.operator not in _OPERATORS:
            raise EvaluationError(f"unknown operator {self.operator!r}")

    def evaluate(self, row: Dict[str, Any]) -> bool:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return False  # SQL three-valued logic, collapsed to False
        return _OPERATORS[self.operator](left, right)

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def parameters(self) -> int:
        return self.left.parameters() + self.right.parameters()

    def equality_binding(self) -> Optional[Tuple[str, Expression]]:
        """If this is ``column = value-expr``, return that pair (for index use)."""
        if self.operator != "=":
            return None
        if isinstance(self.left, ColumnRef) and not isinstance(self.right, ColumnRef):
            return self.left.name, self.right
        if isinstance(self.right, ColumnRef) and not isinstance(self.left, ColumnRef):
            return self.right.name, self.left
        return None

    def range_binding(self) -> Optional[Tuple[str, str, Expression]]:
        """If this is a range bound on one column, return (column, op, value-expr).

        The operator is normalized to column-on-the-left form, so
        ``5 < price`` reports ``("price", ">", 5)``.  Used by the planner
        to consider ordered-index range scans.
        """
        flipped = _RANGE_FLIP.get(self.operator)
        if flipped is None:
            return None
        if isinstance(self.left, ColumnRef) and not isinstance(self.right, ColumnRef):
            return self.left.name, self.operator, self.right
        if isinstance(self.right, ColumnRef) and not isinstance(self.left, ColumnRef):
            return self.right.name, flipped, self.left
        return None


@dataclass(frozen=True)
class And(Expression):
    parts: Tuple[Expression, ...]

    def evaluate(self, row: Dict[str, Any]) -> bool:
        return all(part.evaluate(row) for part in self.parts)

    def columns(self) -> List[str]:
        return [c for part in self.parts for c in part.columns()]

    def parameters(self) -> int:
        return sum(part.parameters() for part in self.parts)


@dataclass(frozen=True)
class Or(Expression):
    parts: Tuple[Expression, ...]

    def evaluate(self, row: Dict[str, Any]) -> bool:
        return any(part.evaluate(row) for part in self.parts)

    def columns(self) -> List[str]:
        return [c for part in self.parts for c in part.columns()]

    def parameters(self) -> int:
        return sum(part.parameters() for part in self.parts)


@dataclass(frozen=True)
class Not(Expression):
    part: Expression

    def evaluate(self, row: Dict[str, Any]) -> bool:
        return not self.part.evaluate(row)

    def columns(self) -> List[str]:
        return self.part.columns()

    def parameters(self) -> int:
        return self.part.parameters()


@dataclass(frozen=True)
class Like(Expression):
    """SQL LIKE with ``%`` wildcards, matched case-insensitively.

    ``%needle%`` keeps its substring semantics (the Pet Store keyword
    search), ``abc%`` anchors a prefix — which the planner can serve from
    an ordered index — and general multi-``%`` patterns fall back to an
    anchored regex.  Interior-wildcard patterns are never
    index-accelerated, reproducing "highly customized aggregate queries
    (such as keyword searches) ... end up being executed in the database
    server".
    """

    column: ColumnRef
    pattern: Expression

    def evaluate(self, row: Dict[str, Any]) -> bool:
        value = self.column.evaluate(row)
        pattern = self.pattern.evaluate(row)
        if value is None or pattern is None:
            return False
        return like_matcher(str(pattern))(str(value).lower())

    def columns(self) -> List[str]:
        return self.column.columns()

    def parameters(self) -> int:
        return self.pattern.parameters()


@dataclass(frozen=True)
class InList(Expression):
    column: ColumnRef
    options: Tuple[Expression, ...]

    def evaluate(self, row: Dict[str, Any]) -> bool:
        value = self.column.evaluate(row)
        return any(value == option.evaluate(row) for option in self.options)

    def columns(self) -> List[str]:
        return self.column.columns()

    def parameters(self) -> int:
        return sum(option.parameters() for option in self.options)


def bind_parameters(expression: Optional[Expression], params: Tuple[Any, ...]) -> Optional[Expression]:
    """Return a copy of ``expression`` with ``Parameter`` nodes replaced.

    Raises :class:`EvaluationError` when the parameter count mismatches.
    """
    if expression is None:
        if params:
            raise EvaluationError("parameters supplied but statement takes none")
        return None
    expected = expression.parameters()
    if expected != len(params):
        raise EvaluationError(f"statement takes {expected} parameters, got {len(params)}")

    def substitute(node: Expression) -> Expression:
        if isinstance(node, Parameter):
            return Literal(params[node.index])
        if isinstance(node, Comparison):
            return Comparison(substitute(node.left), node.operator, substitute(node.right))
        if isinstance(node, And):
            return And(tuple(substitute(part) for part in node.parts))
        if isinstance(node, Or):
            return Or(tuple(substitute(part) for part in node.parts))
        if isinstance(node, Not):
            return Not(substitute(node.part))
        if isinstance(node, Like):
            return Like(node.column, substitute(node.pattern))
        if isinstance(node, InList):
            return InList(node.column, tuple(substitute(o) for o in node.options))
        return node

    return substitute(expression)
