"""Predicate and scalar expression AST used by the SQL layer.

The executor evaluates these against row dicts.  The AST is also built
programmatically by the entity-bean containers (CMP finder methods render
to these expressions rather than to SQL text).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Expression",
    "ColumnRef",
    "Literal",
    "Parameter",
    "Comparison",
    "And",
    "Or",
    "Not",
    "Like",
    "InList",
    "EvaluationError",
    "bind_parameters",
]


class EvaluationError(Exception):
    """Raised when an expression cannot be evaluated against a row."""


class Expression:
    """Base expression node."""

    def evaluate(self, row: Dict[str, Any]) -> Any:
        raise NotImplementedError

    def columns(self) -> List[str]:
        """All column names referenced (qualified names kept as-is)."""
        return []

    def parameters(self) -> int:
        """Number of ``?`` placeholders in this subtree."""
        return 0


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column, optionally table-qualified (``t.col``)."""

    name: str

    def evaluate(self, row: Dict[str, Any]) -> Any:
        if self.name in row:
            return row[self.name]
        # Permit unqualified access to a qualified row key and vice versa.
        if "." in self.name:
            bare = self.name.split(".", 1)[1]
            if bare in row:
                return row[bare]
        else:
            matches = [key for key in row if key.endswith("." + self.name)]
            if len(matches) == 1:
                return row[matches[0]]
            if len(matches) > 1:
                raise EvaluationError(f"ambiguous column {self.name!r}: {matches}")
        raise EvaluationError(f"row has no column {self.name!r}")

    def columns(self) -> List[str]:
        return [self.name]


@dataclass(frozen=True)
class Literal(Expression):
    value: Any

    def evaluate(self, row: Dict[str, Any]) -> Any:
        return self.value


@dataclass(frozen=True)
class Parameter(Expression):
    """A ``?`` placeholder; must be bound before evaluation."""

    index: int

    def evaluate(self, row: Dict[str, Any]) -> Any:
        raise EvaluationError(f"unbound parameter ?{self.index}")

    def parameters(self) -> int:
        return 1


_OPERATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    left: Expression
    operator: str
    right: Expression

    def __post_init__(self):
        if self.operator not in _OPERATORS:
            raise EvaluationError(f"unknown operator {self.operator!r}")

    def evaluate(self, row: Dict[str, Any]) -> bool:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return False  # SQL three-valued logic, collapsed to False
        return _OPERATORS[self.operator](left, right)

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def parameters(self) -> int:
        return self.left.parameters() + self.right.parameters()

    def equality_binding(self) -> Optional[Tuple[str, Expression]]:
        """If this is ``column = value-expr``, return that pair (for index use)."""
        if self.operator != "=":
            return None
        if isinstance(self.left, ColumnRef) and not isinstance(self.right, ColumnRef):
            return self.left.name, self.right
        if isinstance(self.right, ColumnRef) and not isinstance(self.left, ColumnRef):
            return self.right.name, self.left
        return None


@dataclass(frozen=True)
class And(Expression):
    parts: Tuple[Expression, ...]

    def evaluate(self, row: Dict[str, Any]) -> bool:
        return all(part.evaluate(row) for part in self.parts)

    def columns(self) -> List[str]:
        return [c for part in self.parts for c in part.columns()]

    def parameters(self) -> int:
        return sum(part.parameters() for part in self.parts)


@dataclass(frozen=True)
class Or(Expression):
    parts: Tuple[Expression, ...]

    def evaluate(self, row: Dict[str, Any]) -> bool:
        return any(part.evaluate(row) for part in self.parts)

    def columns(self) -> List[str]:
        return [c for part in self.parts for c in part.columns()]

    def parameters(self) -> int:
        return sum(part.parameters() for part in self.parts)


@dataclass(frozen=True)
class Not(Expression):
    part: Expression

    def evaluate(self, row: Dict[str, Any]) -> bool:
        return not self.part.evaluate(row)

    def columns(self) -> List[str]:
        return self.part.columns()

    def parameters(self) -> int:
        return self.part.parameters()


@dataclass(frozen=True)
class Like(Expression):
    """Substring match: ``column LIKE '%needle%'`` (case-insensitive).

    Only the ``%needle%`` shape is supported, which is what the Pet Store
    keyword search uses.  LIKE predicates are never index-accelerated,
    reproducing "highly customized aggregate queries (such as keyword
    searches) ... end up being executed in the database server".
    """

    column: ColumnRef
    pattern: Expression

    def evaluate(self, row: Dict[str, Any]) -> bool:
        value = self.column.evaluate(row)
        pattern = self.pattern.evaluate(row)
        if value is None or pattern is None:
            return False
        needle = str(pattern).strip("%").lower()
        return needle in str(value).lower()

    def columns(self) -> List[str]:
        return self.column.columns()

    def parameters(self) -> int:
        return self.pattern.parameters()


@dataclass(frozen=True)
class InList(Expression):
    column: ColumnRef
    options: Tuple[Expression, ...]

    def evaluate(self, row: Dict[str, Any]) -> bool:
        value = self.column.evaluate(row)
        return any(value == option.evaluate(row) for option in self.options)

    def columns(self) -> List[str]:
        return self.column.columns()

    def parameters(self) -> int:
        return sum(option.parameters() for option in self.options)


def bind_parameters(expression: Optional[Expression], params: Tuple[Any, ...]) -> Optional[Expression]:
    """Return a copy of ``expression`` with ``Parameter`` nodes replaced.

    Raises :class:`EvaluationError` when the parameter count mismatches.
    """
    if expression is None:
        if params:
            raise EvaluationError("parameters supplied but statement takes none")
        return None
    expected = expression.parameters()
    if expected != len(params):
        raise EvaluationError(f"statement takes {expected} parameters, got {len(params)}")

    def substitute(node: Expression) -> Expression:
        if isinstance(node, Parameter):
            return Literal(params[node.index])
        if isinstance(node, Comparison):
            return Comparison(substitute(node.left), node.operator, substitute(node.right))
        if isinstance(node, And):
            return And(tuple(substitute(part) for part in node.parts))
        if isinstance(node, Or):
            return Or(tuple(substitute(part) for part in node.parts))
        if isinstance(node, Not):
            return Not(substitute(node.part))
        if isinstance(node, Like):
            return Like(node.column, substitute(node.pattern))
        if isinstance(node, InList):
            return InList(node.column, tuple(substitute(o) for o in node.options))
        return node

    return substitute(expression)
