"""A tiny bounded LRU map for the engine's memo caches.

The engine memoizes by object identity in several places (compiled
expressions, scan plans, SELECT shapes).  Identity-keyed caches must pin
the keyed object inside the value so a live cache entry can never be
matched by a *different* object that reused the id — and pinning means
the cache must evict, or every statement/schema ever seen stays alive
for the process lifetime.  This LRU evicts least-recently-used entries
once ``capacity`` is exceeded; evicting an entry drops the pin, so a
later id reuse simply misses and recomputes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator, Optional, Tuple

__all__ = ["LruCache"]

_MISSING = object()


class LruCache:
    """Bounded mapping with least-recently-used eviction."""

    __slots__ = ("capacity", "_data")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("LRU capacity must be positive")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> Optional[Any]:
        """The value for ``key`` (refreshing its recency), or None."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            return None
        self._data.move_to_end(key)
        return value

    def peek(self, key: Hashable) -> Optional[Any]:
        """The value for ``key`` without refreshing its recency."""
        value = self._data.get(key, _MISSING)
        return None if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> Optional[Tuple[Hashable, Any]]:
        """Insert/refresh ``key``; returns the evicted ``(key, value)``
        pair when the insert pushed an older entry out, else None.

        Callers that maintain secondary indexes over the cached keys (the
        consistency layer's table→entry maps) use the returned pair to
        keep those indexes coherent with evictions.
        """
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.capacity:
            return data.popitem(last=False)
        return None

    def pop(self, key: Hashable) -> Optional[Any]:
        """Remove ``key``, returning its value (None when absent)."""
        value = self._data.pop(key, _MISSING)
        return None if value is _MISSING else value

    def clear(self) -> None:
        self._data.clear()

    def keys(self) -> Iterator[Hashable]:
        return iter(self._data.keys())
