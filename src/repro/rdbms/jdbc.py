"""JDBC-style remote database access over the simulated network.

This is where the paper's "verbose communication with the database
server" comes from:

* opening a physical connection costs a TCP handshake plus an
  authentication round trip (amortized by the :class:`DataSource` pool);
* every statement costs one round trip;
* traversing a large result set costs an extra round trip per fetch
  batch beyond the first (``fetch_size`` rows per batch) — the classic
  cursor-traversal cost that makes direct web-tier JDBC catastrophic
  across a WAN;
* explicit ``commit``/``rollback`` each cost a round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional, Tuple, Union

from ..simnet.kernel import Event
from ..simnet.network import Network
from ..simnet.transport import Connection, ConnectionPool
from .executor import ResultSet
from .server import DatabaseServer, DbSession, result_wire_size
from .sql import Statement

__all__ = ["JdbcConfig", "DataSource", "JdbcConnection", "JdbcError"]

AUTH_REQUEST_SIZE = 180
AUTH_RESPONSE_SIZE = 120
STATEMENT_BASE_SIZE = 220
COMMIT_MESSAGE_SIZE = 90
FETCH_REQUEST_SIZE = 110


class JdbcError(Exception):
    """Raised on driver misuse (statement on a closed connection, ...)."""


@dataclass
class JdbcConfig:
    """Driver behaviour knobs.

    ``pooled=False`` models the original Pet Store web tier, which opened
    and recycled database connections per request.
    """

    fetch_size: int = 20
    pooled: bool = True
    max_pool_size: int = 32


class JdbcConnection:
    """A logical database connection bound to a server-side session."""

    def __init__(self, source: "DataSource", transport: Connection, session: DbSession):
        self.source = source
        self.transport = transport
        self.session = session
        self.closed = False

    # -- statements -----------------------------------------------------------
    def execute(
        self,
        statement: Union[str, Statement],
        params: Tuple[Any, ...] = (),
        trace_page: Optional[str] = None,
    ) -> Generator[Event, Any, ResultSet]:
        """One statement: a round trip plus per-batch fetch round trips."""
        if self.closed:
            raise JdbcError("execute on a closed connection")
        server = self.source.server
        network = self.source.network
        request_size = STATEMENT_BASE_SIZE + _params_size(statement, params)

        def handler():
            result = yield from server.execute(self.session, statement, params)
            return result

        result = yield from self.transport.request(
            request_size,
            handler,
            response_size_of=lambda r: _first_batch_size(r, self.source.config.fetch_size),
        )
        # Cursor traversal: each further batch is its own round trip.
        remaining = max(0, len(result.rows) - self.source.config.fetch_size)
        while remaining > 0:
            batch = min(remaining, self.source.config.fetch_size)
            yield from network.transfer(
                self.transport.client, self.transport.server, FETCH_REQUEST_SIZE, kind="jdbc"
            )
            yield from network.transfer(
                self.transport.server,
                self.transport.client,
                64 + batch * _mean_row_size(result),
                kind="jdbc",
            )
            remaining -= batch
        self.source.statements += 1
        return result

    # -- transactions -----------------------------------------------------------
    def begin(self, read_only: bool = False) -> None:
        """Start an explicit transaction (deferred: no round trip until work)."""
        self.source.server.begin(self.session, read_only=read_only)

    def commit(self) -> Generator[Event, Any, None]:
        if self.closed:
            raise JdbcError("commit on a closed connection")

        def handler():
            yield from self.source.server.commit(self.session)

        yield from self.transport.request(
            COMMIT_MESSAGE_SIZE, handler, response_size=COMMIT_MESSAGE_SIZE
        )

    def rollback(self) -> Generator[Event, Any, None]:
        if self.closed:
            raise JdbcError("rollback on a closed connection")

        def handler():
            yield from self.source.server.rollback(self.session)

        yield from self.transport.request(
            COMMIT_MESSAGE_SIZE, handler, response_size=COMMIT_MESSAGE_SIZE
        )

    def close(self) -> None:
        """Return to the pool (or tear down when pooling is off)."""
        if self.closed:
            return
        if self.session.in_transaction:
            raise JdbcError("close with an open transaction; commit or rollback first")
        self.closed = True
        self.source._release(self)


class DataSource:
    """Factory/pool of connections from one client node to the DB server."""

    def __init__(
        self,
        network: Network,
        client_node: str,
        server: DatabaseServer,
        config: Optional[JdbcConfig] = None,
    ):
        self.network = network
        self.client_node = client_node
        self.server = server
        self.config = config or JdbcConfig()
        self._pool = ConnectionPool(network, kind="jdbc", max_per_pair=self.config.max_pool_size)
        self._idle_sessions: list = []
        self.connections_opened = 0
        self.statements = 0

    def connect(self) -> Generator[Event, Any, JdbcConnection]:
        """Obtain a connection; pays handshake+auth only for new physical ones."""
        if self.config.pooled and self._idle_sessions:
            transport, session = self._idle_sessions.pop()
            return JdbcConnection(self, transport, session)
        transport = Connection(self.network, self.client_node, self.server.node.name, kind="jdbc")
        yield from transport.open()
        # Authentication exchange.
        yield from self.network.transfer(
            self.client_node, self.server.node.name, AUTH_REQUEST_SIZE, kind="jdbc"
        )
        yield from self.network.transfer(
            self.server.node.name, self.client_node, AUTH_RESPONSE_SIZE, kind="jdbc"
        )
        self.connections_opened += 1
        session = self.server.open_session()
        return JdbcConnection(self, transport, session)

    def _release(self, connection: JdbcConnection) -> None:
        if self.config.pooled:
            self._idle_sessions.append((connection.transport, connection.session))
        else:
            connection.transport.close()


def _params_size(statement: Union[str, Statement], params: Tuple[Any, ...]) -> int:
    size = len(statement) if isinstance(statement, str) else 80
    for value in params:
        if isinstance(value, str):
            size += len(value)
        else:
            size += 8
    return size


def _mean_row_size(result: ResultSet) -> int:
    if not result.rows:
        return 16
    return max(16, (result_wire_size(result) - 64) // len(result.rows))


def _first_batch_size(result: ResultSet, fetch_size: int) -> int:
    rows = min(len(result.rows), fetch_size)
    return 64 + rows * _mean_row_size(result)
