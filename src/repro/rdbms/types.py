"""Column types and value coercion for the relational engine."""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["ColumnType", "INTEGER", "FLOAT", "TEXT", "BOOLEAN", "TypeError_", "coerce"]


class TypeError_(Exception):
    """Raised when a value cannot be stored in a column of a given type."""


class ColumnType:
    """A storable column type with validation and size estimation."""

    name = "abstract"

    def validate(self, value: Any) -> Any:
        """Coerce ``value`` for storage; raise :class:`TypeError_` if invalid."""
        raise NotImplementedError

    def size_of(self, value: Any) -> int:
        """Approximate on-the-wire size in bytes (for response sizing)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: Any) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class _Integer(ColumnType):
    name = "INTEGER"

    def validate(self, value: Any) -> int:
        if isinstance(value, bool):
            raise TypeError_(f"boolean {value!r} is not an INTEGER")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeError_(f"{value!r} is not an INTEGER")

    def size_of(self, value: Any) -> int:
        return 8


class _Float(ColumnType):
    name = "FLOAT"

    def validate(self, value: Any) -> float:
        if isinstance(value, bool):
            raise TypeError_(f"boolean {value!r} is not a FLOAT")
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeError_(f"{value!r} is not a FLOAT")

    def size_of(self, value: Any) -> int:
        return 8


class _Text(ColumnType):
    name = "TEXT"

    def validate(self, value: Any) -> str:
        if isinstance(value, str):
            return value
        raise TypeError_(f"{value!r} is not TEXT")

    def size_of(self, value: Any) -> int:
        return len(value)


class _Boolean(ColumnType):
    name = "BOOLEAN"

    def validate(self, value: Any) -> bool:
        if isinstance(value, bool):
            return value
        raise TypeError_(f"{value!r} is not a BOOLEAN")

    def size_of(self, value: Any) -> int:
        return 1


INTEGER = _Integer()
FLOAT = _Float()
TEXT = _Text()
BOOLEAN = _Boolean()


def coerce(column_type: ColumnType, value: Any, nullable: bool) -> Optional[Any]:
    """Validate ``value`` against ``column_type``, honouring nullability."""
    if value is None:
        if nullable:
            return None
        raise TypeError_("NULL in non-nullable column")
    return column_type.validate(value)
