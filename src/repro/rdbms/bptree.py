"""A B+-tree mapping ordered keys to buckets of row keys.

This is the ordered half of the secondary-index story: the hash indexes
in :mod:`repro.rdbms.storage` answer equality probes in O(1), while a
:class:`BPlusTree` answers *range* and *prefix* probes by walking the
linked leaf chain in key order.  Values are buckets (sets of primary
keys), mirroring the hash-index shape, so one tree serves non-unique
columns.

Deletion is lazy in the classic simplification: removing the last row
key from a bucket removes the key from its leaf, but leaves are never
merged or rebalanced and the tree height never shrinks.  Search and
range scans stay correct over underfull (even empty) leaves; for the
insert-heavy workloads this engine serves, the wasted nodes are noise.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator, List, Optional, Set, Tuple

__all__ = ["BPlusTree"]

DEFAULT_ORDER = 64


class _Leaf:
    __slots__ = ("keys", "buckets", "next")

    def __init__(self):
        self.keys: List[Any] = []
        self.buckets: List[Set[Any]] = []
        self.next: Optional["_Leaf"] = None


class _Branch:
    __slots__ = ("keys", "children")

    def __init__(self, keys: List[Any], children: List[Any]):
        self.keys = keys
        self.children = children


class BPlusTree:
    """Ordered key -> bucket-of-row-keys index.

    ``order`` bounds the number of keys per leaf and children per branch.
    Keys must be mutually comparable (the storage layer guarantees this
    by coercing column values to one type per column).
    """

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 4:
            raise ValueError("B+-tree order must be at least 4")
        self.order = order
        self._root: Any = _Leaf()
        self._distinct = 0

    # -- inspection -----------------------------------------------------------
    def __len__(self) -> int:
        """Number of distinct keys currently present."""
        return self._distinct

    def __bool__(self) -> bool:
        return self._distinct > 0

    @property
    def height(self) -> int:
        node, levels = self._root, 1
        while isinstance(node, _Branch):
            node = node.children[0]
            levels += 1
        return levels

    def get(self, key: Any) -> Optional[Set[Any]]:
        """The bucket for ``key`` (the live set — do not mutate), or None."""
        leaf, index = self._find(key)
        return leaf.buckets[index] if index is not None else None

    def min_key(self) -> Optional[Any]:
        for key, _bucket in self.items():
            return key
        return None

    def max_key(self) -> Optional[Any]:
        node = self._root
        while isinstance(node, _Branch):
            node = node.children[-1]
        if node.keys:
            return node.keys[-1]
        # The rightmost leaf emptied out under lazy deletion: fall back to
        # a chain walk remembering the last key seen.
        last = None
        for key, _bucket in self.items():
            last = key
        return last

    # -- mutation -----------------------------------------------------------
    def add(self, key: Any, row_key: Any) -> None:
        """Add ``row_key`` to the bucket at ``key`` (creating it)."""
        split = self._add(self._root, key, row_key)
        if split is not None:
            separator, right = split
            self._root = _Branch([separator], [self._root, right])

    def _add(self, node: Any, key: Any, row_key: Any) -> Optional[Tuple[Any, Any]]:
        if isinstance(node, _Leaf):
            index = bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.buckets[index].add(row_key)
                return None
            node.keys.insert(index, key)
            node.buckets.insert(index, {row_key})
            self._distinct += 1
            if len(node.keys) <= self.order:
                return None
            mid = len(node.keys) // 2
            right = _Leaf()
            right.keys = node.keys[mid:]
            right.buckets = node.buckets[mid:]
            del node.keys[mid:]
            del node.buckets[mid:]
            right.next = node.next
            node.next = right
            return right.keys[0], right
        index = bisect_right(node.keys, key)
        split = self._add(node.children[index], key, row_key)
        if split is None:
            return None
        separator, child = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, child)
        if len(node.children) <= self.order:
            return None
        mid = len(node.keys) // 2
        separator_up = node.keys[mid]
        right = _Branch(node.keys[mid + 1 :], node.children[mid + 1 :])
        del node.keys[mid:]
        del node.children[mid + 1 :]
        return separator_up, right

    def discard(self, key: Any, row_key: Any) -> None:
        """Remove ``row_key`` from the bucket at ``key``; prune empty buckets."""
        leaf, index = self._find(key)
        if index is None:
            return
        bucket = leaf.buckets[index]
        bucket.discard(row_key)
        if not bucket:
            del leaf.keys[index]
            del leaf.buckets[index]
            self._distinct -= 1

    def clear(self) -> None:
        self._root = _Leaf()
        self._distinct = 0

    # -- search -----------------------------------------------------------
    def _find(self, key: Any) -> Tuple[_Leaf, Optional[int]]:
        node = self._root
        while isinstance(node, _Branch):
            node = node.children[bisect_right(node.keys, key)]
        index = bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            return node, index
        return node, None

    def items(
        self, lo: Any = None, lo_inclusive: bool = True
    ) -> Iterator[Tuple[Any, Set[Any]]]:
        """Yield ``(key, bucket)`` in key order, starting at ``lo``."""
        if lo is None:
            node = self._root
            while isinstance(node, _Branch):
                node = node.children[0]
            index = 0
        else:
            node = self._root
            while isinstance(node, _Branch):
                node = node.children[bisect_right(node.keys, lo)]
            if lo_inclusive:
                index = bisect_left(node.keys, lo)
            else:
                index = bisect_right(node.keys, lo)
        while node is not None:
            keys = node.keys
            buckets = node.buckets
            while index < len(keys):
                yield keys[index], buckets[index]
                index += 1
            node = node.next
            index = 0

    def range_items(
        self,
        lo: Any = None,
        hi: Any = None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Iterator[Tuple[Any, Set[Any]]]:
        """``(key, bucket)`` pairs with lo/hi bounds (None = unbounded)."""
        for key, bucket in self.items(lo, lo_inclusive):
            if hi is not None:
                if hi_inclusive:
                    if key > hi:
                        return
                elif key >= hi:
                    return
            yield key, bucket

    def prefix_items(self, prefix: str) -> Iterator[Tuple[Any, Set[Any]]]:
        """``(key, bucket)`` pairs whose (string) key starts with ``prefix``."""
        for key, bucket in self.items(prefix, True):
            if not key.startswith(prefix):
                return
            yield key, bucket
