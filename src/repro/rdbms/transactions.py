"""Transactions: undo-log atomicity and row-level write locks.

Atomicity is synchronous (the engine applies/undoes changes instantly in
simulated time); *isolation* is enforced in simulated time by
:class:`LockManager`, whose ``acquire`` is a generator that blocks the
calling process until conflicting writers release — this is how lock
contention appears as response-time in experiments.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional, Set, Tuple

from ..simnet.kernel import Environment, Event
from .storage import Table

__all__ = ["Transaction", "TransactionError", "LockManager"]


class TransactionError(Exception):
    """Raised on transaction misuse (double commit, commit after abort)."""


# Fallback for transactions built directly (tests, ad-hoc engine use).
# ``Database.begin`` passes an explicit id from its own per-instance
# counter, so cell runs never draw from this process-lifetime global —
# that was a cross-run id leak the ``reset_ids()`` contract missed.
_transaction_ids = itertools.count(1)


class Transaction:
    """A unit of work with an undo log.

    The undo log records ``(table_name, op, image)`` entries appended by
    :class:`~repro.rdbms.executor.Executor`; :meth:`rollback` replays them
    in reverse.
    """

    def __init__(
        self,
        tables: Dict[str, Table],
        read_only: bool = False,
        id: Optional[int] = None,
    ):
        self.id = next(_transaction_ids) if id is None else id
        self.tables = tables
        self.read_only = read_only
        self.undo_log: List[Tuple[str, str, Any]] = []
        self.state = "active"  # active | committed | aborted
        self.locks: Set[Tuple[str, Any]] = set()

    def _require_active(self) -> None:
        if self.state != "active":
            raise TransactionError(f"transaction {self.id} is {self.state}")

    def commit(self) -> None:
        self._require_active()
        self.state = "committed"
        self.undo_log.clear()

    def rollback(self) -> None:
        self._require_active()
        for table_name, op, image in reversed(self.undo_log):
            table = self.tables[table_name]
            if op == "insert":
                table.delete(image)  # image is the inserted primary key
            elif op in ("update", "delete"):
                table.restore(image)  # image is the prior row
            else:  # pragma: no cover - executor writes only these ops
                raise TransactionError(f"unknown undo op {op!r}")
        self.undo_log.clear()
        self.state = "aborted"

    @property
    def writes(self) -> int:
        return len(self.undo_log)


class LockManager:
    """Exclusive row-level locks with FIFO waiting in simulated time.

    Locks are keyed by ``(table, primary_key)``; a whole-table write (an
    un-indexed UPDATE/DELETE) locks the sentinel key ``('*',)``.
    Deadlock handling is by timeout: a waiter that is not granted within
    ``timeout_ms`` gets a :class:`TransactionError` thrown into it.
    """

    TABLE_SENTINEL = ("*",)

    def __init__(self, env: Environment, timeout_ms: float = 10_000.0):
        self.env = env
        self.timeout_ms = timeout_ms
        self._owners: Dict[Tuple[str, Any], int] = {}
        self._waiters: Dict[Tuple[str, Any], Deque[Tuple[int, Event]]] = {}
        self.timeouts = 0
        self.waits = 0

    def acquire(self, transaction: Transaction, table: str, key: Any) -> Generator[Event, Any, None]:
        """Block until ``transaction`` holds the (table, key) lock."""
        lock_key = (table, key)
        owner = self._owners.get(lock_key)
        if owner == transaction.id:
            return  # re-entrant
        if owner is None and not self._waiters.get(lock_key):
            self._owners[lock_key] = transaction.id
            transaction.locks.add(lock_key)
            return
        # Contended: enqueue and wait with a timeout.
        self.waits += 1
        grant = self.env.event()
        queue = self._waiters.setdefault(lock_key, deque())
        queue.append((transaction.id, grant))
        timeout = self.env.timeout(self.timeout_ms, value="timeout")
        outcome = yield self.env.any_of([grant, timeout])
        if 0 not in outcome:  # the grant did not fire first
            try:
                queue.remove((transaction.id, grant))
            except ValueError:
                pass
            self.timeouts += 1
            raise TransactionError(
                f"lock wait timeout on {table}[{key!r}] for transaction {transaction.id}"
            )
        self._owners[lock_key] = transaction.id
        transaction.locks.add(lock_key)

    def release_all(self, transaction: Transaction) -> None:
        """Release every lock held by ``transaction`` (commit/abort time)."""
        for lock_key in sorted(transaction.locks, key=repr):
            if self._owners.get(lock_key) != transaction.id:
                continue
            del self._owners[lock_key]
            queue = self._waiters.get(lock_key)
            if queue:
                _next_tx, grant = queue.popleft()
                if not queue:
                    del self._waiters[lock_key]
                # Ownership is assigned when the waiter resumes.
                grant.succeed()
            elif queue is not None:
                del self._waiters[lock_key]
        transaction.locks.clear()

    def holder(self, table: str, key: Any) -> Optional[int]:
        return self._owners.get((table, key))
