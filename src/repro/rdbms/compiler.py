"""Expression compilation: AST -> Python closures.

The tree-walking :meth:`~repro.rdbms.expressions.Expression.evaluate`
re-interprets the WHERE/ON tree for every row, and parameter binding used
to rebuild the whole AST per execution (``_substitute``).  This module
compiles an expression once into a nest of closures with the signature
``fn(row, params) -> value``: parameters are read from the ``params``
tuple at call time (an environment, not a tree rewrite), and constant
folding happens at compile time (LIKE needles are lowered once, literal
IN lists become tuple-membership tests).

Compiled closures reproduce the tree-walker *exactly*, including SQL
three-valued logic collapsed to False, short-circuit evaluation order,
and :class:`~repro.rdbms.expressions.EvaluationError` on missing or
ambiguous columns (the executor's join pass relies on those errors to
defer predicates until all join columns are visible).

``compiled`` memoizes per expression object.  Every statement the
applications execute flows through :func:`~repro.rdbms.sql.parse_cached`,
so the expression objects are long-lived singletons and the cache is
bounded by the statement vocabulary.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from .expressions import (
    _OPERATORS,
    And,
    ColumnRef,
    Comparison,
    EvaluationError,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    Parameter,
    like_matcher,
)
from .lru import LruCache

__all__ = ["compile_expression", "compiled", "column_lookup", "EMPTY_ROW"]

CompiledExpr = Callable[[Dict[str, Any], Tuple[Any, ...]], Any]

EMPTY_ROW: Dict[str, Any] = {}

_MISSING = object()


def _compile_column(name: str) -> CompiledExpr:
    if "." in name:
        bare = name.split(".", 1)[1]

        def lookup(row: Dict[str, Any], params: Tuple[Any, ...]) -> Any:
            value = row.get(name, _MISSING)
            if value is not _MISSING:
                return value
            # Permit unqualified access to a qualified row key and vice versa.
            value = row.get(bare, _MISSING)
            if value is not _MISSING:
                return value
            raise EvaluationError(f"row has no column {name!r}")

    else:
        suffix = "." + name

        def lookup(row: Dict[str, Any], params: Tuple[Any, ...]) -> Any:
            value = row.get(name, _MISSING)
            if value is not _MISSING:
                return value
            matches = [key for key in row if key.endswith(suffix)]
            if len(matches) == 1:
                return row[matches[0]]
            if len(matches) > 1:
                raise EvaluationError(f"ambiguous column {name!r}: {matches}")
            raise EvaluationError(f"row has no column {name!r}")

    return lookup


# Column lookups depend only on the column name, so they are shared
# across statements (projection lists build fresh ColumnRef nodes per
# execution; compiling those through this memo makes that free).
_COLUMN_CACHE = LruCache(4096)


def column_lookup(name: str) -> CompiledExpr:
    """Memoized row-lookup closure for a (possibly qualified) column name."""
    lookup = _COLUMN_CACHE.get(name)
    if lookup is None:
        lookup = _compile_column(name)
        _COLUMN_CACHE.put(name, lookup)
    return lookup


def compile_expression(expression: Expression) -> CompiledExpr:
    """Compile ``expression`` into ``fn(row, params) -> value``."""
    kind = type(expression)
    if kind is Literal:
        value = expression.value
        return lambda row, params: value
    if kind is Parameter:
        index = expression.index
        return lambda row, params: params[index]
    if kind is ColumnRef:
        return column_lookup(expression.name)
    if kind is Comparison:
        left = compile_expression(expression.left)
        right = compile_expression(expression.right)
        operator = _OPERATORS[expression.operator]

        def compare(row: Dict[str, Any], params: Tuple[Any, ...]) -> bool:
            # Both sides evaluate before the NULL check, exactly like the
            # tree-walker: a missing column on either side must raise.
            left_value = left(row, params)
            right_value = right(row, params)
            if left_value is None or right_value is None:
                return False  # SQL three-valued logic, collapsed to False
            return operator(left_value, right_value)

        return compare
    if kind is And:
        parts = tuple(compile_expression(part) for part in expression.parts)

        def conjunction(row: Dict[str, Any], params: Tuple[Any, ...]) -> bool:
            for part in parts:
                if not part(row, params):
                    return False
            return True

        return conjunction
    if kind is Or:
        parts = tuple(compile_expression(part) for part in expression.parts)

        def disjunction(row: Dict[str, Any], params: Tuple[Any, ...]) -> bool:
            for part in parts:
                if part(row, params):
                    return True
            return False

        return disjunction
    if kind is Not:
        part = compile_expression(expression.part)
        return lambda row, params: not part(row, params)
    if kind is Like:
        column = compile_expression(expression.column)
        if type(expression.pattern) is Literal and expression.pattern.value is not None:
            match = like_matcher(str(expression.pattern.value))

            def like_constant(row: Dict[str, Any], params: Tuple[Any, ...]) -> bool:
                value = column(row, params)
                if value is None:
                    return False
                return match(str(value).lower())

            return like_constant
        pattern = compile_expression(expression.pattern)
        # The pattern is constant across a scan (it comes from the params
        # tuple), so memoize the lowered matcher for the last pattern seen
        # instead of re-compiling it for every candidate row.
        last = [_MISSING, None]

        def like(row: Dict[str, Any], params: Tuple[Any, ...]) -> bool:
            value = column(row, params)
            pattern_value = pattern(row, params)
            if value is None or pattern_value is None:
                return False
            if pattern_value != last[0]:
                last[0] = pattern_value
                last[1] = like_matcher(str(pattern_value))
            return last[1](str(value).lower())

        return like
    if kind is InList:
        column = compile_expression(expression.column)
        if all(type(option) is Literal for option in expression.options):
            values = tuple(option.value for option in expression.options)
            # Tuple membership uses ==, matching the tree-walker's
            # pairwise comparisons (including NULL == NULL -> True).
            return lambda row, params: column(row, params) in values
        options = tuple(compile_expression(option) for option in expression.options)

        def in_list(row: Dict[str, Any], params: Tuple[Any, ...]) -> bool:
            value = column(row, params)
            for option in options:
                if value == option(row, params):
                    return True
            return False

        return in_list
    # Unknown node type: fall back to the tree-walker so programmatically
    # built extensions keep working (parameters must be pre-bound there).
    return lambda row, params: expression.evaluate(row)


# Memo keyed by object identity.  Expressions are pinned in the value so a
# cached id can never be matched by a different (dead) expression; the LRU
# evicts cold entries, dropping the pin, so long multi-cell runs neither
# leak expressions nor stop admitting new ones.
_COMPILED_CACHE: LruCache = LruCache(4096)


def compiled(expression: Expression) -> CompiledExpr:
    """Memoized :func:`compile_expression` (per expression object)."""
    entry = _COMPILED_CACHE.get(id(expression))
    if entry is not None:
        return entry[1]
    function = compile_expression(expression)
    _COMPILED_CACHE.put(id(expression), (expression, function))
    return function
