"""Row storage: tables with a primary index, hash indexes, ordered indexes.

Every column named in ``schema.indexes`` is backed by **two** index
structures: a hash index (``{value: set-of-primary-keys}``) answering
equality probes in O(1), and a :class:`~repro.rdbms.bptree.BPlusTree`
answering range and prefix probes in key order.  The primary key gets an
ordered index too (equality on the primary key is served by the row dict
itself).

TEXT columns store *casefolded* keys in their ordered index: the only
ordered probe the planner issues against TEXT is the prefix scan backing
case-insensitive ``LIKE 'abc%'`` predicates, and a casefolded tree makes
that scan return exactly the case-insensitively matching rows.  Numeric
columns store raw values, so range probes follow numeric order.

Empty index buckets are pruned on every mutation path (delete, update,
restore): a bucket that loses its last row key is removed from the hash
dict and the tree leaf, so index size tracks the *data*, not the
mutation history — this matters for churny workloads (bids, comments)
and for the statistics layer, which reads ``len(bucket dict)`` as the
distinct-value count.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .bptree import BPlusTree
from .schema import TableSchema
from .types import TEXT

__all__ = ["Table", "StorageError"]


class StorageError(Exception):
    """Raised on constraint violations (duplicate key, missing row, ...)."""


def _stable_sorted(keys: Iterable[Any]) -> List[Any]:
    try:
        return sorted(keys)
    except TypeError:  # mixed key types: fall back to a stable order
        return sorted(keys, key=repr)


class Table:
    """In-memory heap of rows keyed by primary key, with hash + ordered indexes.

    Rows are stored as plain dicts.  Mutating operations return enough
    information for the transaction layer to undo them.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: Dict[Any, Dict[str, Any]] = {}
        self._indexes: Dict[str, Dict[Any, Set[Any]]] = {
            column: {} for column in schema.indexes
        }
        # Ordered indexes cover the secondary-index columns plus the
        # primary key; TEXT columns are casefolded (see module docstring).
        self._ordered: Dict[str, BPlusTree] = {}
        self._casefolded: Dict[str, bool] = {}
        for column in [schema.primary_key, *schema.indexes]:
            self._ordered[column] = BPlusTree()
            self._casefolded[column] = schema.column(column).type == TEXT

    # -- inspection -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Any) -> bool:
        return key in self._rows

    @property
    def name(self) -> str:
        return self.schema.name

    def get(self, key: Any) -> Optional[Dict[str, Any]]:
        """The row with primary key ``key`` (a copy), or None."""
        row = self._rows.get(key)
        return dict(row) if row is not None else None

    def scan(self, copy: bool = True) -> Iterator[Dict[str, Any]]:
        """Iterate over every row (heap order = insertion order).

        ``copy=False`` yields the live storage dicts — the executor's
        copy-on-match path uses this so rows a predicate rejects are
        never copied.  Live rows must only be mutated through the
        undo-logged mutation API (:meth:`update` / :meth:`delete`).
        """
        if copy:
            for row in self._rows.values():
                yield dict(row)
        else:
            yield from self._rows.values()

    def keys(self) -> List[Any]:
        return list(self._rows.keys())

    def index_lookup(
        self, column: str, value: Any, copy: bool = True
    ) -> List[Dict[str, Any]]:
        """Rows whose indexed ``column`` equals ``value``.

        Returns copies by default; ``copy=False`` returns the live
        storage dicts (see :meth:`scan`).  Lookups never mutate the
        index: probing a value with no entries must not insert one.
        """
        if column == self.schema.primary_key:
            row = self._rows.get(value)
            if row is None:
                return []
            return [dict(row)] if copy else [row]
        if column not in self._indexes:
            raise StorageError(f"no index on {self.name}.{column}")
        keys = self._indexes[column].get(value)
        if not keys:
            return []
        ordered = _stable_sorted(keys)
        rows = self._rows
        if copy:
            return [dict(rows[key]) for key in ordered]
        return [rows[key] for key in ordered]

    def has_index(self, column: str) -> bool:
        return column == self.schema.primary_key or column in self._indexes

    def has_ordered_index(self, column: str) -> bool:
        return column in self._ordered

    def ordered_index_is_casefolded(self, column: str) -> bool:
        """True when the ordered index stores lowercase keys (TEXT columns)."""
        return self._casefolded.get(column, False)

    def _ordered_key(self, column: str, value: Any) -> Any:
        return value.lower() if self._casefolded[column] else value

    def range_lookup(
        self,
        column: str,
        lo: Any = None,
        hi: Any = None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
        copy: bool = True,
    ) -> List[Dict[str, Any]]:
        """Rows with ``lo <[=] column <[=] hi``, in (value, primary-key) order.

        Bounds of ``None`` are unbounded.  On a casefolded (TEXT) ordered
        index the comparison happens in lowercase key space — the planner
        only issues TEXT probes through :meth:`prefix_lookup`.
        """
        tree = self._ordered_tree(column)
        if lo is not None:
            lo = self._ordered_key(column, lo)
        if hi is not None:
            hi = self._ordered_key(column, hi)
        rows = self._rows
        out: List[Dict[str, Any]] = []
        for _key, bucket in tree.range_items(lo, hi, lo_inclusive, hi_inclusive):
            for key in _stable_sorted(bucket):
                row = rows[key]
                out.append(dict(row) if copy else row)
        return out

    def prefix_lookup(
        self, column: str, prefix: str, copy: bool = True
    ) -> List[Dict[str, Any]]:
        """Rows whose ``column`` starts (case-insensitively) with ``prefix``."""
        tree = self._ordered_tree(column)
        prefix = self._ordered_key(column, prefix)
        rows = self._rows
        out: List[Dict[str, Any]] = []
        for _key, bucket in tree.prefix_items(prefix):
            for key in _stable_sorted(bucket):
                row = rows[key]
                out.append(dict(row) if copy else row)
        return out

    def _ordered_tree(self, column: str) -> BPlusTree:
        try:
            return self._ordered[column]
        except KeyError:
            raise StorageError(f"no ordered index on {self.name}.{column}") from None

    # -- statistics accessors -------------------------------------------------
    def distinct_count(self, column: str) -> Optional[int]:
        """Distinct non-pruned values of an indexed ``column`` (None if unindexed)."""
        if column == self.schema.primary_key:
            return len(self._rows)
        index = self._indexes.get(column)
        if index is None:
            return None
        return len(index)

    def column_min_max(self, column: str) -> Optional[Tuple[Any, Any]]:
        """(min, max) of an ordered-indexed column, in its key space.

        TEXT columns report casefolded bounds.  None when the column has
        no ordered index or the table is empty.
        """
        tree = self._ordered.get(column)
        if tree is None or not tree:
            return None
        return tree.min_key(), tree.max_key()

    # -- mutation -----------------------------------------------------------
    def insert(self, values: Dict[str, Any]) -> Dict[str, Any]:
        """Insert; returns the stored row.  Raises on duplicate key."""
        row = self.schema.normalize_row(values)
        key = row[self.schema.primary_key]
        if key is None:
            raise StorageError(f"NULL primary key for {self.name}")
        if key in self._rows:
            raise StorageError(f"duplicate primary key {key!r} in {self.name}")
        self._rows[key] = row
        self._index_add(row, key)
        return dict(row)

    def _index_add(self, row: Dict[str, Any], key: Any) -> None:
        for column, index in self._indexes.items():
            value = row[column]
            bucket = index.get(value)
            if bucket is None:
                bucket = index[value] = set()
            bucket.add(key)
        for column, tree in self._ordered.items():
            value = row[column]
            if value is not None:
                tree.add(self._ordered_key(column, value), key)

    def _index_remove(self, row: Dict[str, Any], key: Any) -> None:
        for column, index in self._indexes.items():
            value = row[column]
            bucket = index.get(value)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del index[value]
        for column, tree in self._ordered.items():
            value = row[column]
            if value is not None:
                tree.discard(self._ordered_key(column, value), key)

    def update(self, key: Any, changes: Dict[str, Any]) -> Dict[str, Any]:
        """Apply ``changes`` to the row at ``key``; returns the prior image."""
        if key not in self._rows:
            raise StorageError(f"no row {key!r} in {self.name}")
        row = self._rows[key]
        before = dict(row)
        for column_name, value in changes.items():
            column = self.schema.column(column_name)
            if column_name == self.schema.primary_key and column.coerce(value) != key:
                raise StorageError("primary key update is not supported")
            new_value = column.coerce(value)
            if new_value != row[column_name]:
                self._index_move(column_name, row[column_name], new_value, key)
            row[column_name] = new_value
        return before

    def _index_move(self, column: str, old_value: Any, new_value: Any, key: Any) -> None:
        """Re-home ``key`` after a value change on one (possibly indexed) column."""
        index = self._indexes.get(column)
        if index is not None:
            bucket = index.get(old_value)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del index[old_value]
            new_bucket = index.get(new_value)
            if new_bucket is None:
                new_bucket = index[new_value] = set()
            new_bucket.add(key)
        tree = self._ordered.get(column)
        if tree is not None:
            if old_value is not None:
                tree.discard(self._ordered_key(column, old_value), key)
            if new_value is not None:
                tree.add(self._ordered_key(column, new_value), key)

    def delete(self, key: Any) -> Dict[str, Any]:
        """Remove the row at ``key``; returns its final image."""
        if key not in self._rows:
            raise StorageError(f"no row {key!r} in {self.name}")
        row = self._rows.pop(key)
        self._index_remove(row, key)
        return dict(row)

    def restore(self, row: Dict[str, Any]) -> None:
        """Reinstate a previously deleted/overwritten row image (undo path)."""
        key = row[self.schema.primary_key]
        if key in self._rows:
            # Undo of an update: overwrite in place.
            current = self._rows[key]
            for column in set([*self._indexes, *self._ordered]):
                if current[column] != row[column]:
                    self._index_move(column, current[column], row[column], key)
            current.clear()
            current.update(row)
        else:
            self._rows[key] = dict(row)
            self._index_add(self._rows[key], key)

    def truncate(self) -> None:
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()
        for tree in self._ordered.values():
            tree.clear()

    def bulk_load(self, rows: Iterable[Dict[str, Any]]) -> int:
        """Insert many rows (data-generator path); returns the count."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count
