"""Row storage: tables with a primary index and secondary hash indexes."""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set

from .schema import TableSchema

__all__ = ["Table", "StorageError"]


class StorageError(Exception):
    """Raised on constraint violations (duplicate key, missing row, ...)."""


class Table:
    """In-memory heap of rows keyed by primary key, with hash indexes.

    Rows are stored as plain dicts.  Mutating operations return enough
    information for the transaction layer to undo them.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: Dict[Any, Dict[str, Any]] = {}
        self._indexes: Dict[str, Dict[Any, Set[Any]]] = {
            column: defaultdict(set) for column in schema.indexes
        }

    # -- inspection -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Any) -> bool:
        return key in self._rows

    @property
    def name(self) -> str:
        return self.schema.name

    def get(self, key: Any) -> Optional[Dict[str, Any]]:
        """The row with primary key ``key`` (a copy), or None."""
        row = self._rows.get(key)
        return dict(row) if row is not None else None

    def scan(self, copy: bool = True) -> Iterator[Dict[str, Any]]:
        """Iterate over every row (heap order = insertion order).

        ``copy=False`` yields the live storage dicts — the executor's
        copy-on-match path uses this so rows a predicate rejects are
        never copied.  Live rows must only be mutated through the
        undo-logged mutation API (:meth:`update` / :meth:`delete`).
        """
        if copy:
            for row in self._rows.values():
                yield dict(row)
        else:
            yield from self._rows.values()

    def keys(self) -> List[Any]:
        return list(self._rows.keys())

    def index_lookup(
        self, column: str, value: Any, copy: bool = True
    ) -> List[Dict[str, Any]]:
        """Rows whose indexed ``column`` equals ``value``.

        Returns copies by default; ``copy=False`` returns the live
        storage dicts (see :meth:`scan`).  Lookups never mutate the
        index: probing a value with no entries must not insert one.
        """
        if column == self.schema.primary_key:
            row = self._rows.get(value)
            if row is None:
                return []
            return [dict(row)] if copy else [row]
        if column not in self._indexes:
            raise StorageError(f"no index on {self.name}.{column}")
        keys = self._indexes[column].get(value)
        if not keys:
            return []
        try:
            ordered = sorted(keys)
        except TypeError:  # mixed key types: fall back to a stable order
            ordered = sorted(keys, key=repr)
        rows = self._rows
        if copy:
            return [dict(rows[key]) for key in ordered]
        return [rows[key] for key in ordered]

    def has_index(self, column: str) -> bool:
        return column == self.schema.primary_key or column in self._indexes

    # -- mutation -----------------------------------------------------------
    def insert(self, values: Dict[str, Any]) -> Dict[str, Any]:
        """Insert; returns the stored row.  Raises on duplicate key."""
        row = self.schema.normalize_row(values)
        key = row[self.schema.primary_key]
        if key is None:
            raise StorageError(f"NULL primary key for {self.name}")
        if key in self._rows:
            raise StorageError(f"duplicate primary key {key!r} in {self.name}")
        self._rows[key] = row
        for column, index in self._indexes.items():
            index[row[column]].add(key)
        return dict(row)

    def update(self, key: Any, changes: Dict[str, Any]) -> Dict[str, Any]:
        """Apply ``changes`` to the row at ``key``; returns the prior image."""
        if key not in self._rows:
            raise StorageError(f"no row {key!r} in {self.name}")
        row = self._rows[key]
        before = dict(row)
        for column_name, value in changes.items():
            column = self.schema.column(column_name)
            if column_name == self.schema.primary_key and column.coerce(value) != key:
                raise StorageError("primary key update is not supported")
            new_value = column.coerce(value)
            if column_name in self._indexes and new_value != row[column_name]:
                self._indexes[column_name][row[column_name]].discard(key)
                self._indexes[column_name][new_value].add(key)
            row[column_name] = new_value
        return before

    def delete(self, key: Any) -> Dict[str, Any]:
        """Remove the row at ``key``; returns its final image."""
        if key not in self._rows:
            raise StorageError(f"no row {key!r} in {self.name}")
        row = self._rows.pop(key)
        for column, index in self._indexes.items():
            index[row[column]].discard(key)
        return dict(row)

    def restore(self, row: Dict[str, Any]) -> None:
        """Reinstate a previously deleted/overwritten row image (undo path)."""
        key = row[self.schema.primary_key]
        if key in self._rows:
            # Undo of an update: overwrite in place.
            current = self._rows[key]
            for column, index in self._indexes.items():
                if current[column] != row[column]:
                    index[current[column]].discard(key)
                    index[row[column]].add(key)
            current.clear()
            current.update(row)
        else:
            self._rows[key] = dict(row)
            for column, index in self._indexes.items():
                index[row[column]].add(key)

    def truncate(self) -> None:
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()

    def bulk_load(self, rows: Iterable[Dict[str, Any]]) -> int:
        """Insert many rows (data-generator path); returns the count."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count
