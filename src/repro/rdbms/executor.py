"""Query planning and execution against :class:`~repro.rdbms.storage.Table`.

The planner is deliberately simple — primary/secondary hash-index lookup
when the WHERE clause pins an indexed column with equality, otherwise a
full scan; nested-loop joins with inner-index acceleration — but it
reports its work (``rows_scanned``, ``used_index``) so the database
server can charge realistic execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .expressions import (
    And,
    ColumnRef,
    Comparison,
    EvaluationError,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    Parameter,
)
from .sql import Aggregate, Delete, Insert, Select, SelectItem, Statement, Update
from .storage import Table

__all__ = ["ResultSet", "ExecutionError", "Executor"]


class ExecutionError(Exception):
    """Raised when a statement cannot be executed."""


@dataclass
class ResultSet:
    """Rows produced by a statement plus execution cost evidence."""

    columns: List[str]
    rows: List[Dict[str, Any]]
    rows_scanned: int = 0
    used_index: Optional[str] = None
    affected: int = 0  # for INSERT/UPDATE/DELETE

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def first(self) -> Optional[Dict[str, Any]]:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() on a {len(self.rows)}x{len(self.columns)} result"
            )
        return self.rows[0][self.columns[0]]

    def column(self, name: str) -> List[Any]:
        return [row[name] for row in self.rows]


def _substitute(node: Expression, params: Tuple[Any, ...]) -> Expression:
    """Replace ``Parameter`` nodes using statement-global indexes."""
    if isinstance(node, Parameter):
        try:
            return Literal(params[node.index])
        except IndexError:
            raise ExecutionError(
                f"statement references parameter ?{node.index} but only "
                f"{len(params)} given"
            ) from None
    if isinstance(node, Comparison):
        return Comparison(_substitute(node.left, params), node.operator, _substitute(node.right, params))
    if isinstance(node, And):
        return And(tuple(_substitute(p, params) for p in node.parts))
    if isinstance(node, Or):
        return Or(tuple(_substitute(p, params) for p in node.parts))
    if isinstance(node, Not):
        return Not(_substitute(node.part, params))
    if isinstance(node, Like):
        return Like(node.column, _substitute(node.pattern, params))
    if isinstance(node, InList):
        return InList(node.column, tuple(_substitute(o, params) for o in node.options))
    return node


def _count_parameters(statement: Statement) -> int:
    total = 0
    if isinstance(statement, Select):
        if statement.where is not None:
            total += statement.where.parameters()
    elif isinstance(statement, Insert):
        total += sum(value.parameters() for value in statement.values)
    elif isinstance(statement, Update):
        total += sum(expr.parameters() for _c, expr in statement.assignments)
        if statement.where is not None:
            total += statement.where.parameters()
    elif isinstance(statement, Delete):
        if statement.where is not None:
            total += statement.where.parameters()
    return total


def _conjuncts(expression: Optional[Expression]) -> List[Expression]:
    if expression is None:
        return []
    if isinstance(expression, And):
        return list(expression.parts)
    return [expression]


class Executor:
    """Executes parsed statements against a dict of tables.

    Mutations are reported back to the caller through an optional
    ``undo_log`` (list of ``(table_name, op, image)`` tuples) so the
    transaction layer can roll them back.
    """

    def __init__(self, tables: Dict[str, Table]):
        self.tables = tables

    def _table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise ExecutionError(f"no such table {name!r}") from None

    # -- entry ---------------------------------------------------------------
    def execute(
        self,
        statement: Statement,
        params: Tuple[Any, ...] = (),
        undo_log: Optional[list] = None,
    ) -> ResultSet:
        expected = _count_parameters(statement)
        if expected != len(params):
            raise ExecutionError(
                f"statement takes {expected} parameters, got {len(params)}"
            )
        if isinstance(statement, Select):
            return self._execute_select(statement, params)
        if isinstance(statement, Insert):
            return self._execute_insert(statement, params, undo_log)
        if isinstance(statement, Update):
            return self._execute_update(statement, params, undo_log)
        if isinstance(statement, Delete):
            return self._execute_delete(statement, params, undo_log)
        raise ExecutionError(f"unsupported statement type {type(statement).__name__}")

    # -- SELECT ---------------------------------------------------------------
    def _scan_with_plan(
        self,
        table: Table,
        where: Optional[Expression],
        qualify_as: Optional[str] = None,
    ) -> Tuple[List[Dict[str, Any]], int, Optional[str]]:
        """Rows of ``table`` matching ``where``; returns (rows, scanned, index)."""
        candidates: Optional[List[Dict[str, Any]]] = None
        used_index = None
        residual = where
        for conjunct in _conjuncts(where):
            if not isinstance(conjunct, Comparison):
                continue
            binding = conjunct.equality_binding()
            if binding is None:
                continue
            column, value_expr = binding
            bare = column.split(".", 1)[-1]
            if qualify_as is not None and "." in column:
                if column.split(".", 1)[0] != qualify_as:
                    continue
            if table.has_index(bare):
                value = value_expr.evaluate({})
                candidates = table.index_lookup(bare, value)
                used_index = f"{table.name}.{bare}"
                break
        if candidates is None:
            candidates = list(table.scan())
        scanned = len(candidates) if used_index is None else max(1, len(candidates))
        if used_index is None:
            scanned = len(table)
        rows: List[Dict[str, Any]] = []
        for row in candidates:
            visible = (
                {f"{qualify_as}.{k}": v for k, v in row.items()} if qualify_as else row
            )
            if residual is None:
                rows.append(visible)
                continue
            try:
                keep = residual.evaluate(visible)
            except EvaluationError:
                if qualify_as is None:
                    raise
                # Joined-table columns are not visible yet; defer filtering
                # to the post-join pass.
                keep = True
            if keep:
                rows.append(visible)
        return rows, scanned, used_index

    def _execute_select(self, statement: Select, params: Tuple[Any, ...]) -> ResultSet:
        where = (
            _substitute(statement.where, params) if statement.where is not None else None
        )
        base_table = self._table(statement.table.name)

        if statement.joins:
            rows, scanned, used_index = self._execute_join(statement, base_table, where)
        else:
            rows, scanned, used_index = self._scan_with_plan(base_table, where)

        if statement.group_by is not None:
            result_rows = self._grouped(statement, rows)
            columns = [item.output_name for item in statement.items]
            if statement.order_by is not None:
                key_name = statement.order_by.column
                result_rows.sort(
                    key=lambda r: (r.get(key_name) is None, r.get(key_name)),
                    reverse=statement.order_by.descending,
                )
            if statement.limit is not None:
                result_rows = result_rows[: statement.limit]
            return ResultSet(
                columns, result_rows, rows_scanned=scanned, used_index=used_index
            )

        # Sorting happens on the full rows *before* projection, so ORDER BY
        # may name columns absent from the select list.
        if statement.order_by is not None and not statement.is_aggregate:
            key_ref = ColumnRef(statement.order_by.column)

            def sort_key(row: Dict[str, Any]):
                value = key_ref.evaluate(row)
                # None sorts first; mixed types sort by repr as a last resort.
                return (value is None, value if value is not None else 0)

            try:
                rows.sort(key=sort_key, reverse=statement.order_by.descending)
            except TypeError:
                rows.sort(
                    key=lambda r: repr(key_ref.evaluate(r)),
                    reverse=statement.order_by.descending,
                )

        if statement.limit is not None and not statement.is_aggregate:
            rows = rows[: statement.limit]

        # Projection / aggregation.
        if statement.is_aggregate:
            output = self._aggregate(statement, rows)
            columns = [item.output_name for item in statement.items]
            result_rows = [output]
        elif statement.is_star:
            columns = sorted(rows[0].keys()) if rows else self._star_columns(statement)
            result_rows = rows
        else:
            columns = [item.output_name for item in statement.items]
            result_rows = []
            for row in rows:
                projected = {}
                for item in statement.items:
                    assert isinstance(item, SelectItem)
                    projected[item.output_name] = ColumnRef(item.column).evaluate(row)
                result_rows.append(projected)

        return ResultSet(columns, result_rows, rows_scanned=scanned, used_index=used_index)

    def _star_columns(self, statement: Select) -> List[str]:
        if statement.joins:
            columns = []
            for ref in [statement.table] + [j.table for j in statement.joins]:
                table = self._table(ref.name)
                columns.extend(f"{ref.binding}.{c}" for c in table.schema.column_names())
            return columns
        return self._table(statement.table.name).schema.column_names()

    def _execute_join(
        self, statement: Select, base_table: Table, where: Optional[Expression]
    ) -> Tuple[List[Dict[str, Any]], int, Optional[str]]:
        """Left-deep nested-loop join with inner index acceleration."""
        base_binding = statement.table.binding
        rows, scanned, used_index = self._scan_with_plan(
            base_table, where, qualify_as=base_binding
        )
        for join in statement.joins:
            inner_table = self._table(join.table.name)
            inner_binding = join.table.binding
            # Decide which side of the ON refers to the inner table.
            left_bare = join.left_column.split(".", 1)[-1]
            right_bare = join.right_column.split(".", 1)[-1]
            left_owner = join.left_column.split(".", 1)[0] if "." in join.left_column else None
            if left_owner == inner_binding or (
                left_owner is None and inner_table.schema.has_column(left_bare)
                and not any(left_bare in r for r in rows[:1])
            ):
                inner_column, outer_column = left_bare, join.right_column
            else:
                inner_column, outer_column = right_bare, join.left_column
            outer_ref = ColumnRef(outer_column)
            joined: List[Dict[str, Any]] = []
            use_inner_index = inner_table.has_index(inner_column)
            for outer_row in rows:
                outer_value = outer_ref.evaluate(outer_row)
                if use_inner_index:
                    matches = inner_table.index_lookup(inner_column, outer_value)
                    scanned += max(1, len(matches))
                else:
                    matches = [
                        r for r in inner_table.scan() if r.get(inner_column) == outer_value
                    ]
                    scanned += len(inner_table)
                for inner_row in matches:
                    combined = dict(outer_row)
                    combined.update(
                        {f"{inner_binding}.{k}": v for k, v in inner_row.items()}
                    )
                    joined.append(combined)
            rows = joined
        # Re-apply WHERE now that all join columns are visible (cheap second
        # pass; the first pass already pruned what it could see).
        if where is not None:
            rows = [row for row in rows if where.evaluate(row)]
        return rows, scanned, used_index

    def _grouped(
        self, statement: Select, rows: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """GROUP BY evaluation: one output row per distinct key.

        Plain select items must reference the grouping column (or a column
        functionally dependent on it within the group — the value is taken
        from the group's first row, as MySQL 4 permitted).
        """
        if not statement.items:
            raise ExecutionError("SELECT * with GROUP BY is not supported")
        key_ref = ColumnRef(statement.group_by)
        groups: Dict[Any, List[Dict[str, Any]]] = {}
        order: List[Any] = []
        for row in rows:
            key = key_ref.evaluate(row)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        output: List[Dict[str, Any]] = []
        for key in order:
            group_rows = groups[key]
            out_row: Dict[str, Any] = {}
            for item in statement.items:
                if isinstance(item, Aggregate):
                    out_row.update(
                        self._aggregate(
                            Select(items=(item,), table=statement.table),
                            group_rows,
                        )
                    )
                else:
                    out_row[item.output_name] = ColumnRef(item.column).evaluate(
                        group_rows[0]
                    )
            output.append(out_row)
        return output

    def _aggregate(
        self, statement: Select, rows: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        output: Dict[str, Any] = {}
        for item in statement.items:
            if not isinstance(item, Aggregate):
                raise ExecutionError(
                    "mixing aggregates and plain columns requires GROUP BY, "
                    "which is not supported"
                )
            if item.function == "COUNT" and item.column is None:
                output[item.output_name] = len(rows)
                continue
            ref = ColumnRef(item.column)
            values = [ref.evaluate(row) for row in rows]
            values = [v for v in values if v is not None]
            if item.function == "COUNT":
                output[item.output_name] = len(values)
            elif not values:
                output[item.output_name] = None
            elif item.function == "MAX":
                output[item.output_name] = max(values)
            elif item.function == "MIN":
                output[item.output_name] = min(values)
            elif item.function == "SUM":
                output[item.output_name] = sum(values)
            elif item.function == "AVG":
                output[item.output_name] = sum(values) / len(values)
            else:  # pragma: no cover - parser restricts functions
                raise ExecutionError(f"unknown aggregate {item.function}")
        return output

    # -- mutations -----------------------------------------------------------
    def _execute_insert(
        self, statement: Insert, params: Tuple[Any, ...], undo_log: Optional[list]
    ) -> ResultSet:
        table = self._table(statement.table)
        values = {}
        for column, expr in zip(statement.columns, statement.values):
            values[column] = _substitute(expr, params).evaluate({})
        row = table.insert(values)
        if undo_log is not None:
            undo_log.append((statement.table, "insert", row[table.schema.primary_key]))
        return ResultSet([], [], affected=1, rows_scanned=1)

    def _execute_update(
        self, statement: Update, params: Tuple[Any, ...], undo_log: Optional[list]
    ) -> ResultSet:
        table = self._table(statement.table)
        where = (
            _substitute(statement.where, params) if statement.where is not None else None
        )
        targets, scanned, used_index = self._scan_with_plan(table, where)
        changes = {
            column: _substitute(expr, params).evaluate({})
            for column, expr in statement.assignments
        }
        pk = table.schema.primary_key
        for row in targets:
            before = table.update(row[pk], changes)
            if undo_log is not None:
                undo_log.append((statement.table, "update", before))
        return ResultSet(
            [], [], affected=len(targets), rows_scanned=scanned, used_index=used_index
        )

    def _execute_delete(
        self, statement: Delete, params: Tuple[Any, ...], undo_log: Optional[list]
    ) -> ResultSet:
        table = self._table(statement.table)
        where = (
            _substitute(statement.where, params) if statement.where is not None else None
        )
        targets, scanned, used_index = self._scan_with_plan(table, where)
        pk = table.schema.primary_key
        for row in targets:
            before = table.delete(row[pk])
            if undo_log is not None:
                undo_log.append((statement.table, "delete", before))
        return ResultSet(
            [], [], affected=len(targets), rows_scanned=scanned, used_index=used_index
        )
