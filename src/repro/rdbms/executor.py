"""Query planning and execution against :class:`~repro.rdbms.storage.Table`.

The planner is deliberately simple — primary/secondary hash-index lookup
when the WHERE clause pins an indexed column with equality, otherwise a
full scan; nested-loop joins with inner-index acceleration — but it
reports its work (``rows_scanned``, ``used_index``) so the database
server can charge realistic execution time.

Execution is closure-compiled: WHERE/ON trees are lowered once per
statement by :mod:`repro.rdbms.compiler` and parameters are bound
through an environment (the ``params`` tuple) instead of rebuilding the
AST per execution.  Row storage is copy-on-match: scans iterate the live
storage dicts and only rows that survive the predicate are copied into
the result, so a selective WHERE over a large table no longer pays one
``dict()`` per rejected row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .compiler import EMPTY_ROW, column_lookup, compiled
from .expressions import (
    And,
    Comparison,
    EvaluationError,
    Expression,
)
from .sql import Aggregate, Delete, Insert, Select, Statement, Update
from .storage import Table

__all__ = ["ResultSet", "ExecutionError", "Executor"]


class ExecutionError(Exception):
    """Raised when a statement cannot be executed."""


@dataclass
class ResultSet:
    """Rows produced by a statement plus execution cost evidence."""

    columns: List[str]
    rows: List[Dict[str, Any]]
    rows_scanned: int = 0
    used_index: Optional[str] = None
    affected: int = 0  # for INSERT/UPDATE/DELETE

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def first(self) -> Optional[Dict[str, Any]]:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() on a {len(self.rows)}x{len(self.columns)} result"
            )
        return self.rows[0][self.columns[0]]

    def column(self, name: str) -> List[Any]:
        return [row[name] for row in self.rows]


# Parameter counts are a pure function of the statement tree; statements
# flow through ``parse_cached`` and are long-lived singletons, so memoize
# by identity (pinning the statement so ids cannot be reused).
_PARAM_COUNT_CACHE: Dict[int, Tuple[Statement, int]] = {}
_PARAM_COUNT_LIMIT = 4096


def _count_parameters(statement: Statement) -> int:
    entry = _PARAM_COUNT_CACHE.get(id(statement))
    if entry is not None:
        return entry[1]
    total = 0
    if isinstance(statement, Select):
        if statement.where is not None:
            total += statement.where.parameters()
    elif isinstance(statement, Insert):
        total += sum(value.parameters() for value in statement.values)
    elif isinstance(statement, Update):
        total += sum(expr.parameters() for _c, expr in statement.assignments)
        if statement.where is not None:
            total += statement.where.parameters()
    elif isinstance(statement, Delete):
        if statement.where is not None:
            total += statement.where.parameters()
    if len(_PARAM_COUNT_CACHE) < _PARAM_COUNT_LIMIT:
        _PARAM_COUNT_CACHE[id(statement)] = (statement, total)
    return total


def _conjuncts(expression: Optional[Expression]) -> List[Expression]:
    if expression is None:
        return []
    if isinstance(expression, And):
        return list(expression.parts)
    return [expression]


# Index selection is a pure function of (WHERE tree, table schema,
# qualifier), all of which are long-lived, so the chosen access path is
# memoized: value = (where, schema, indexed_column_or_None, value_fn).
_SCAN_PLAN_CACHE: Dict[Tuple[int, int, Optional[str]], tuple] = {}

# Qualified-row key pairs per (schema, binding): [("id", "i.id"), ...].
_QUALIFIED_KEYS_CACHE: Dict[Tuple[int, str], tuple] = {}
_PLAN_CACHE_LIMIT = 4096


def _qualified_keys(schema, prefix: str) -> tuple:
    cache_key = (id(schema), prefix)
    entry = _QUALIFIED_KEYS_CACHE.get(cache_key)
    if entry is not None:
        return entry[1]
    pairs = tuple((name, prefix + name) for name in schema.column_names())
    if len(_QUALIFIED_KEYS_CACHE) < _PLAN_CACHE_LIMIT:
        _QUALIFIED_KEYS_CACHE[cache_key] = (schema, pairs)
    return pairs


# Per-statement SELECT shape: aggregate/star flags, output columns, and
# projection getters.  ``Select.is_aggregate`` walks the item list and the
# projection rebuilt its getter list on every execution; both are fixed
# once the statement is parsed.
_SELECT_PLAN_CACHE: Dict[int, tuple] = {}


def _select_plan(statement: Select) -> tuple:
    entry = _SELECT_PLAN_CACHE.get(id(statement))
    if entry is not None:
        return entry[1]
    is_aggregate = statement.is_aggregate
    is_star = statement.is_star
    columns = None if is_star else [item.output_name for item in statement.items]
    getters = None
    if not is_aggregate and not is_star:
        getters = [
            (item.output_name, column_lookup(item.column))
            for item in statement.items
        ]
    order_lookup = (
        column_lookup(statement.order_by.column)
        if statement.order_by is not None
        else None
    )
    plan = (is_aggregate, is_star, columns, getters, order_lookup)
    if len(_SELECT_PLAN_CACHE) < _PLAN_CACHE_LIMIT:
        _SELECT_PLAN_CACHE[id(statement)] = (statement, plan)
    return plan


class Executor:
    """Executes parsed statements against a dict of tables.

    Mutations are reported back to the caller through an optional
    ``undo_log`` (list of ``(table_name, op, image)`` tuples) so the
    transaction layer can roll them back.
    """

    def __init__(self, tables: Dict[str, Table]):
        self.tables = tables
        # Access-path evidence, per instance (never module-global: serial
        # sweeps share one process across cells and would accumulate).
        self.index_scans = 0
        self.full_scans = 0

    def _table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise ExecutionError(f"no such table {name!r}") from None

    # -- entry ---------------------------------------------------------------
    def execute(
        self,
        statement: Statement,
        params: Tuple[Any, ...] = (),
        undo_log: Optional[list] = None,
    ) -> ResultSet:
        expected = _count_parameters(statement)
        if expected != len(params):
            raise ExecutionError(
                f"statement takes {expected} parameters, got {len(params)}"
            )
        if isinstance(statement, Select):
            return self._execute_select(statement, params)
        if isinstance(statement, Insert):
            return self._execute_insert(statement, params, undo_log)
        if isinstance(statement, Update):
            return self._execute_update(statement, params, undo_log)
        if isinstance(statement, Delete):
            return self._execute_delete(statement, params, undo_log)
        raise ExecutionError(f"unsupported statement type {type(statement).__name__}")

    # -- SELECT ---------------------------------------------------------------
    def _scan_with_plan(
        self,
        table: Table,
        where: Optional[Expression],
        params: Tuple[Any, ...],
        qualify_as: Optional[str] = None,
        copy_rows: bool = True,
    ) -> Tuple[List[Dict[str, Any]], int, Optional[str]]:
        """Rows of ``table`` matching ``where``; returns (rows, scanned, index).

        ``copy_rows=False`` returns live storage dicts for matches (the
        mutation paths only read the primary key from them); qualified
        rows are always fresh dicts.
        """
        schema = table.schema
        plan_key = (id(where), id(schema), qualify_as)
        plan = _SCAN_PLAN_CACHE.get(plan_key)
        if plan is None:
            indexed_column = None
            value_fn = None
            index_name = None
            for conjunct in _conjuncts(where):
                if not isinstance(conjunct, Comparison):
                    continue
                binding = conjunct.equality_binding()
                if binding is None:
                    continue
                column, value_expr = binding
                bare = column.split(".", 1)[-1]
                if qualify_as is not None and "." in column:
                    if column.split(".", 1)[0] != qualify_as:
                        continue
                if table.has_index(bare):
                    indexed_column = bare
                    value_fn = compiled(value_expr)
                    index_name = f"{table.name}.{bare}"
                    break
            plan = (where, schema, indexed_column, value_fn, index_name)
            if len(_SCAN_PLAN_CACHE) < _PLAN_CACHE_LIMIT:
                _SCAN_PLAN_CACHE[plan_key] = plan
        indexed_column, value_fn, used_index = plan[2], plan[3], plan[4]
        if indexed_column is not None:
            value = value_fn(EMPTY_ROW, params)
            candidates = table.index_lookup(indexed_column, value, copy=False)
            scanned = max(1, len(candidates))
            self.index_scans += 1
        else:
            candidates = table.scan(copy=False)
            scanned = len(table)
            self.full_scans += 1
        predicate = compiled(where) if where is not None else None
        rows: List[Dict[str, Any]] = []
        append = rows.append
        if qualify_as is None:
            if predicate is None:
                if copy_rows:
                    for row in candidates:
                        append(dict(row))
                else:
                    rows.extend(candidates)
            elif copy_rows:
                for row in candidates:
                    if predicate(row, params):
                        append(dict(row))
            else:
                for row in candidates:
                    if predicate(row, params):
                        append(row)
            return rows, scanned, used_index
        pairs = _qualified_keys(schema, qualify_as + ".")
        for row in candidates:
            visible = {qualified: row[key] for key, qualified in pairs}
            if predicate is not None:
                try:
                    if not predicate(visible, params):
                        continue
                except EvaluationError:
                    # Joined-table columns are not visible yet; defer
                    # filtering to the post-join pass.
                    pass
            append(visible)
        return rows, scanned, used_index

    def _execute_select(self, statement: Select, params: Tuple[Any, ...]) -> ResultSet:
        base_table = self._table(statement.table.name)

        if statement.joins:
            rows, scanned, used_index = self._execute_join(statement, base_table, params)
        else:
            rows, scanned, used_index = self._scan_with_plan(
                base_table, statement.where, params
            )

        if statement.group_by is not None:
            result_rows = self._grouped(statement, rows)
            columns = [item.output_name for item in statement.items]
            if statement.order_by is not None:
                key_name = statement.order_by.column
                result_rows.sort(
                    key=lambda r: (r.get(key_name) is None, r.get(key_name)),
                    reverse=statement.order_by.descending,
                )
            if statement.limit is not None:
                result_rows = result_rows[: statement.limit]
            return ResultSet(
                columns, result_rows, rows_scanned=scanned, used_index=used_index
            )

        is_aggregate, is_star, columns, getters, order_lookup = _select_plan(statement)

        # Sorting happens on the full rows *before* projection, so ORDER BY
        # may name columns absent from the select list.
        if order_lookup is not None and not is_aggregate:

            def sort_key(row: Dict[str, Any]):
                value = order_lookup(row, params)
                # None sorts first; mixed types sort by repr as a last resort.
                return (value is None, value if value is not None else 0)

            try:
                rows.sort(key=sort_key, reverse=statement.order_by.descending)
            except TypeError:
                rows.sort(
                    key=lambda r: repr(order_lookup(r, params)),
                    reverse=statement.order_by.descending,
                )

        if statement.limit is not None and not is_aggregate:
            rows = rows[: statement.limit]

        # Projection / aggregation.
        if is_aggregate:
            output = self._aggregate(statement, rows)
            result_rows = [output]
        elif is_star:
            columns = sorted(rows[0].keys()) if rows else self._star_columns(statement)
            result_rows = rows
        else:
            result_rows = [
                {name: getter(row, params) for name, getter in getters}
                for row in rows
            ]

        return ResultSet(columns, result_rows, rows_scanned=scanned, used_index=used_index)

    def _star_columns(self, statement: Select) -> List[str]:
        if statement.joins:
            columns = []
            for ref in [statement.table] + [j.table for j in statement.joins]:
                table = self._table(ref.name)
                columns.extend(f"{ref.binding}.{c}" for c in table.schema.column_names())
            return columns
        return self._table(statement.table.name).schema.column_names()

    def _execute_join(
        self, statement: Select, base_table: Table, params: Tuple[Any, ...]
    ) -> Tuple[List[Dict[str, Any]], int, Optional[str]]:
        """Left-deep nested-loop join with inner index acceleration."""
        where = statement.where
        base_binding = statement.table.binding
        rows, scanned, used_index = self._scan_with_plan(
            base_table, where, params, qualify_as=base_binding
        )
        for join in statement.joins:
            inner_table = self._table(join.table.name)
            inner_binding = join.table.binding
            # Decide which side of the ON refers to the inner table.
            left_bare = join.left_column.split(".", 1)[-1]
            right_bare = join.right_column.split(".", 1)[-1]
            left_owner = join.left_column.split(".", 1)[0] if "." in join.left_column else None
            if left_owner == inner_binding or (
                left_owner is None and inner_table.schema.has_column(left_bare)
                and not any(left_bare in r for r in rows[:1])
            ):
                inner_column, outer_column = left_bare, join.right_column
            else:
                inner_column, outer_column = right_bare, join.left_column
            outer_lookup = column_lookup(outer_column)
            joined: List[Dict[str, Any]] = []
            append = joined.append
            use_inner_index = inner_table.has_index(inner_column)
            inner_size = len(inner_table)
            inner_pairs = _qualified_keys(inner_table.schema, inner_binding + ".")
            for outer_row in rows:
                outer_value = outer_lookup(outer_row, params)
                if use_inner_index:
                    matches = inner_table.index_lookup(
                        inner_column, outer_value, copy=False
                    )
                    scanned += max(1, len(matches))
                else:
                    matches = [
                        r
                        for r in inner_table.scan(copy=False)
                        if r.get(inner_column) == outer_value
                    ]
                    scanned += inner_size
                for inner_row in matches:
                    combined = dict(outer_row)
                    for key, qualified in inner_pairs:
                        combined[qualified] = inner_row[key]
                    append(combined)
            rows = joined
        # Re-apply WHERE now that all join columns are visible (cheap second
        # pass; the first pass already pruned what it could see).
        if where is not None:
            predicate = compiled(where)
            rows = [row for row in rows if predicate(row, params)]
        return rows, scanned, used_index

    def _grouped(
        self, statement: Select, rows: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """GROUP BY evaluation: one output row per distinct key.

        Plain select items must reference the grouping column (or a column
        functionally dependent on it within the group — the value is taken
        from the group's first row, as MySQL 4 permitted).
        """
        if not statement.items:
            raise ExecutionError("SELECT * with GROUP BY is not supported")
        key_lookup = column_lookup(statement.group_by)
        groups: Dict[Any, List[Dict[str, Any]]] = {}
        order: List[Any] = []
        for row in rows:
            key = key_lookup(row, ())
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        output: List[Dict[str, Any]] = []
        for key in order:
            group_rows = groups[key]
            out_row: Dict[str, Any] = {}
            for item in statement.items:
                if isinstance(item, Aggregate):
                    out_row.update(
                        self._aggregate(
                            Select(items=(item,), table=statement.table),
                            group_rows,
                        )
                    )
                else:
                    out_row[item.output_name] = column_lookup(item.column)(
                        group_rows[0], ()
                    )
            output.append(out_row)
        return output

    def _aggregate(
        self, statement: Select, rows: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        output: Dict[str, Any] = {}
        for item in statement.items:
            if not isinstance(item, Aggregate):
                raise ExecutionError(
                    "mixing aggregates and plain columns requires GROUP BY, "
                    "which is not supported"
                )
            if item.function == "COUNT" and item.column is None:
                output[item.output_name] = len(rows)
                continue
            lookup = column_lookup(item.column)
            values = [value for value in (lookup(row, ()) for row in rows) if value is not None]
            if item.function == "COUNT":
                output[item.output_name] = len(values)
            elif not values:
                output[item.output_name] = None
            elif item.function == "MAX":
                output[item.output_name] = max(values)
            elif item.function == "MIN":
                output[item.output_name] = min(values)
            elif item.function == "SUM":
                output[item.output_name] = sum(values)
            elif item.function == "AVG":
                output[item.output_name] = sum(values) / len(values)
            else:  # pragma: no cover - parser restricts functions
                raise ExecutionError(f"unknown aggregate {item.function}")
        return output

    # -- mutations -----------------------------------------------------------
    def _execute_insert(
        self, statement: Insert, params: Tuple[Any, ...], undo_log: Optional[list]
    ) -> ResultSet:
        table = self._table(statement.table)
        values = {}
        for column, expr in zip(statement.columns, statement.values):
            values[column] = compiled(expr)(EMPTY_ROW, params)
        row = table.insert(values)
        if undo_log is not None:
            undo_log.append((statement.table, "insert", row[table.schema.primary_key]))
        return ResultSet([], [], affected=1, rows_scanned=1)

    def _execute_update(
        self, statement: Update, params: Tuple[Any, ...], undo_log: Optional[list]
    ) -> ResultSet:
        table = self._table(statement.table)
        targets, scanned, used_index = self._scan_with_plan(
            table, statement.where, params, copy_rows=False
        )
        changes = {
            column: compiled(expr)(EMPTY_ROW, params)
            for column, expr in statement.assignments
        }
        pk = table.schema.primary_key
        for row in targets:
            before = table.update(row[pk], changes)
            if undo_log is not None:
                undo_log.append((statement.table, "update", before))
        return ResultSet(
            [], [], affected=len(targets), rows_scanned=scanned, used_index=used_index
        )

    def _execute_delete(
        self, statement: Delete, params: Tuple[Any, ...], undo_log: Optional[list]
    ) -> ResultSet:
        table = self._table(statement.table)
        targets, scanned, used_index = self._scan_with_plan(
            table, statement.where, params, copy_rows=False
        )
        pk = table.schema.primary_key
        keys = [row[pk] for row in targets]
        for key in keys:
            before = table.delete(key)
            if undo_log is not None:
                undo_log.append((statement.table, "delete", before))
        return ResultSet(
            [], [], affected=len(keys), rows_scanned=scanned, used_index=used_index
        )
