"""Query planning and execution against :class:`~repro.rdbms.storage.Table`.

Access paths are chosen by a cost-based planner (SimpleDB-style): for
every table scan the executor collects the candidate paths the WHERE
clause admits — hash-index equality probe, ordered-index prefix scan
(``LIKE 'abc%'``), ordered-index range scan (``<``/``<=``/``>``/``>=``/
``BETWEEN``), full scan — costs each in ``blocks_accessed`` /
``records_output`` estimates from live :class:`~repro.rdbms.stats`
statistics, and executes the cheapest.  Ties break by a fixed path rank
(equality first, full scan last), which makes the planner a strict
generalization of the old hard-coded equality-index-or-scan rule: every
query the old planner could accelerate takes the identical path with
identical ``rows_scanned``, so simulated costs (and the golden
experiment tables derived from them) are unchanged.

The *structure* of a scan plan — which conjuncts admit which candidate
paths, and the compiled value closures — is a pure function of the
(WHERE tree, schema, qualifier) triple and is memoized per executor in
a bounded LRU.  The *choice* among candidates is re-costed against live
statistics on every execution, so plans adapt as tables grow or churn.

The chosen plan is reported on :class:`ResultSet` (``result.plan``,
EXPLAIN-renderable) along with the classic evidence counters
(``rows_scanned``, ``used_index``) that the database server charges
execution time from.

Execution is closure-compiled: WHERE/ON trees are lowered once per
statement by :mod:`repro.rdbms.compiler` and parameters are bound
through an environment (the ``params`` tuple) instead of rebuilding the
AST per execution.  Row storage is copy-on-match: scans iterate the live
storage dicts and only rows that survive the predicate are copied into
the result, so a selective WHERE over a large table no longer pays one
``dict()`` per rejected row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .compiler import EMPTY_ROW, column_lookup, compiled
from .expressions import (
    And,
    Comparison,
    EvaluationError,
    Expression,
    Like,
    like_prefix,
)
from .lru import LruCache
from .plan import AccessChoice, PlanNode, QueryPlan, choose_path, scan_node
from .sql import Aggregate, Delete, Insert, Select, Statement, Update
from .stats import TableStats
from .storage import Table

__all__ = ["ResultSet", "ExecutionError", "Executor"]

_PLAN_CACHE_LIMIT = 4096


class ExecutionError(Exception):
    """Raised when a statement cannot be executed."""


@dataclass
class ResultSet:
    """Rows produced by a statement plus execution cost evidence."""

    columns: List[str]
    rows: List[Dict[str, Any]]
    rows_scanned: int = 0
    used_index: Optional[str] = None
    affected: int = 0  # for INSERT/UPDATE/DELETE
    plan: Optional[QueryPlan] = None  # chosen access paths, EXPLAIN-renderable

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def first(self) -> Optional[Dict[str, Any]]:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() on a {len(self.rows)}x{len(self.columns)} result"
            )
        return self.rows[0][self.columns[0]]

    def column(self, name: str) -> List[Any]:
        return [row[name] for row in self.rows]

    def explain(self) -> str:
        """EXPLAIN text for the plan that produced this result."""
        if self.plan is None:
            return "QUERY PLAN (none recorded)"
        return self.plan.render()


def _conjuncts(expression: Optional[Expression]) -> List[Expression]:
    """Flatten nested ANDs into a conjunct list (BETWEEN desugars to a
    nested And, so flattening must recurse)."""
    if expression is None:
        return []
    if isinstance(expression, And):
        flat: List[Expression] = []
        for part in expression.parts:
            flat.extend(_conjuncts(part))
        return flat
    return [expression]


@dataclass(frozen=True)
class _ScanAnalysis:
    """Stats-independent access-path structure of one (WHERE, table) pair.

    ``eq`` is the *leftmost* equality-indexed conjunct — preserving the
    legacy planner's choice when several equality conjuncts are indexed,
    so existing workloads scan the exact same buckets.  ``ranges`` maps
    ordered-indexed non-TEXT columns to their bound closures; ``prefixes``
    lists LIKE conjuncts over ordered-indexed TEXT columns whose pattern
    may turn out prefix-shaped at execution time.
    """

    eq: Optional[Tuple[str, Any]] = None  # (column, value_fn)
    ranges: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = ()
    prefixes: Tuple[Tuple[str, Any], ...] = ()  # (column, pattern_fn)
    has_candidates: bool = field(default=False)


def _visible_column(column: str, qualify_as: Optional[str]) -> Optional[str]:
    """The bare column name if ``column`` refers to this table, else None."""
    if qualify_as is not None and "." in column:
        if column.split(".", 1)[0] != qualify_as:
            return None
    return column.split(".", 1)[-1]


class Executor:
    """Executes parsed statements against a dict of tables.

    Mutations are reported back to the caller through an optional
    ``undo_log`` (list of ``(table_name, op, image)`` tuples) so the
    transaction layer can roll them back.

    All memo caches are per-instance bounded LRUs: a long process that
    churns through many databases/statements (serial experiment sweeps)
    neither pins dead statements forever nor silently stops admitting
    new plans once full.
    """

    def __init__(self, tables: Dict[str, Table]):
        self.tables = tables
        # Access-path evidence, per instance (never module-global: serial
        # sweeps share one process across cells and would accumulate).
        self.index_scans = 0
        self.full_scans = 0
        self.range_scans = 0
        self.prefix_scans = 0
        self.join_index_lookups = 0
        self.join_full_scans = 0
        # Benchmark/debug knob: ignore every index candidate and scan.
        self.force_full_scans = False
        # id()-keyed caches pin their keyed objects inside the value; the
        # LRU evicts cold entries (dropping the pin), so id reuse after
        # eviction misses and recomputes instead of returning stale plans.
        self._param_counts = LruCache(_PLAN_CACHE_LIMIT)
        self._scan_plans = LruCache(_PLAN_CACHE_LIMIT)
        self._qualified_keys = LruCache(_PLAN_CACHE_LIMIT)
        self._select_plans = LruCache(_PLAN_CACHE_LIMIT)

    def _table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise ExecutionError(f"no such table {name!r}") from None

    # -- memoized statement shape helpers -------------------------------------
    def _count_parameters(self, statement: Statement) -> int:
        entry = self._param_counts.get(id(statement))
        if entry is not None:
            return entry[1]
        total = 0
        if isinstance(statement, Select):
            if statement.where is not None:
                total += statement.where.parameters()
        elif isinstance(statement, Insert):
            total += sum(value.parameters() for value in statement.values)
        elif isinstance(statement, Update):
            total += sum(expr.parameters() for _c, expr in statement.assignments)
            if statement.where is not None:
                total += statement.where.parameters()
        elif isinstance(statement, Delete):
            if statement.where is not None:
                total += statement.where.parameters()
        self._param_counts.put(id(statement), (statement, total))
        return total

    def _qualified_key_pairs(self, schema, prefix: str) -> tuple:
        cache_key = (id(schema), prefix)
        entry = self._qualified_keys.get(cache_key)
        if entry is not None:
            return entry[1]
        pairs = tuple((name, prefix + name) for name in schema.column_names())
        self._qualified_keys.put(cache_key, (schema, pairs))
        return pairs

    def _select_plan(self, statement: Select) -> tuple:
        entry = self._select_plans.get(id(statement))
        if entry is not None:
            return entry[1]
        is_aggregate = statement.is_aggregate
        is_star = statement.is_star
        columns = None if is_star else [item.output_name for item in statement.items]
        getters = None
        if not is_aggregate and not is_star:
            getters = [
                (item.output_name, column_lookup(item.column))
                for item in statement.items
            ]
        order_lookup = (
            column_lookup(statement.order_by.column)
            if statement.order_by is not None
            else None
        )
        plan = (is_aggregate, is_star, columns, getters, order_lookup)
        self._select_plans.put(id(statement), (statement, plan))
        return plan

    # -- entry ---------------------------------------------------------------
    def execute(
        self,
        statement: Statement,
        params: Tuple[Any, ...] = (),
        undo_log: Optional[list] = None,
    ) -> ResultSet:
        expected = self._count_parameters(statement)
        if expected != len(params):
            raise ExecutionError(
                f"statement takes {expected} parameters, got {len(params)}"
            )
        if isinstance(statement, Select):
            return self._execute_select(statement, params)
        if isinstance(statement, Insert):
            return self._execute_insert(statement, params, undo_log)
        if isinstance(statement, Update):
            return self._execute_update(statement, params, undo_log)
        if isinstance(statement, Delete):
            return self._execute_delete(statement, params, undo_log)
        raise ExecutionError(f"unsupported statement type {type(statement).__name__}")

    # -- access-path planning -------------------------------------------------
    def _analyze_scan(
        self, table: Table, where: Optional[Expression], qualify_as: Optional[str]
    ) -> _ScanAnalysis:
        """The cached, stats-independent half of scan planning."""
        cache_key = (id(where), id(table.schema), qualify_as)
        entry = self._scan_plans.get(cache_key)
        if entry is not None:
            return entry[2]
        eq = None
        range_specs: Dict[str, List[Tuple[str, Any]]] = {}
        prefixes: List[Tuple[str, Any]] = []
        for conjunct in _conjuncts(where):
            if isinstance(conjunct, Like):
                bare = _visible_column(conjunct.column.name, qualify_as)
                if (
                    bare is not None
                    and table.has_ordered_index(bare)
                    and table.ordered_index_is_casefolded(bare)
                ):
                    prefixes.append((bare, compiled(conjunct.pattern)))
                continue
            if not isinstance(conjunct, Comparison):
                continue
            binding = conjunct.equality_binding()
            if binding is not None:
                column, value_expr = binding
                bare = _visible_column(column, qualify_as)
                if bare is not None and eq is None and table.has_index(bare):
                    eq = (bare, compiled(value_expr))
                continue
            range_bind = conjunct.range_binding()
            if range_bind is not None:
                column, operator, value_expr = range_bind
                bare = _visible_column(column, qualify_as)
                # TEXT ordered indexes hold casefolded keys, which only
                # preserve *prefix* order — range probes would be wrong
                # (e.g. 'a' > 'B' flips under casefolding), so ranges are
                # limited to non-TEXT ordered indexes.
                if (
                    bare is not None
                    and table.has_ordered_index(bare)
                    and not table.ordered_index_is_casefolded(bare)
                ):
                    range_specs.setdefault(bare, []).append(
                        (operator, compiled(value_expr))
                    )
        analysis = _ScanAnalysis(
            eq=eq,
            ranges=tuple(
                (column, tuple(bounds)) for column, bounds in range_specs.items()
            ),
            prefixes=tuple(prefixes),
            has_candidates=bool(eq or range_specs or prefixes),
        )
        self._scan_plans.put(cache_key, (where, table.schema, analysis))
        return analysis

    def _plan_scan(
        self,
        table: Table,
        where: Optional[Expression],
        params: Tuple[Any, ...],
        qualify_as: Optional[str] = None,
    ) -> Tuple[AccessChoice, tuple, List[AccessChoice]]:
        """Cost every candidate access path against live statistics.

        Returns ``(chosen, fetch_spec, considered)`` where ``fetch_spec``
        carries the runtime probe values: ``("eq", column, value)``,
        ``("prefix", column, prefix)``, ``("range", column, lo, hi)``
        (bounds are ``(value, inclusive)`` or None), or ``("full",)``.
        """
        analysis = self._analyze_scan(table, where, qualify_as)
        stats = TableStats(table)
        full = AccessChoice(
            "full-scan", table.name, None, "all rows",
            stats.table_blocks(), stats.row_count,
        )
        if not analysis.has_candidates or self.force_full_scans:
            return full, ("full",), [full]
        candidates: List[AccessChoice] = []
        specs: List[tuple] = []
        if analysis.eq is not None:
            column, value_fn = analysis.eq
            records = stats.equality_records(column)
            candidates.append(
                AccessChoice(
                    "index-eq", table.name, column, f"{column} = <probe>",
                    stats.blocks_for(records), records,
                )
            )
            specs.append(("eq", column, value_fn(EMPTY_ROW, params)))
        for column, pattern_fn in analysis.prefixes:
            pattern = pattern_fn(EMPTY_ROW, params)
            prefix = like_prefix(str(pattern)) if pattern is not None else None
            if prefix is None:
                continue
            records = stats.prefix_records(column)
            candidates.append(
                AccessChoice(
                    "index-prefix", table.name, column,
                    f"{column} LIKE '{prefix}%'",
                    stats.blocks_for(records), records,
                )
            )
            specs.append(("prefix", column, prefix))
        for column, bounds in analysis.ranges:
            lo = hi = None
            for operator, value_fn in bounds:
                value = value_fn(EMPTY_ROW, params)
                if value is None:
                    continue  # NULL bound: predicate filters everything anyway
                inclusive = operator in (">=", "<=")
                try:
                    if operator in (">", ">="):
                        if lo is None or value > lo[0] or (
                            value == lo[0] and not inclusive
                        ):
                            lo = (value, inclusive)
                    else:
                        if hi is None or value < hi[0] or (
                            value == hi[0] and not inclusive
                        ):
                            hi = (value, inclusive)
                except TypeError:
                    continue  # incomparable bound values: keep the first
            if lo is None and hi is None:
                continue
            records = stats.range_records(
                column, lo[0] if lo else None, hi[0] if hi else None
            )
            candidates.append(
                AccessChoice(
                    "index-range", table.name, column,
                    _describe_range(column, lo, hi),
                    stats.blocks_for(records), records,
                )
            )
            specs.append(("range", column, lo, hi))
        candidates.append(full)
        specs.append(("full",))
        chosen = choose_path(candidates)
        return chosen, specs[candidates.index(chosen)], candidates

    # -- SELECT ---------------------------------------------------------------
    def _scan_with_plan(
        self,
        table: Table,
        where: Optional[Expression],
        params: Tuple[Any, ...],
        qualify_as: Optional[str] = None,
        copy_rows: bool = True,
    ) -> Tuple[List[Dict[str, Any]], int, Optional[str], PlanNode]:
        """Rows of ``table`` matching ``where``.

        Returns ``(rows, scanned, index_name, plan_node)``.
        ``copy_rows=False`` returns live storage dicts for matches (the
        mutation paths only read the primary key from them); qualified
        rows are always fresh dicts.
        """
        chosen, spec, considered = self._plan_scan(table, where, params, qualify_as)
        kind = spec[0]
        used_index: Optional[str] = None
        if kind == "eq":
            candidates = table.index_lookup(spec[1], spec[2], copy=False)
            scanned = max(1, len(candidates))
            used_index = f"{table.name}.{spec[1]}"
            self.index_scans += 1
        elif kind == "prefix":
            candidates = table.prefix_lookup(spec[1], spec[2], copy=False)
            scanned = max(1, len(candidates))
            used_index = f"{table.name}.{spec[1]}"
            self.index_scans += 1
            self.prefix_scans += 1
        elif kind == "range":
            _kind, column, lo, hi = spec
            candidates = table.range_lookup(
                column,
                lo[0] if lo else None,
                hi[0] if hi else None,
                lo_inclusive=lo[1] if lo else True,
                hi_inclusive=hi[1] if hi else True,
                copy=False,
            )
            scanned = max(1, len(candidates))
            used_index = f"{table.name}.{column}"
            self.index_scans += 1
            self.range_scans += 1
        else:
            candidates = table.scan(copy=False)
            scanned = len(table)
            self.full_scans += 1
        node = scan_node(chosen, considered)
        # The index narrowed the candidates; the full predicate still
        # runs over them (residual conjuncts, exact LIKE semantics).
        predicate = compiled(where) if where is not None else None
        rows: List[Dict[str, Any]] = []
        append = rows.append
        if qualify_as is None:
            if predicate is None:
                if copy_rows:
                    for row in candidates:
                        append(dict(row))
                else:
                    rows.extend(candidates)
            elif copy_rows:
                for row in candidates:
                    if predicate(row, params):
                        append(dict(row))
            else:
                for row in candidates:
                    if predicate(row, params):
                        append(row)
            return rows, scanned, used_index, node
        pairs = self._qualified_key_pairs(table.schema, qualify_as + ".")
        for row in candidates:
            visible = {qualified: row[key] for key, qualified in pairs}
            if predicate is not None:
                try:
                    if not predicate(visible, params):
                        continue
                except EvaluationError:
                    # Joined-table columns are not visible yet; defer
                    # filtering to the post-join pass.
                    pass
            append(visible)
        return rows, scanned, used_index, node

    def _execute_select(self, statement: Select, params: Tuple[Any, ...]) -> ResultSet:
        base_table = self._table(statement.table.name)

        if statement.joins:
            rows, scanned, used_index, plan_root = self._execute_join(
                statement, base_table, params
            )
        else:
            rows, scanned, used_index, plan_root = self._scan_with_plan(
                base_table, statement.where, params
            )
        plan = QueryPlan(plan_root, "select")

        if statement.group_by is not None:
            result_rows = self._grouped(statement, rows)
            columns = [item.output_name for item in statement.items]
            if statement.order_by is not None:
                # ORDER BY after GROUP BY sorts the *output* rows, whose
                # keys are output names — resolve aliases and raw source
                # columns to the matching output name first.
                key_name = _resolve_group_order_key(statement)
                result_rows.sort(
                    key=lambda r: (r.get(key_name) is None, r.get(key_name)),
                    reverse=statement.order_by.descending,
                )
            if statement.limit is not None:
                result_rows = result_rows[: statement.limit]
            return ResultSet(
                columns, result_rows, rows_scanned=scanned, used_index=used_index,
                plan=plan,
            )

        is_aggregate, is_star, columns, getters, order_lookup = self._select_plan(
            statement
        )

        # Sorting happens on the full rows *before* projection, so ORDER BY
        # may name columns absent from the select list.
        if order_lookup is not None and not is_aggregate:

            def sort_key(row: Dict[str, Any]):
                value = order_lookup(row, params)
                # None sorts first; mixed types sort by repr as a last resort.
                return (value is None, value if value is not None else 0)

            try:
                rows.sort(key=sort_key, reverse=statement.order_by.descending)
            except TypeError:
                rows.sort(
                    key=lambda r: repr(order_lookup(r, params)),
                    reverse=statement.order_by.descending,
                )

        if statement.limit is not None and not is_aggregate:
            rows = rows[: statement.limit]

        # Projection / aggregation.
        if is_aggregate:
            output = self._aggregate(statement, rows)
            result_rows = [output]
        elif is_star:
            columns = sorted(rows[0].keys()) if rows else self._star_columns(statement)
            result_rows = rows
        else:
            result_rows = [
                {name: getter(row, params) for name, getter in getters}
                for row in rows
            ]

        return ResultSet(
            columns, result_rows, rows_scanned=scanned, used_index=used_index,
            plan=plan,
        )

    def _star_columns(self, statement: Select) -> List[str]:
        if statement.joins:
            columns = []
            for ref in [statement.table] + [j.table for j in statement.joins]:
                table = self._table(ref.name)
                columns.extend(f"{ref.binding}.{c}" for c in table.schema.column_names())
            return columns
        return self._table(statement.table.name).schema.column_names()

    # -- joins ----------------------------------------------------------------
    def _join_steps(self, statement: Select) -> List[tuple]:
        """Join order chosen greedily by estimated inner per-probe cost.

        Each step is ``(join, inner_table, inner_binding, inner_column,
        outer_column, use_index)``.  Only joins whose outer side is
        resolvable from the already-joined bindings are eligible at each
        step; ties keep statement order (so single-join statements — all
        of the canned workloads — are planned exactly as written).
        """
        available = {statement.table.binding}
        remaining = list(statement.joins)
        steps: List[tuple] = []
        while remaining:
            decoded = []
            for position, join in enumerate(remaining):
                inner_table = self._table(join.table.name)
                inner_binding = join.table.binding
                left_bare = join.left_column.split(".", 1)[-1]
                right_bare = join.right_column.split(".", 1)[-1]
                left_owner = (
                    join.left_column.split(".", 1)[0]
                    if "." in join.left_column
                    else None
                )
                if left_owner == inner_binding or (
                    left_owner is None and inner_table.schema.has_column(left_bare)
                ):
                    inner_column, outer_column = left_bare, join.right_column
                else:
                    inner_column, outer_column = right_bare, join.left_column
                outer_owner = (
                    outer_column.split(".", 1)[0] if "." in outer_column else None
                )
                eligible = outer_owner is None or outer_owner in available
                use_index = inner_table.has_index(inner_column)
                if use_index:
                    probe_cost = TableStats(inner_table).equality_records(inner_column)
                else:
                    probe_cost = len(inner_table)
                decoded.append(
                    (eligible, probe_cost, position, join, inner_table,
                     inner_binding, inner_column, outer_column, use_index)
                )
            eligible_steps = [d for d in decoded if d[0]] or decoded
            best = min(eligible_steps, key=lambda d: (d[1], d[2]))
            (_e, _cost, _pos, join, inner_table, inner_binding,
             inner_column, outer_column, use_index) = best
            steps.append(
                (join, inner_table, inner_binding, inner_column,
                 outer_column, use_index)
            )
            remaining.remove(join)
            available.add(inner_binding)
        return steps

    def _join_inner_node(
        self, inner_table: Table, inner_column: str, outer_column: str,
        use_index: bool,
    ) -> PlanNode:
        stats = TableStats(inner_table)
        if use_index:
            records = stats.equality_records(inner_column)
            return PlanNode(
                op="index-eq", table=inner_table.name, column=inner_column,
                detail=f"{inner_column} = {outer_column} (per probe)",
                est_blocks=stats.blocks_for(records), est_records=records,
            )
        return PlanNode(
            op="full-scan", table=inner_table.name,
            detail=f"{inner_column} = {outer_column} (scan per probe)",
            est_blocks=stats.table_blocks(), est_records=stats.row_count,
        )

    def _execute_join(
        self, statement: Select, base_table: Table, params: Tuple[Any, ...]
    ) -> Tuple[List[Dict[str, Any]], int, Optional[str], PlanNode]:
        """Left-deep nested-loop join with inner index acceleration."""
        where = statement.where
        base_binding = statement.table.binding
        rows, scanned, used_index, plan_node = self._scan_with_plan(
            base_table, where, params, qualify_as=base_binding
        )
        for step in self._join_steps(statement):
            (_join, inner_table, inner_binding, inner_column,
             outer_column, use_inner_index) = step
            outer_lookup = column_lookup(outer_column)
            joined: List[Dict[str, Any]] = []
            append = joined.append
            inner_size = len(inner_table)
            inner_pairs = self._qualified_key_pairs(
                inner_table.schema, inner_binding + "."
            )
            for outer_row in rows:
                outer_value = outer_lookup(outer_row, params)
                if use_inner_index:
                    matches = inner_table.index_lookup(
                        inner_column, outer_value, copy=False
                    )
                    scanned += max(1, len(matches))
                    self.join_index_lookups += 1
                else:
                    matches = [
                        r
                        for r in inner_table.scan(copy=False)
                        if r.get(inner_column) == outer_value
                    ]
                    scanned += inner_size
                    self.join_full_scans += 1
                for inner_row in matches:
                    combined = dict(outer_row)
                    for key, qualified in inner_pairs:
                        combined[qualified] = inner_row[key]
                    append(combined)
            rows = joined
            inner_node = self._join_inner_node(
                inner_table, inner_column, outer_column, use_inner_index
            )
            plan_node = PlanNode(
                op="nested-loop-join", table=inner_table.name,
                detail=f"{outer_column} = {inner_binding}.{inner_column}",
                est_blocks=plan_node.est_blocks
                + plan_node.est_records * max(1, inner_node.est_blocks),
                est_records=plan_node.est_records * max(1, inner_node.est_records),
                children=(plan_node, inner_node),
            )
        # Re-apply WHERE now that all join columns are visible (cheap second
        # pass; the first pass already pruned what it could see).
        if where is not None:
            predicate = compiled(where)
            rows = [row for row in rows if predicate(row, params)]
        return rows, scanned, used_index, plan_node

    # -- grouping / aggregation ------------------------------------------------
    def _grouped(
        self, statement: Select, rows: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """GROUP BY evaluation: one output row per distinct key.

        Plain select items must reference the grouping column (or a column
        functionally dependent on it within the group — the value is taken
        from the group's first row, as MySQL 4 permitted).
        """
        if not statement.items:
            raise ExecutionError("SELECT * with GROUP BY is not supported")
        key_lookup = column_lookup(statement.group_by)
        groups: Dict[Any, List[Dict[str, Any]]] = {}
        order: List[Any] = []
        for row in rows:
            key = key_lookup(row, ())
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        output: List[Dict[str, Any]] = []
        for key in order:
            group_rows = groups[key]
            out_row: Dict[str, Any] = {}
            for item in statement.items:
                if isinstance(item, Aggregate):
                    out_row.update(
                        self._aggregate(
                            Select(items=(item,), table=statement.table),
                            group_rows,
                        )
                    )
                else:
                    out_row[item.output_name] = column_lookup(item.column)(
                        group_rows[0], ()
                    )
            output.append(out_row)
        return output

    def _aggregate(
        self, statement: Select, rows: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        output: Dict[str, Any] = {}
        for item in statement.items:
            if not isinstance(item, Aggregate):
                raise ExecutionError(
                    "mixing aggregates and plain columns requires GROUP BY, "
                    "which is not supported"
                )
            if item.function == "COUNT" and item.column is None:
                output[item.output_name] = len(rows)
                continue
            lookup = column_lookup(item.column)
            values = [value for value in (lookup(row, ()) for row in rows) if value is not None]
            if item.function == "COUNT":
                output[item.output_name] = len(values)
            elif not values:
                output[item.output_name] = None
            elif item.function == "MAX":
                output[item.output_name] = max(values)
            elif item.function == "MIN":
                output[item.output_name] = min(values)
            elif item.function == "SUM":
                output[item.output_name] = sum(values)
            elif item.function == "AVG":
                output[item.output_name] = sum(values) / len(values)
            else:  # pragma: no cover - parser restricts functions
                raise ExecutionError(f"unknown aggregate {item.function}")
        return output

    # -- EXPLAIN ----------------------------------------------------------------
    def explain(
        self, statement: Statement, params: Tuple[Any, ...] = ()
    ) -> QueryPlan:
        """The plan the executor would choose, without executing.

        Runs the same candidate costing as execution (against live
        statistics) but fetches nothing and bumps no counters.
        """
        expected = self._count_parameters(statement)
        if expected != len(params):
            raise ExecutionError(
                f"statement takes {expected} parameters, got {len(params)}"
            )
        if isinstance(statement, Insert):
            table = self._table(statement.table)
            node = PlanNode(
                op="insert", table=table.name, detail="1 row",
                est_blocks=1, est_records=1,
            )
            return QueryPlan(node, "insert")
        if isinstance(statement, (Update, Delete)):
            table = self._table(statement.table)
            chosen, _spec, considered = self._plan_scan(
                table, statement.where, params
            )
            kind = "update" if isinstance(statement, Update) else "delete"
            return QueryPlan(scan_node(chosen, considered), kind)
        if not isinstance(statement, Select):
            raise ExecutionError(
                f"cannot explain statement type {type(statement).__name__}"
            )
        base_table = self._table(statement.table.name)
        qualify_as = statement.table.binding if statement.joins else None
        chosen, _spec, considered = self._plan_scan(
            base_table, statement.where, params, qualify_as=qualify_as
        )
        node = scan_node(chosen, considered)
        for step in self._join_steps(statement):
            (_join, inner_table, inner_binding, inner_column,
             outer_column, use_index) = step
            inner_node = self._join_inner_node(
                inner_table, inner_column, outer_column, use_index
            )
            node = PlanNode(
                op="nested-loop-join", table=inner_table.name,
                detail=f"{outer_column} = {inner_binding}.{inner_column}",
                est_blocks=node.est_blocks
                + node.est_records * max(1, inner_node.est_blocks),
                est_records=node.est_records * max(1, inner_node.est_records),
                children=(node, inner_node),
            )
        return QueryPlan(node, "select")

    # -- mutations -----------------------------------------------------------
    def _execute_insert(
        self, statement: Insert, params: Tuple[Any, ...], undo_log: Optional[list]
    ) -> ResultSet:
        table = self._table(statement.table)
        values = {}
        for column, expr in zip(statement.columns, statement.values):
            values[column] = compiled(expr)(EMPTY_ROW, params)
        row = table.insert(values)
        if undo_log is not None:
            undo_log.append((statement.table, "insert", row[table.schema.primary_key]))
        return ResultSet([], [], affected=1, rows_scanned=1)

    def _execute_update(
        self, statement: Update, params: Tuple[Any, ...], undo_log: Optional[list]
    ) -> ResultSet:
        table = self._table(statement.table)
        targets, scanned, used_index, node = self._scan_with_plan(
            table, statement.where, params, copy_rows=False
        )
        changes = {
            column: compiled(expr)(EMPTY_ROW, params)
            for column, expr in statement.assignments
        }
        pk = table.schema.primary_key
        for row in targets:
            before = table.update(row[pk], changes)
            if undo_log is not None:
                undo_log.append((statement.table, "update", before))
        return ResultSet(
            [], [], affected=len(targets), rows_scanned=scanned,
            used_index=used_index, plan=QueryPlan(node, "update"),
        )

    def _execute_delete(
        self, statement: Delete, params: Tuple[Any, ...], undo_log: Optional[list]
    ) -> ResultSet:
        table = self._table(statement.table)
        targets, scanned, used_index, node = self._scan_with_plan(
            table, statement.where, params, copy_rows=False
        )
        pk = table.schema.primary_key
        keys = [row[pk] for row in targets]
        for key in keys:
            before = table.delete(key)
            if undo_log is not None:
                undo_log.append((statement.table, "delete", before))
        return ResultSet(
            [], [], affected=len(keys), rows_scanned=scanned,
            used_index=used_index, plan=QueryPlan(node, "delete"),
        )


def _resolve_group_order_key(statement: Select) -> str:
    """Resolve a GROUP BY statement's ORDER BY target to an output-row key.

    Output rows are keyed by output names (aliases included), so ORDER BY
    must match against those first; a raw source column that was aliased
    in the select list maps to its alias.  Unresolvable names keep their
    text (the sort then sees only missing keys, preserving input order —
    the legacy behavior for genuinely unknown columns).
    """
    target = statement.order_by.column
    output_names = [item.output_name for item in statement.items]
    if target in output_names:
        return target
    bare = target.split(".", 1)[-1]
    for item in statement.items:
        if isinstance(item, Aggregate):
            if item.column is not None and item.column.split(".", 1)[-1] == bare:
                return item.output_name
        elif item.column == target or item.column.split(".", 1)[-1] == bare:
            return item.output_name
    return target


def _describe_range(column: str, lo, hi) -> str:
    if lo is not None and hi is not None:
        left = ">=" if lo[1] else ">"
        right = "<=" if hi[1] else "<"
        return f"{column} {left} {lo[0]!r} AND {column} {right} {hi[0]!r}"
    if lo is not None:
        return f"{column} {'>=' if lo[1] else '>'} {lo[0]!r}"
    return f"{column} {'<=' if hi[1] else '<'} {hi[0]!r}"
