"""Cost-based access-path plans and EXPLAIN rendering.

SimpleDB-style: every candidate access path is costed in
``blocks_accessed`` / ``records_output`` estimates (from
:mod:`repro.rdbms.stats`) and the cheapest wins.  Ties break by a fixed
path rank — equality index, then prefix scan, then range scan, then
full scan — so a hash-index equality probe is *always* preferred over a
full scan even when both estimates collapse to zero (empty tables).
That tie-break is what keeps the planner a strict generalization of the
old hard-coded equality-index-or-scan rule: for every query the old
executor could plan, the new planner provably makes the same choice.

Plans are exposed on :class:`~repro.rdbms.executor.ResultSet` via the
``plan`` attribute; ``plan.render()`` produces EXPLAIN-style text that
includes the rejected alternatives with their estimates.  The plan tree
covers access paths and joins — projection, grouping and sorting are
not costed (they are CPU-side and charged by the server's cost model
through ``rows_scanned``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "AccessChoice",
    "PlanNode",
    "QueryPlan",
    "choose_path",
    "scan_node",
    "PATH_RANK",
]

# Tie-break order between access-path kinds with equal estimates.
PATH_RANK: Dict[str, int] = {
    "index-eq": 0,
    "index-prefix": 1,
    "index-range": 2,
    "full-scan": 3,
}

_RENDER_NAMES = {
    "index-eq": "IndexEq",
    "index-prefix": "IndexPrefix",
    "index-range": "IndexRange",
    "full-scan": "FullScan",
    "nested-loop-join": "NestedLoopJoin",
    "insert": "Insert",
}


@dataclass(frozen=True)
class AccessChoice:
    """One candidate access path with its cost estimates."""

    kind: str  # a PATH_RANK key
    table: str
    column: Optional[str]
    detail: str  # human-readable predicate summary, e.g. "category = 1"
    est_blocks: int
    est_records: int

    @property
    def rank(self) -> int:
        return PATH_RANK[self.kind]

    def sort_key(self) -> Tuple[int, int, int]:
        return (self.est_blocks, self.est_records, self.rank)

    def describe(self) -> str:
        name = _RENDER_NAMES.get(self.kind, self.kind)
        target = f"{self.table}.{self.column}" if self.column else self.table
        return (
            f"{name} {target} [{self.detail}] "
            f"(est_blocks={self.est_blocks}, est_records={self.est_records})"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "table": self.table,
            "column": self.column,
            "detail": self.detail,
            "est_blocks": self.est_blocks,
            "est_records": self.est_records,
        }


def choose_path(candidates: List[AccessChoice]) -> AccessChoice:
    """The cheapest candidate by (blocks, records, rank).

    ``min`` is stable, so among candidates with identical keys the one
    listed first wins — callers list the legacy-compatible choice first.
    """
    return min(candidates, key=AccessChoice.sort_key)


@dataclass(frozen=True)
class PlanNode:
    """One operator in a query plan tree."""

    op: str  # access-path kind, "nested-loop-join", or "insert"
    table: str
    detail: str
    est_blocks: int
    est_records: int
    column: Optional[str] = None  # the index column for index-backed ops
    children: Tuple["PlanNode", ...] = ()
    considered: Tuple[AccessChoice, ...] = ()  # rejected alternatives

    def walk(self) -> Iterator["PlanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self, indent: int = 0) -> List[str]:
        pad = "  " * indent
        name = _RENDER_NAMES.get(self.op, self.op)
        target = f"{self.table}.{self.column}" if self.column else self.table
        lines = [
            f"{pad}-> {name} {target} [{self.detail}] "
            f"(est_blocks={self.est_blocks}, est_records={self.est_records})"
        ]
        for alternative in self.considered:
            lines.append(f"{pad}     rejected: {alternative.describe()}")
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines

    def as_dict(self) -> Dict[str, Any]:
        node: Dict[str, Any] = {
            "op": self.op,
            "table": self.table,
            "column": self.column,
            "detail": self.detail,
            "est_blocks": self.est_blocks,
            "est_records": self.est_records,
        }
        if self.children:
            node["children"] = [child.as_dict() for child in self.children]
        if self.considered:
            node["considered"] = [choice.as_dict() for choice in self.considered]
        return node


@dataclass(frozen=True)
class QueryPlan:
    """The chosen plan for one statement, EXPLAIN-renderable."""

    root: PlanNode
    statement_kind: str = "select"

    def render(self) -> str:
        lines = [f"QUERY PLAN ({self.statement_kind})"]
        lines.extend(self.root.render(indent=0))
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {"statement": self.statement_kind, "root": self.root.as_dict()}

    def access_paths(self) -> List[PlanNode]:
        """The scan/lookup leaves, in execution order (for counter checks)."""
        return [node for node in self.root.walk() if node.op in PATH_RANK]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def scan_node(
    chosen: AccessChoice, considered: List[AccessChoice]
) -> PlanNode:
    """A leaf node for ``chosen``, recording every rejected alternative."""
    rejected = tuple(c for c in considered if c is not chosen)
    return PlanNode(
        op=chosen.kind,
        table=chosen.table,
        detail=chosen.detail,
        est_blocks=chosen.est_blocks,
        est_records=chosen.est_records,
        column=chosen.column,
        considered=rejected,
    )
