"""The database engine facade: DDL, statement execution, transactions.

This is the *pure* engine — it executes instantly in simulated time.
Timing, locking, and network protocol live in :mod:`repro.rdbms.server`
and :mod:`repro.rdbms.jdbc`.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple, Union

from .compiler import EMPTY_ROW, compiled
from .executor import ExecutionError, Executor, ResultSet
from .expressions import EvaluationError
from .schema import TableSchema
from .sql import Delete, Insert, Select, Statement, Update, parse_cached
from .storage import Table
from .transactions import Transaction

__all__ = ["Database", "DatabaseError"]


class DatabaseError(Exception):
    """Raised for engine-level misuse (unknown table, bad DDL)."""


class Database:
    """A named collection of tables plus an executor.

    Statements may be SQL text (parsed and memoized) or pre-built
    statement ASTs.  Passing a :class:`Transaction` collects undo
    information; without one, statements auto-commit.
    """

    def __init__(self, name: str):
        self.name = name
        self.tables: Dict[str, Table] = {}
        self._executor = Executor(self.tables)
        self.statements_executed = 0
        self.rows_scanned_total = 0
        # Per-instance so a fresh Database starts at id 1: transaction
        # ids must not leak across cell runs in one worker process.
        self._transaction_ids = itertools.count(1)

    @property
    def executor(self) -> Executor:
        """The query executor (read-only access to its scan counters)."""
        return self._executor

    # -- DDL / loading -----------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self.tables:
            raise DatabaseError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self.tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise DatabaseError(f"no such table {name!r}") from None

    def load(self, table_name: str, rows) -> int:
        return self.table(table_name).bulk_load(rows)

    # -- transactions -----------------------------------------------------------
    def begin(self, read_only: bool = False) -> Transaction:
        return Transaction(
            self.tables, read_only=read_only, id=next(self._transaction_ids)
        )

    # -- execution -----------------------------------------------------------
    def prepare(self, sql: str) -> Statement:
        """Parse (memoized) without executing."""
        return parse_cached(sql)

    def execute(
        self,
        statement: Union[str, Statement],
        params: Tuple[Any, ...] = (),
        transaction: Optional[Transaction] = None,
    ) -> ResultSet:
        if isinstance(statement, str):
            statement = parse_cached(statement)
        if transaction is not None and transaction.read_only and not isinstance(statement, Select):
            raise DatabaseError("write statement in a read-only transaction")
        undo_log = transaction.undo_log if transaction is not None else None
        result = self._executor.execute(statement, params, undo_log=undo_log)
        self.statements_executed += 1
        self.rows_scanned_total += result.rows_scanned
        return result

    # -- introspection -----------------------------------------------------------
    def explain(
        self, statement: Union[str, Statement], params: Tuple[Any, ...] = ()
    ):
        """The query plan the executor would choose, without executing.

        Returns a :class:`~repro.rdbms.plan.QueryPlan`; ``.render()``
        yields EXPLAIN-style text including rejected candidate paths.
        """
        if isinstance(statement, str):
            statement = parse_cached(statement)
        return self._executor.explain(statement, params)

    def write_targets(self, statement: Union[str, Statement], params: Tuple[Any, ...] = ()) -> List[Tuple[str, Any]]:
        """The (table, key) pairs a mutation will touch — used for locking.

        For INSERTs this is the new primary key; for UPDATE/DELETE the
        matching rows' keys (or a whole-table sentinel when un-indexed and
        unpredictable).  SELECTs return no targets.
        """
        if isinstance(statement, str):
            statement = parse_cached(statement)
        if isinstance(statement, Select):
            return []
        if isinstance(statement, Insert):
            table = self.table(statement.table)
            pk = table.schema.primary_key
            for column, expr in zip(statement.columns, statement.values):
                if column == pk:
                    # Parameter indexes are statement-global, so the
                    # compiled closure reads the full parameter tuple.
                    return [(statement.table, compiled(expr)(EMPTY_ROW, params))]
            return [(statement.table, ("*",))]
        if isinstance(statement, (Update, Delete)):
            # Dry-run the executor's plan to find target keys.  Any
            # evaluation failure degrades to the whole-table sentinel,
            # which locks conservatively.
            table = self.table(statement.table)
            pk = table.schema.primary_key
            try:
                rows, _scanned, _index, _node = self._executor._scan_with_plan(
                    table, statement.where, params, copy_rows=False
                )
            except (ExecutionError, EvaluationError, IndexError):
                return [(statement.table, ("*",))]
            return [(statement.table, row[pk]) for row in rows]
        return []
