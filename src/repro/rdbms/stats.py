"""Per-table statistics feeding the cost-based planner.

Mirrors SimpleDB's ``StatInfo``: the planner reasons in two currencies,
``blocks_accessed`` (how many disk blocks an access path would touch in
a real engine) and ``records_output`` (how many rows it would produce).
Rather than maintaining counters incrementally, :class:`TableStats` is a
cheap *live view* over a :class:`~repro.rdbms.storage.Table` — every
number it reports is O(1) off the storage layer's own structures:

* ``row_count`` is the heap size;
* distinct-value counts read ``len()`` of the hash-index bucket dict,
  which is exact because the storage layer prunes empty buckets;
* min/max per ordered-indexed column come from the B+-tree endpoints.

Selectivity heuristics are the classic ones: ``1/distinct`` for
equality, min/max interpolation for numeric ranges, and fixed fractions
when nothing better is known.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from .storage import Table

__all__ = [
    "TableStats",
    "BLOCK_SIZE",
    "DEFAULT_RANGE_SELECTIVITY",
    "DEFAULT_PREFIX_SELECTIVITY",
]

BLOCK_SIZE = 4096

# Fallback selectivities when min/max interpolation does not apply.
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_PREFIX_SELECTIVITY = 1.0 / 10.0
# Distinct-count guess for unindexed columns (SimpleDB's rule of thumb).
DEFAULT_DISTINCT_FRACTION = 3


def _ceil_div(numerator: int, denominator: int) -> int:
    return -(-numerator // denominator)


class TableStats:
    """A snapshot-free statistics view over one table."""

    __slots__ = ("table", "row_count", "row_size")

    def __init__(self, table: Table):
        self.table = table
        self.row_count = len(table)
        self.row_size = max(1, table.schema.estimated_row_size())

    # -- blocks ---------------------------------------------------------------
    def blocks_for(self, records: int) -> int:
        """Blocks touched to read ``records`` sequential rows."""
        if records <= 0:
            return 0
        return _ceil_div(records * self.row_size, BLOCK_SIZE)

    def table_blocks(self) -> int:
        """Blocks a full scan of the heap touches."""
        return self.blocks_for(self.row_count)

    # -- records --------------------------------------------------------------
    def distinct_values(self, column: str) -> int:
        """Distinct values of ``column`` (exact for indexed columns)."""
        exact = self.table.distinct_count(column)
        if exact is not None:
            return max(1, exact)
        return max(1, self.row_count // DEFAULT_DISTINCT_FRACTION)

    def equality_records(self, column: str) -> int:
        """Estimated rows matching ``column = constant``."""
        if self.row_count == 0:
            return 0
        return _ceil_div(self.row_count, self.distinct_values(column))

    def range_records(
        self,
        column: str,
        lo: Optional[Any],
        hi: Optional[Any],
    ) -> int:
        """Estimated rows matching a range predicate on ``column``.

        Interpolates against the column's min/max when both the bounds
        and the endpoints are numeric; otherwise assumes the default
        range selectivity.  Bound inclusivity is ignored — it moves the
        estimate by less than a row.
        """
        if self.row_count == 0:
            return 0
        selectivity = self._range_selectivity(column, lo, hi)
        return min(self.row_count, _ceil_div_float(self.row_count * selectivity))

    def prefix_records(self, column: str) -> int:
        """Estimated rows matching ``column LIKE 'prefix%'``."""
        if self.row_count == 0:
            return 0
        return min(
            self.row_count,
            _ceil_div_float(self.row_count * DEFAULT_PREFIX_SELECTIVITY),
        )

    def min_max(self, column: str) -> Optional[Tuple[Any, Any]]:
        return self.table.column_min_max(column)

    def _range_selectivity(
        self, column: str, lo: Optional[Any], hi: Optional[Any]
    ) -> float:
        bounds = self.table.column_min_max(column)
        if bounds is None:
            return DEFAULT_RANGE_SELECTIVITY
        low, high = bounds
        if not _is_numeric(low) or not _is_numeric(high):
            return DEFAULT_RANGE_SELECTIVITY
        if lo is not None and not _is_numeric(lo):
            return DEFAULT_RANGE_SELECTIVITY
        if hi is not None and not _is_numeric(hi):
            return DEFAULT_RANGE_SELECTIVITY
        span = high - low
        if span <= 0:
            # Single-valued column: the predicate either covers that
            # value or it does not.
            value = low
            covered = (lo is None or value >= lo) and (hi is None or value <= hi)
            return 1.0 if covered else 0.0
        effective_lo = low if lo is None else max(low, lo)
        effective_hi = high if hi is None else min(high, hi)
        if effective_hi < effective_lo:
            return 0.0
        return min(1.0, max(0.0, (effective_hi - effective_lo) / span))


def _ceil_div_float(value: float) -> int:
    whole = int(value)
    return whole if value == whole else whole + 1


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
