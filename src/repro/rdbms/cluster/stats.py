"""Cluster-wide counters: one :class:`ClusterStats` per data-tier cluster.

Everything the experiments surface about the replicated/sharded tier —
elections, term changes, quorum round trips, cross-shard transactions,
stale reads and their measured staleness — accumulates here, then flows
into ``collect_resilience`` (availability tables), ``repro.obs`` metrics
and the time-series sampler.  All zero under a policy without a
``data_tier`` block, in which case nothing is ever emitted (the
byte-identity contract for canned policies).
"""

from __future__ import annotations

__all__ = ["ClusterStats"]


class ClusterStats:
    """Counters for one data-tier cluster (canonical, picklable snapshot)."""

    def __init__(self):
        # Raft: elections and leadership.
        self.elections_started = 0
        self.elections_won = 0
        self.term_changes = 0
        self.leader_failovers = 0  # elections won by a different member
        # Raft: log replication.
        self.heartbeats_sent = 0
        self.catchup_entries = 0
        self.apply_errors = 0
        self.quorum_commits = 0
        self.quorum_rtts = 0
        self.replication_timeouts = 0
        # Routing: statement classification.
        self.single_shard_statements = 0
        self.scatter_gather_queries = 0
        self.broadcast_writes = 0
        self.cross_shard_txns = 0
        self.two_phase_commits = 0
        self.router_failovers = 0  # statements retried onto a new leader
        # Reads by mode, and the measured staleness of stale-local reads.
        self.reads_leader = 0
        self.reads_quorum = 0
        self.reads_stale_local = 0
        self.stale_reads_served = 0  # stale-local reads that missed >= 1 commit
        self.staleness_ms = 0.0  # summed age of the oldest missed commit

    def to_dict(self) -> dict:
        """Canonical snapshot: sorted keys, plain types."""
        return {
            "apply_errors": self.apply_errors,
            "broadcast_writes": self.broadcast_writes,
            "catchup_entries": self.catchup_entries,
            "cross_shard_txns": self.cross_shard_txns,
            "elections_started": self.elections_started,
            "elections_won": self.elections_won,
            "heartbeats_sent": self.heartbeats_sent,
            "leader_failovers": self.leader_failovers,
            "quorum_commits": self.quorum_commits,
            "quorum_rtts": self.quorum_rtts,
            "reads_leader": self.reads_leader,
            "reads_quorum": self.reads_quorum,
            "reads_stale_local": self.reads_stale_local,
            "replication_timeouts": self.replication_timeouts,
            "router_failovers": self.router_failovers,
            "scatter_gather_queries": self.scatter_gather_queries,
            "single_shard_statements": self.single_shard_statements,
            "stale_reads_served": self.stale_reads_served,
            "staleness_ms": round(self.staleness_ms, 6),
            "term_changes": self.term_changes,
            "two_phase_commits": self.two_phase_commits,
        }
