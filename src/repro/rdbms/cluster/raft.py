"""Raft-style replication of one shard's write log over simnet links.

Each shard is a :class:`RaftGroup`: ``replication_factor`` members, one
per database *seat* (the main site plus edge servers), each owning a full
:class:`~repro.rdbms.engine.Database` copy of the shard.  The group
replicates committed write batches through a leader:

* the leader appends a :class:`LogEntry` and fans the bytes out to the
  followers in parallel; the client's commit resumes when a **quorum**
  (majority) has acknowledged — or fails with ``NodeUnavailable`` after
  the replication deadline, exactly like any other unavailable resource;
* a periodic heartbeat/election driver keeps the group live: followers
  that miss heartbeats past a randomized-but-seeded timeout campaign for
  the leadership (terms, votes, log-completeness check), and heartbeats
  carry *catch-up* — entries a crashed or partitioned follower missed —
  plus the commit index that lets followers apply entries to their copy.

Determinism: election timeouts are the only randomness, drawn from one
named :class:`~repro.simnet.rng.Streams` stream per member
(``cluster.election.<group>.<seat>``); everything else is fixed-order
iteration over the member list.  Every spawned child catches network
errors internally, so a mid-flight partition never crashes the kernel.

The log is a single shared list per group (this is a simulation — the
bytes moved and the time taken are modeled, the copies are not), with
per-member ``replicated_index``/``applied_index`` cursors.  Followers
execute committed batches against their own database copy when the
commit index reaches them; the leader's copy already holds the writes
(the client executed them there), so the leader only advances cursors.
"""

from __future__ import annotations

import random
from typing import Any, Generator, List, Optional, Tuple

from ..engine import Database
from ..server import DatabaseServer
from ...simnet.kernel import Environment, Event
from ...simnet.network import Network, NetworkError, Node
from ...simnet.router import PacketLoss
from ...simnet.transport import NodeUnavailable
from .config import DataTierPolicy
from .stats import ClusterStats

__all__ = ["LogEntry", "RaftMember", "RaftGroup"]

# Wire sizes (bytes) for the consensus control plane.
HEARTBEAT_SIZE = 48
ACK_SIZE = 48
VOTE_REQUEST_SIZE = 64
VOTE_RESPONSE_SIZE = 48
ENTRY_BASE_SIZE = 64
PER_PARAM_SIZE = 8

# A quorum commit that takes longer than this counts as unavailable.
REPLICATION_TIMEOUT_MS = 4_000.0


def batch_wire_size(batch: List[Tuple[Any, Tuple[Any, ...]]]) -> int:
    """Approximate serialized size of one write batch."""
    size = ENTRY_BASE_SIZE
    for sql, params in batch:
        size += (len(sql) if isinstance(sql, str) else 80) + PER_PARAM_SIZE * len(params)
    return size


class LogEntry:
    """One committed-write batch in a group's replicated log."""

    __slots__ = ("term", "batch", "size", "commit_time")

    def __init__(self, term: int, batch: List[Tuple[str, Tuple[Any, ...]]]):
        self.term = term
        self.batch = batch
        self.size = batch_wire_size(batch)
        self.commit_time: Optional[float] = None  # set at quorum


class RaftMember:
    """One replica: a database copy + server seat, with raft state."""

    def __init__(
        self,
        group: "RaftGroup",
        seat: str,
        node: Node,
        database: Database,
        server: DatabaseServer,
        rng: random.Random,
    ):
        self.group = group
        self.seat = seat
        self.node = node
        self.database = database
        self.server = server
        self.rng = rng
        self.alive = True
        # Consensus state (survives crashes — the log is durable).
        self.term = 1
        self.voted_for: Optional[str] = None
        self.role = "follower"  # follower | candidate | leader
        self.replicated_index = 0  # entries present in this member's log
        self.applied_index = 0  # entries executed on this member's database
        self.applied_time = 0.0  # sim time the last entry was applied
        self.applying = False  # an _apply pass is running (no concurrent ones)
        self.last_heartbeat = 0.0
        self.timeout_ms = self._draw_timeout()

    def _draw_timeout(self) -> float:
        lo, hi = self.group.tier.election_timeout_ms
        return self.rng.uniform(lo, hi)

    @property
    def name(self) -> str:
        return f"{self.group.name}/{self.seat}"

    def crash(self) -> None:
        """Fail-stop: stop participating; durable state is kept."""
        self.alive = False
        if self.role == "leader":
            self.role = "follower"

    def restart(self, now: float) -> None:
        """Rejoin as a follower with a fresh election timer."""
        self.alive = True
        self.role = "follower"
        self.last_heartbeat = now
        self.timeout_ms = self._draw_timeout()


class RaftGroup:
    """One shard's replica group: shared log, leader, election machinery."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        tier: DataTierPolicy,
        name: str,
        stats: ClusterStats,
    ):
        self.env = env
        self.network = network
        self.tier = tier
        self.name = name
        self.stats = stats
        self.members: List[RaftMember] = []
        self.log: List[LogEntry] = []
        self.commit_index = 0
        self.leader: Optional[RaftMember] = None
        # In-flight heartbeat guard: when the WAN round trip exceeds the
        # heartbeat tick, skip a follower instead of stacking transfers.
        self._inflight: set = set()
        self._campaigning: set = set()

    @property
    def quorum(self) -> int:
        return len(self.members) // 2 + 1

    def add_member(self, member: RaftMember) -> None:
        self.members.append(member)
        if self.leader is None:
            # The anchor member (main-site seat) starts as term-1 leader;
            # no startup election, so fault-free runs elect nothing.
            member.role = "leader"
            self.leader = member

    def live_leader(self) -> Optional[RaftMember]:
        leader = self.leader
        if leader is not None and leader.alive and leader.role == "leader":
            return leader
        return None

    def member_on(self, node_name: str) -> Optional[RaftMember]:
        for member in self.members:
            if member.node.name == node_name:
                return member
        return None

    # -- quorum commit (client write path) ------------------------------------
    def commit_batch(
        self, leader: RaftMember, batch: List[Tuple[str, Tuple[Any, ...]]]
    ) -> Generator[Event, Any, None]:
        """Append ``batch`` to the log and wait for a quorum of replicas.

        Called from the router after the client's transaction committed on
        the leader's database.  Raises ``NodeUnavailable`` when a majority
        cannot acknowledge within the replication deadline.
        """
        entry = LogEntry(leader.term, batch)
        self.log.append(entry)
        entry_index = len(self.log)
        leader.replicated_index = entry_index
        # The client already executed the batch on the leader's database
        # (connection.execute ran before this call), so the leader's copy
        # genuinely holds every entry appended during its reign.
        if leader.applied_index < entry_index:
            leader.applied_index = entry_index
            leader.applied_time = self.env.now
        needed = self.quorum - 1  # leader's own copy counts
        if needed <= 0:
            self._mark_committed(entry, entry_index)
            return
        done = self.env.event()
        acks = [0]
        for member in self.members:
            if member is leader:
                continue
            self.env.process(
                self._replicate_one(
                    leader, member, entry, entry_index, acks, needed, done
                ),
                name=f"raft-replicate:{self.name}:{member.seat}",
            )
        outcome = yield self.env.any_of(
            [done, self.env.timeout(REPLICATION_TIMEOUT_MS)]
        )
        if 0 not in outcome:
            self.stats.replication_timeouts += 1
            raise NodeUnavailable(
                f"raft group {self.name}: no quorum within "
                f"{REPLICATION_TIMEOUT_MS:.0f} ms (term {leader.term})"
            )
        self._mark_committed(entry, entry_index)

    def _entry_live(self, entry: LogEntry, entry_index: int) -> bool:
        """Whether ``entry`` still sits at ``entry_index`` in the log.

        A leadership change truncates the uncommitted tail; in-flight
        replication for a truncated entry must not advance cursors or
        commit it.
        """
        return entry_index <= len(self.log) and self.log[entry_index - 1] is entry

    def _mark_committed(self, entry: LogEntry, entry_index: int) -> None:
        if not self._entry_live(entry, entry_index):
            raise NodeUnavailable(
                f"raft group {self.name}: leadership changed before the "
                f"entry could commit"
            )
        now = self.env.now
        for pending in self.log[self.commit_index:entry_index]:
            if pending.commit_time is None:
                pending.commit_time = now
        if entry_index > self.commit_index:
            self.commit_index = entry_index
        self.stats.quorum_commits += 1

    def _replicate_one(
        self,
        leader: RaftMember,
        member: RaftMember,
        entry: LogEntry,
        entry_index: int,
        acks: List[int],
        needed: int,
        done: Event,
    ) -> Generator[Event, Any, None]:
        """Ship one entry to one follower; count its ack toward the quorum."""
        try:
            if not member.alive:
                return
            yield from self.network.transfer(
                leader.node.name, member.node.name, entry.size, "raft-append"
            )
            if not member.alive or not self._entry_live(entry, entry_index):
                return
            if member.replicated_index == entry_index - 1:
                member.replicated_index = entry_index
            elif member.replicated_index < entry_index - 1:
                # Missing prefix: no ack — heartbeat catch-up will fill it.
                return
            yield from self.network.transfer(
                member.node.name, leader.node.name, ACK_SIZE, "raft-ack"
            )
            if not leader.alive or not self._entry_live(entry, entry_index):
                return
            self.stats.quorum_rtts += 1
            acks[0] += 1
            if acks[0] == needed:
                done.succeed()
        except (NetworkError, PacketLoss):
            return

    # -- quorum reads ----------------------------------------------------------
    def confirm_quorum(
        self, leader: RaftMember
    ) -> Generator[Event, Any, None]:
        """Read-index confirmation: the leader proves it still leads.

        A parallel round trip to the followers; the read is linearizable
        once a majority (including the leader) has answered.  Fails with
        ``NodeUnavailable`` when the quorum cannot be reached in time.
        """
        needed = self.quorum - 1
        if needed <= 0:
            return
        done = self.env.event()
        acks = [0]
        for member in self.members:
            if member is leader:
                continue
            self.env.process(
                self._confirm_one(leader, member, acks, needed, done),
                name=f"raft-readindex:{self.name}:{member.seat}",
            )
        outcome = yield self.env.any_of(
            [done, self.env.timeout(REPLICATION_TIMEOUT_MS)]
        )
        if 0 not in outcome:
            self.stats.replication_timeouts += 1
            raise NodeUnavailable(
                f"raft group {self.name}: read-index quorum not reached "
                f"(term {leader.term})"
            )

    def _confirm_one(
        self,
        leader: RaftMember,
        member: RaftMember,
        acks: List[int],
        needed: int,
        done: Event,
    ) -> Generator[Event, Any, None]:
        try:
            if not member.alive:
                return
            yield from self.network.transfer(
                leader.node.name, member.node.name, ACK_SIZE, "raft-readindex"
            )
            if not member.alive or member.term > leader.term:
                return
            yield from self.network.transfer(
                member.node.name, leader.node.name, ACK_SIZE, "raft-ack"
            )
            if not leader.alive:
                return
            self.stats.quorum_rtts += 1
            acks[0] += 1
            if acks[0] == needed:
                done.succeed()
        except (NetworkError, PacketLoss):
            return

    # -- heartbeat / catch-up --------------------------------------------------
    def tick(self) -> None:
        """One driver tick: leader heartbeats + follower election timers."""
        now = self.env.now
        leader = self.live_leader()
        for member in self.members:
            if not member.alive:
                continue
            if member is leader:
                for follower in self.members:
                    if follower is leader:
                        continue
                    key = (leader.seat, follower.seat)
                    if key in self._inflight:
                        continue
                    self._inflight.add(key)
                    self.env.process(
                        self._heartbeat_one(leader, follower, key),
                        name=f"raft-heartbeat:{self.name}:{follower.seat}",
                    )
            elif (
                member.role != "leader"
                and member not in self._campaigning
                and now - member.last_heartbeat >= member.timeout_ms
            ):
                self._campaigning.add(member)
                self.env.process(
                    self._campaign(member),
                    name=f"raft-campaign:{self.name}:{member.seat}",
                )

    def _heartbeat_one(
        self, leader: RaftMember, follower: RaftMember, key: tuple
    ) -> Generator[Event, Any, None]:
        try:
            self.stats.heartbeats_sent += 1
            yield from self.network.transfer(
                leader.node.name, follower.node.name, HEARTBEAT_SIZE, "raft-heartbeat"
            )
            if not follower.alive or not leader.alive:
                return
            if follower.term > leader.term:
                # A newer term exists: the stale leader steps down.
                leader.role = "follower"
                leader.term = follower.term
                leader.voted_for = None
                return
            follower.term = leader.term
            if follower.role == "candidate":
                follower.role = "follower"
            follower.last_heartbeat = self.env.now
            missing = leader.replicated_index - follower.replicated_index
            if missing > 0:
                entries = self.log[
                    follower.replicated_index:leader.replicated_index
                ]
                size = sum(entry.size for entry in entries)
                yield from self.network.transfer(
                    leader.node.name, follower.node.name, size, "raft-catchup"
                )
                if not follower.alive:
                    return
                follower.replicated_index = leader.replicated_index
                self.stats.catchup_entries += len(entries)
            target = min(self.commit_index, follower.replicated_index)
            if target > follower.applied_index and not follower.applying:
                # Apply in its own process: execution cost must not delay
                # the heartbeat ack, or the effective heartbeat interval
                # stretches past election timeouts under load.
                self.env.process(
                    self._apply(follower, target),
                    name=f"raft-apply:{self.name}:{follower.seat}",
                )
            yield from self.network.transfer(
                follower.node.name, leader.node.name, ACK_SIZE, "raft-ack"
            )
        except (NetworkError, PacketLoss):
            return
        finally:
            self._inflight.discard(key)

    def _apply(
        self, member: RaftMember, target: int
    ) -> Generator[Event, Any, None]:
        """Execute committed entries on a member's database copy.

        Guarded per member: heartbeats from two leaders during a
        leadership change must not apply the same entry twice.  The
        cursor advances entry by entry, so an interrupted pass leaves a
        consistent prefix for the next one to continue from.
        """
        if member.applying:
            return
        member.applying = True
        try:
            while member.alive and member.applied_index < min(target, len(self.log)):
                entry = self.log[member.applied_index]
                for sql, params in entry.batch:
                    try:
                        transaction = member.database.begin()
                        result = member.database.execute(
                            sql, params, transaction=transaction
                        )
                        transaction.commit()
                    except Exception:
                        # A divergent copy is better than a crashed kernel;
                        # surfaced through the counter, never silently.
                        self.stats.apply_errors += 1
                        continue
                    yield from member.node.compute(
                        member.server.cost_model.execution_time(result, is_write=True)
                    )
                member.applied_index += 1
                member.applied_time = self.env.now
        finally:
            member.applying = False

    # -- elections -------------------------------------------------------------
    def _campaign(self, member: RaftMember) -> Generator[Event, Any, None]:
        """One election attempt: request votes from every peer in turn."""
        try:
            self.stats.elections_started += 1
            member.term += 1
            self.stats.term_changes += 1
            member.role = "candidate"
            member.voted_for = member.seat
            votes = 1
            for peer in self.members:
                if peer is member:
                    continue
                if not member.alive or member.role != "candidate":
                    return
                try:
                    yield from self.network.transfer(
                        member.node.name, peer.node.name,
                        VOTE_REQUEST_SIZE, "raft-vote",
                    )
                    if not peer.alive:
                        continue
                    if peer.term > member.term:
                        member.term = peer.term
                        member.role = "follower"
                        member.voted_for = None
                        return
                    # Log-completeness rule: never grant a vote to a
                    # candidate whose log is behind this peer's.
                    grant = member.replicated_index >= peer.replicated_index
                    if grant:
                        if peer.term < member.term:
                            peer.term = member.term
                            peer.voted_for = member.seat
                            if peer.role != "follower":
                                peer.role = "follower"
                        elif peer.voted_for in (None, member.seat):
                            peer.voted_for = member.seat
                        else:
                            grant = False
                    if grant:
                        peer.last_heartbeat = self.env.now  # granting resets the timer
                        votes += 1
                    yield from self.network.transfer(
                        peer.node.name, member.node.name,
                        VOTE_RESPONSE_SIZE, "raft-vote-ack",
                    )
                    if not member.alive:
                        return
                except (NetworkError, PacketLoss):
                    continue
                if votes >= self.quorum:
                    break
            if member.alive and member.role == "candidate" and votes >= self.quorum:
                # Accession: drop the uncommitted tail (its clients already
                # got NodeUnavailable), then apply any committed backlog to
                # this member's copy BEFORE serving — a leader's database
                # must hold every committed entry, or reads on it would
                # silently miss acknowledged writes.  Vote log-completeness
                # guarantees replicated_index >= commit_index here.
                if self.commit_index < len(self.log):
                    del self.log[self.commit_index:]
                    for other in self.members:
                        if other.replicated_index > len(self.log):
                            other.replicated_index = len(self.log)
                target = min(self.commit_index, member.replicated_index)
                if member.applied_index < target:
                    yield from self._apply(member, target)
                if member.alive and member.role == "candidate":
                    self._become_leader(member)
        finally:
            member.timeout_ms = member._draw_timeout()
            member.last_heartbeat = self.env.now
            self._campaigning.discard(member)

    def _become_leader(self, member: RaftMember) -> None:
        member.role = "leader"
        self.stats.elections_won += 1
        previous = self.leader
        if previous is not None and previous is not member:
            previous.role = "follower"
            self.stats.leader_failovers += 1
        self.leader = member
