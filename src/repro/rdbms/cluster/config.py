"""The ``data_tier`` policy block: sharding + replication as declared data.

The paper's placement policies stop at the application tier — the
database stays a single main-site process.  :class:`DataTierPolicy`
extends a :class:`~repro.core.policy.PlacementPolicy` with a declarative
description of how the *data tier itself* is distributed:

* **sharding** — which entity tables are hash/range partitioned, by
  which column, across how many shards;
* **replication** — how many copies each shard keeps (a raft group of
  that size), and how reads trade latency against staleness
  (``read_mode``: ``leader`` / ``quorum`` / ``stale-local``).

Like the rest of the policy layer it is frozen, picklable and
JSON-round-trippable, and it is *absent by default*: a policy without a
``data_tier`` block runs today's single-instance database, byte-identical
to every earlier release.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["DataTierError", "DataTierPolicy", "READ_MODES", "SHARD_STRATEGIES"]


class DataTierError(Exception):
    """Raised when a data-tier block is malformed."""


READ_MODES = ("leader", "quorum", "stale-local")
SHARD_STRATEGIES = ("hash", "range")


@dataclass(frozen=True)
class DataTierPolicy:
    """Declarative sharding + replication for the database tier.

    ``shard_tables`` maps partitioned tables to their shard-key column
    (stored as a sorted tuple of pairs so the dataclass stays hashable
    and canonical).  Tables named in ``global_tables`` — and any table
    not mentioned at all — are copied in full to every shard, so joins
    against reference data stay single-shard.
    """

    shard_count: int = 1
    shard_tables: Tuple[Tuple[str, str], ...] = ()
    global_tables: Tuple[str, ...] = ()
    strategy: str = "hash"
    # Ascending upper bounds for the range strategy (len == shard_count-1).
    range_splits: Tuple[Any, ...] = ()
    replication_factor: int = 1
    read_mode: str = "leader"
    heartbeat_ms: float = 75.0
    # Must comfortably exceed the heartbeat round trip *under load* (WAN
    # one-way latency is 100 ms and heartbeats queue behind page traffic),
    # or followers election-storm in steady state.
    election_timeout_ms: Tuple[float, float] = (1000.0, 2000.0)

    # -- derived -------------------------------------------------------------
    @property
    def quorum(self) -> int:
        """Majority of a replica group (2 of 3, 3 of 5, ...)."""
        return self.replication_factor // 2 + 1

    @property
    def replicated(self) -> bool:
        return self.replication_factor > 1

    @property
    def sharded(self) -> bool:
        return self.shard_count > 1

    def shard_key(self, table: str) -> Optional[str]:
        """The shard-key column of ``table`` (None when not sharded)."""
        for name, key in self.shard_tables:
            if name == table:
                return key
        return None

    # -- validation ----------------------------------------------------------
    def validation_errors(self, seat_count: Optional[int] = None) -> List[str]:
        """Static contradictions in the block itself.

        ``seat_count`` — the number of database seats the topology offers
        (main site plus one per edge) — bounds the replication factor
        when known.
        """
        errors: List[str] = []
        if self.shard_count < 1:
            errors.append(f"shard count must be >= 1, got {self.shard_count}")
        if self.replication_factor < 1:
            errors.append(
                f"replication factor must be >= 1, got {self.replication_factor}"
            )
        if self.read_mode not in READ_MODES:
            errors.append(
                f"read_mode must be one of {list(READ_MODES)}, got {self.read_mode!r}"
            )
        if self.strategy not in SHARD_STRATEGIES:
            errors.append(
                f"strategy must be one of {list(SHARD_STRATEGIES)}, "
                f"got {self.strategy!r}"
            )
        if self.strategy == "range":
            expected = max(0, self.shard_count - 1)
            if len(self.range_splits) != expected:
                errors.append(
                    f"range strategy with {self.shard_count} shards needs "
                    f"{expected} split point(s), got {len(self.range_splits)}"
                )
        if self.shard_count > 1 and not self.shard_tables:
            errors.append("shard count > 1 but no tables declare a shard key")
        overlap = {name for name, _ in self.shard_tables} & set(self.global_tables)
        if overlap:
            errors.append(
                f"tables cannot be both sharded and global: {sorted(overlap)}"
            )
        if self.heartbeat_ms <= 0:
            errors.append(f"heartbeat_ms must be positive, got {self.heartbeat_ms}")
        lo, hi = self.election_timeout_ms
        if not (0 < lo <= hi):
            errors.append(
                f"election_timeout_ms must be an increasing positive pair, "
                f"got {self.election_timeout_ms}"
            )
        if lo <= self.heartbeat_ms:
            errors.append(
                "election timeout must exceed the heartbeat interval "
                f"({lo} <= {self.heartbeat_ms})"
            )
        if seat_count is not None and self.replication_factor > seat_count:
            errors.append(
                f"replication factor {self.replication_factor} exceeds the "
                f"{seat_count} database seat(s) this topology offers "
                f"(main site + one per edge)"
            )
        return errors

    def validate(self, seat_count: Optional[int] = None) -> "DataTierPolicy":
        errors = self.validation_errors(seat_count)
        if errors:
            raise DataTierError(
                "invalid data_tier block:\n  " + "\n  ".join(errors)
            )
        return self

    # -- serialization -------------------------------------------------------
    def to_json(self) -> dict:
        shards: dict = {"count": int(self.shard_count)}
        if self.shard_tables:
            shards["tables"] = {name: key for name, key in self.shard_tables}
        if self.global_tables:
            shards["global_tables"] = list(self.global_tables)
        if self.strategy != "hash":
            shards["strategy"] = self.strategy
        if self.range_splits:
            shards["range_splits"] = list(self.range_splits)
        replication: dict = {
            "factor": int(self.replication_factor),
            "read_mode": self.read_mode,
        }
        if self.heartbeat_ms != 75.0:
            replication["heartbeat_ms"] = self.heartbeat_ms
        if self.election_timeout_ms != (1000.0, 2000.0):
            replication["election_timeout_ms"] = list(self.election_timeout_ms)
        return {"shards": shards, "replication": replication}

    @classmethod
    def from_json(cls, payload: dict) -> "DataTierPolicy":
        if not isinstance(payload, dict):
            raise DataTierError(f"data_tier must be an object, got {payload!r}")
        unknown = set(payload) - {"shards", "replication"}
        if unknown:
            raise DataTierError(f"unknown data_tier keys: {sorted(unknown)}")
        shards = payload.get("shards", {})
        if not isinstance(shards, dict):
            raise DataTierError(f"data_tier.shards must be an object, got {shards!r}")
        unknown = set(shards) - {
            "count", "tables", "global_tables", "strategy", "range_splits"
        }
        if unknown:
            raise DataTierError(f"unknown data_tier.shards keys: {sorted(unknown)}")
        tables_raw = shards.get("tables", {})
        if not isinstance(tables_raw, dict):
            raise DataTierError(
                "data_tier.shards.tables must map table names to shard-key columns"
            )
        replication = payload.get("replication", {})
        if not isinstance(replication, dict):
            raise DataTierError(
                f"data_tier.replication must be an object, got {replication!r}"
            )
        unknown = set(replication) - {
            "factor", "read_mode", "heartbeat_ms", "election_timeout_ms"
        }
        if unknown:
            raise DataTierError(
                f"unknown data_tier.replication keys: {sorted(unknown)}"
            )
        timeout_raw = replication.get("election_timeout_ms", (1000.0, 2000.0))
        try:
            lo, hi = timeout_raw
        except (TypeError, ValueError):
            raise DataTierError(
                f"election_timeout_ms must be a [lo, hi] pair, got {timeout_raw!r}"
            ) from None
        tier = cls(
            shard_count=int(shards.get("count", 1)),
            shard_tables=tuple(
                sorted((str(name), str(key)) for name, key in tables_raw.items())
            ),
            global_tables=tuple(shards.get("global_tables", ())),
            strategy=str(shards.get("strategy", "hash")),
            range_splits=tuple(shards.get("range_splits", ())),
            replication_factor=int(replication.get("factor", 1)),
            read_mode=str(replication.get("read_mode", "leader")),
            heartbeat_ms=float(replication.get("heartbeat_ms", 75.0)),
            election_timeout_ms=(float(lo), float(hi)),
        )
        return tier.validate()


def _as_dict(shard_tables: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    """Helper for tests: canonical tuple form of a table->key mapping."""
    return tuple(sorted((str(k), str(v)) for k, v in shard_tables.items()))
