"""`repro.rdbms.cluster` — a sharded, raft-replicated data tier.

The paper's testbed keeps the database a single main-site process; this
package distributes the data tier itself, as declared by the
``data_tier`` block of a :class:`~repro.core.policy.PlacementPolicy`:

* :mod:`.config` — the declarative policy block (shards, replication);
* :mod:`.sharding` — statement routing + scatter-gather merging;
* :mod:`.raft` — per-shard replica groups with leader election, quorum
  commit and crash/partition catch-up over the simulated network;
* :mod:`.router` — the JDBC-compatible client surface the middleware
  routes through;
* :mod:`.stats` — the cluster counters exported to metrics/availability.

:func:`build_cluster` assembles all of it against a deployed testbed:
database *seats* are the main site plus one per edge server, shard
``g``'s replica group occupies ``replication_factor`` consecutive seats
starting at seat ``g % len(seats)`` (spreading leaders across sites),
and each member gets its own :class:`~repro.rdbms.engine.Database` copy
seeded with its partition of the application data (global tables in
full).  Everything is built only when a policy declares a ``data_tier``
— without one, no cluster object, RNG stream or counter ever exists,
which is the byte-identity contract for the canned policies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..engine import Database
from ..jdbc import JdbcConfig
from ..server import DatabaseServer, DbCostModel
from ...simnet.kernel import Environment
from ...simnet.network import Network, Node
from ...simnet.rng import Streams
from .config import DataTierError, DataTierPolicy, READ_MODES, SHARD_STRATEGIES
from .raft import RaftGroup, RaftMember
from .router import ClusterConnection, ClusterDataSource
from .sharding import ClusterRoutingError, Partitioner, merge_results, route_statement
from .stats import ClusterStats

__all__ = [
    "ClusterConnection",
    "ClusterDataSource",
    "ClusterRoutingError",
    "ClusterStats",
    "DataTierCluster",
    "DataTierError",
    "DataTierPolicy",
    "Partitioner",
    "RaftGroup",
    "RaftMember",
    "READ_MODES",
    "SHARD_STRATEGIES",
    "build_cluster",
    "merge_results",
    "route_statement",
]

# The main-site database seat (always first; anchors shard 0's leader).
MAIN_SEAT = "db"


class _SeatTarget:
    """Adapter letting the fault injector crash a database *seat*.

    Crashing a seat fail-stops every raft member hosted there (the
    leader of shard 0 lives on the main seat, so ``db-leader-crash``
    forces an election); restart rejoins them as followers and the
    heartbeat catch-up path replays what they missed.
    """

    def __init__(self, cluster: "DataTierCluster", seat: str, node: Node):
        self._cluster = cluster
        self.name = f"db-seat:{seat}"
        self.seat = seat
        self.node = node

    def crash(self) -> None:
        for member in self._cluster.seat_members(self.seat):
            member.crash()

    def restart(self) -> None:
        now = self._cluster.env.now
        for member in self._cluster.seat_members(self.seat):
            member.restart(now)


class DataTierCluster:
    """The assembled data tier: shards × replicas, router, counters."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        tier: DataTierPolicy,
        seats: List[Tuple[str, Node]],
    ):
        self.env = env
        self.network = network
        self.tier = tier
        self.seats = seats
        self.partitioner = Partitioner(tier)
        self.stats = ClusterStats()
        self.groups: List[RaftGroup] = []
        self._datasources: Dict[str, ClusterDataSource] = {}
        self._driver_started = False

    # -- client surface --------------------------------------------------------
    def datasource_for(
        self, client_node: str, config: Optional[JdbcConfig] = None
    ) -> ClusterDataSource:
        source = self._datasources.get(client_node)
        if source is None:
            source = ClusterDataSource(self, client_node, config)
            self._datasources[client_node] = source
        return source

    # -- fault surface ---------------------------------------------------------
    def seat_members(self, seat: str) -> List[RaftMember]:
        return [
            member
            for group in self.groups
            for member in group.members
            if member.seat == seat
        ]

    def seat_target(self, seat: str) -> Optional[_SeatTarget]:
        """An injector-compatible crash target for one seat (or None)."""
        for name, node in self.seats:
            if name == seat and self.seat_members(seat):
                return _SeatTarget(self, seat, node)
        return None

    # -- consensus driver ------------------------------------------------------
    def start(self, horizon_ms: float) -> None:
        """Launch the heartbeat/election driver (replicated tiers only).

        Bounded by ``horizon_ms`` — the workload duration — because the
        load generators run the kernel to exhaustion; an unbounded
        driver would never let the simulation drain.
        """
        if not self.tier.replicated or self._driver_started:
            return
        self._driver_started = True
        self.env.process(self._drive(horizon_ms), name="raft-driver")

    def _drive(self, horizon_ms: float):
        tick = self.tier.heartbeat_ms
        while self.env.now + tick <= horizon_ms:
            yield self.env.sleep(tick)
            for group in self.groups:
                group.tick()

    def leader_seats(self) -> Dict[str, str]:
        """group name -> seat of its current leader (diagnostics)."""
        return {
            group.name: group.leader.seat if group.leader is not None else "?"
            for group in self.groups
        }


def build_cluster(
    env: Environment,
    network: Network,
    tier: DataTierPolicy,
    seats: List[Tuple[str, Node]],
    database: Database,
    streams: Streams,
    cost_model: Optional[DbCostModel] = None,
) -> DataTierCluster:
    """Assemble groups, members and seeded database copies.

    ``seats`` is the ordered list of (seat name, node) pairs offering
    database capacity — the main site first, then the edge servers.
    ``database`` is the fully seeded single-instance database whose rows
    are partitioned across the copies.
    """
    tier.validate(seat_count=len(seats))
    cluster = DataTierCluster(env, network, tier, seats)
    partitioner = cluster.partitioner
    cost_model = cost_model or DbCostModel()
    for index in range(tier.shard_count):
        group = RaftGroup(env, network, tier, f"shard{index}", cluster.stats)
        for offset in range(tier.replication_factor):
            seat, node = seats[(index + offset) % len(seats)]
            copy = Database(f"{database.name}-shard{index}@{seat}")
            _seed_copy(copy, database, tier, partitioner, index)
            server = DatabaseServer(env, node, copy, cost_model=cost_model)
            rng = streams.get(f"cluster.election.shard{index}.{seat}")
            group.add_member(RaftMember(group, seat, node, copy, server, rng))
        cluster.groups.append(group)
    return cluster


def _seed_copy(
    copy: Database,
    source: Database,
    tier: DataTierPolicy,
    partitioner: Partitioner,
    shard: int,
) -> None:
    """Load one member's slice: its shard partition + full global tables."""
    for name in source.tables:
        table = source.tables[name]
        target = copy.create_table(table.schema)
        key = tier.shard_key(name)
        if key is None:
            target.bulk_load(table.scan())
        else:
            target.bulk_load(
                row
                for row in table.scan()
                if partitioner.shard_of(row[key]) == shard
            )
