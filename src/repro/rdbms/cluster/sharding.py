"""Shard routing: pin statements to shards, merge scatter-gather results.

The router's fast path is *pinning*: a statement whose WHERE clause (or
INSERT values) binds the shard-key column of its sharded table with an
equality executes on exactly one shard.  Everything else degrades
honestly — SELECTs scatter to every shard and merge (including
cross-shard aggregate folding for COUNT/SUM/MIN/MAX), writes broadcast
and pay two-phase commit when a transaction touches several shards.

Tables not partitioned by the policy are *global*: fully copied to every
shard, so reference-data joins stay single-shard.  Reads against only
global tables route to shard 0 (every shard has the same copy); writes
to them broadcast.
"""

from __future__ import annotations

import zlib
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, Union

from ..compiler import EMPTY_ROW, compiled
from ..executor import ResultSet
from ..expressions import And, Comparison, Expression
from ..sql import (
    Aggregate,
    Delete,
    Insert,
    Select,
    Statement,
    Update,
    parse_cached,
)
from .config import DataTierPolicy

__all__ = ["ClusterRoutingError", "Partitioner", "Route", "route_statement", "merge_results"]


class ClusterRoutingError(Exception):
    """Raised for statements the sharded tier cannot answer correctly."""


class Partitioner:
    """Maps shard-key values to shard indexes (hash or range)."""

    def __init__(self, tier: DataTierPolicy):
        self.tier = tier
        self.count = tier.shard_count

    def shard_of(self, value: Any) -> int:
        if self.count == 1:
            return 0
        if self.tier.strategy == "range":
            # range_splits are ascending upper bounds; values above the
            # last split land in the final shard.
            return bisect_left(list(self.tier.range_splits), value)
        # Hash partitioning: crc32 of the canonical string form, which is
        # stable across processes and Python versions (unlike hash()).
        return zlib.crc32(str(value).encode("utf-8")) % self.count


@dataclass
class Route:
    """Where one statement executes."""

    kind: str  # "single" | "scatter" | "broadcast"
    shard: Optional[int]  # set for kind == "single"
    is_write: bool
    sharded_tables: Tuple[str, ...]


def _conjuncts(expression: Optional[Expression]) -> List[Expression]:
    """Flatten nested ANDs into a list of conjuncts (empty for None)."""
    if expression is None:
        return []
    if isinstance(expression, And):
        flat: List[Expression] = []
        for part in expression.parts:
            flat.extend(_conjuncts(part))
        return flat
    return [expression]


def _bare(column: str) -> str:
    """Strip any table/alias qualifier from a column reference."""
    return column.rsplit(".", 1)[-1]


def _bound_shard(
    where: Optional[Expression],
    shard_keys: Tuple[str, ...],
    params: Tuple[Any, ...],
    partitioner: Partitioner,
) -> Optional[int]:
    """The shard pinned by an equality on any listed shard-key column."""
    for conjunct in _conjuncts(where):
        if not isinstance(conjunct, Comparison):
            continue
        binding = conjunct.equality_binding()
        if binding is None:
            continue
        column, expr = binding
        if _bare(column) not in shard_keys:
            continue
        try:
            value = compiled(expr)(EMPTY_ROW, params)
        except Exception:
            continue
        return partitioner.shard_of(value)
    return None


def route_statement(
    statement: Union[str, Statement],
    params: Tuple[Any, ...],
    tier: DataTierPolicy,
    partitioner: Partitioner,
) -> Route:
    """Classify one statement against the sharding policy."""
    if isinstance(statement, str):
        statement = parse_cached(statement)

    if isinstance(statement, Select):
        tables = statement.tables()
        is_write = False
    else:
        tables = [statement.table]
        is_write = True

    sharded = tuple(t for t in tables if tier.shard_key(t) is not None)
    if not sharded:
        # Global/reference tables only: every shard holds the full copy.
        if is_write:
            return Route("broadcast", None, True, ())
        return Route("single", 0, False, ())

    shard_keys = tuple(tier.shard_key(t) for t in sharded)

    if isinstance(statement, Insert):
        key_column = tier.shard_key(statement.table)
        for column, expr in zip(statement.columns, statement.values):
            if _bare(column) == key_column:
                value = compiled(expr)(EMPTY_ROW, params)
                return Route("single", partitioner.shard_of(value), True, sharded)
        raise ClusterRoutingError(
            f"INSERT into sharded table {statement.table!r} does not set its "
            f"shard key {key_column!r}"
        )

    where = statement.where if isinstance(statement, (Select, Update, Delete)) else None
    shard = _bound_shard(where, shard_keys, params, partitioner)
    if shard is not None:
        return Route("single", shard, is_write, sharded)
    if is_write:
        return Route("broadcast", None, True, sharded)
    return Route("scatter", None, False, sharded)


# -- scatter-gather merging ---------------------------------------------------

_MERGEABLE = ("COUNT", "SUM", "MIN", "MAX")


def _merge_aggregates(statement: Select, results: List[ResultSet]) -> ResultSet:
    if statement.group_by is not None:
        raise ClusterRoutingError(
            "cross-shard GROUP BY is not supported; pin the query to one "
            "shard with an equality on the shard key"
        )
    merged_row = {}
    columns: List[str] = []
    for item in statement.items:
        if not isinstance(item, Aggregate):
            raise ClusterRoutingError(
                "cross-shard aggregates cannot mix plain columns without GROUP BY"
            )
        if item.function not in _MERGEABLE:
            raise ClusterRoutingError(
                f"cross-shard {item.function} is not mergeable; pin the query "
                f"to one shard with an equality on the shard key"
            )
        name = item.output_name
        columns.append(name)
        values = [r.rows[0][name] for r in results if r.rows]
        values = [v for v in values if v is not None]
        if item.function in ("COUNT", "SUM"):
            merged_row[name] = sum(values) if (values or item.function == "COUNT") else None
            if item.function == "COUNT" and not values:
                merged_row[name] = 0
        elif item.function == "MIN":
            merged_row[name] = min(values) if values else None
        else:  # MAX
            merged_row[name] = max(values) if values else None
    return ResultSet(
        columns=columns,
        rows=[merged_row],
        rows_scanned=sum(r.rows_scanned for r in results),
    )


def merge_results(statement: Union[str, Statement], results: List[ResultSet]) -> ResultSet:
    """Fold per-shard result sets into one (the gather half of scatter-gather)."""
    if isinstance(statement, str):
        statement = parse_cached(statement)
    if not isinstance(statement, Select):
        # Broadcast write: total rows affected across shards.
        return ResultSet(
            columns=results[0].columns if results else [],
            rows=[],
            rows_scanned=sum(r.rows_scanned for r in results),
            affected=sum(r.affected for r in results),
        )
    if statement.is_aggregate:
        return _merge_aggregates(statement, results)
    rows: List[dict] = []
    for result in results:
        rows.extend(result.rows)
    order = statement.order_by
    if order is not None:
        column = order.column
        # Match the executor's ordering; shard-local sorts are stable, so
        # re-sorting the concatenation reproduces a single-instance run
        # up to ties across shards.
        rows.sort(key=lambda row: row.get(column, row.get(_bare(column))),
                  reverse=order.descending)
    if statement.limit is not None:
        rows = rows[: statement.limit]
    return ResultSet(
        columns=results[0].columns if results else [],
        rows=rows,
        rows_scanned=sum(r.rows_scanned for r in results),
    )
