"""The shard router: JDBC-compatible access to a sharded, replicated tier.

:class:`ClusterDataSource` / :class:`ClusterConnection` duck-type the
:class:`~repro.rdbms.jdbc.DataSource` / ``JdbcConnection`` surface the
middleware already speaks (``connect``/``execute``/``begin``/``commit``/
``rollback``/``close``), so `AppServer.db_execute` and the
container-managed transaction machinery route through the cluster with
no changes to application code — exactly the policy-over-code stance of
the paper, extended to the data tier.

Under the hood every statement is classified by
:func:`~repro.rdbms.cluster.sharding.route_statement`:

* **single-shard** statements run on one replica group through a real
  per-member :class:`~repro.rdbms.jdbc.DataSource` (pooling, auth and
  wire costs all inherited);
* **scatter-gather** SELECTs fan out to every group in parallel and
  merge;
* **broadcast** writes run on every group (global-table maintenance);
* cross-shard write transactions pay an explicit two-phase-commit
  prepare round before the per-group commits, and every committed write
  batch is handed to the group's raft log for quorum replication.

Reads honour the policy's ``read_mode``: ``leader`` (default),
``quorum`` (leader read + parallel read-index confirmation round —
linearizable, slower), or ``stale-local`` (nearest replica on the
calling node, with the staleness of missed commits *measured* and
exported).  Leader resolution retries with a fixed deterministic backoff
while an election is in progress, counting ``router_failovers``.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple, Union

from ..executor import ResultSet
from ..jdbc import DataSource, JdbcConfig, JdbcConnection, JdbcError
from ..sql import Statement
from ...simnet.kernel import Event
from ...simnet.network import NetworkError
from ...simnet.router import PacketLoss
from ...simnet.transport import NodeUnavailable
from .raft import ACK_SIZE, RaftGroup, RaftMember
from .sharding import Route, merge_results, route_statement

__all__ = ["ClusterDataSource", "ClusterConnection"]

PREPARE_SIZE = 96  # 2PC prepare message

# Fixed (deterministic, RNG-free) backoff while a group elects a leader.
LEADER_RETRY_BACKOFF_MS = (100.0, 200.0, 400.0, 800.0, 1600.0, 2000.0)

_NETWORK_ERRORS = (NetworkError, PacketLoss, NodeUnavailable)


class _ClusterSession:
    """Duck-types ``DbSession`` for the transaction-context contract."""

    def __init__(self, connection: "ClusterConnection"):
        self._connection = connection

    @property
    def in_transaction(self) -> bool:
        return self._connection._explicit


class ClusterDataSource:
    """Routes one client node's statements into the data-tier cluster.

    Holds one real :class:`DataSource` per replica the client talks to,
    so connection pooling and the verbose JDBC wire model apply
    per-replica exactly as they do against the single-instance tier.
    """

    def __init__(self, cluster, client_node: str, config: Optional[JdbcConfig] = None):
        self.cluster = cluster
        self.network = cluster.network
        self.env = cluster.env
        self.client_node = client_node
        self.config = config or JdbcConfig()
        self._sources: Dict[str, DataSource] = {}
        self._known_leaders: Dict[int, RaftMember] = {}

    # -- DataSource surface ----------------------------------------------------
    def connect(self) -> Generator[Event, Any, "ClusterConnection"]:
        """A logical routing connection (physical ones open lazily)."""
        return ClusterConnection(self)
        yield  # pragma: no cover - acquisition is lazy, per-statement

    @property
    def statements(self) -> int:
        return sum(source.statements for source in self._sources.values())

    @property
    def connections_opened(self) -> int:
        return sum(source.connections_opened for source in self._sources.values())

    # -- member plumbing -------------------------------------------------------
    def source_for(self, member: RaftMember) -> DataSource:
        source = self._sources.get(member.name)
        if source is None:
            source = DataSource(
                self.network, self.client_node, member.server, self.config
            )
            self._sources[member.name] = source
        return source

    def member_connection(
        self, member: RaftMember
    ) -> Generator[Event, Any, JdbcConnection]:
        connection = yield from self.source_for(member).connect()
        return connection

    def leader_connection(
        self, group_index: int
    ) -> Generator[Event, Any, Tuple[JdbcConnection, RaftMember, RaftGroup]]:
        """Connect to the group's leader, riding out elections.

        Retries with a fixed backoff while no live leader exists (a
        crash triggered an election) and counts a ``router_failover``
        whenever the leadership moved since this client last looked.
        """
        group = self.cluster.groups[group_index]
        stats = self.cluster.stats
        last_error: Optional[Exception] = None
        for attempt, delay in enumerate(LEADER_RETRY_BACKOFF_MS + (None,)):
            leader = group.live_leader()
            if leader is not None:
                known = self._known_leaders.get(group_index)
                if known is not None and known is not leader:
                    stats.router_failovers += 1
                self._known_leaders[group_index] = leader
                try:
                    connection = yield from self.source_for(leader).connect()
                    return connection, leader, group
                except _NETWORK_ERRORS as error:
                    last_error = error
            if delay is None:
                break
            yield self.env.sleep(delay)
        if last_error is not None:
            raise last_error
        raise NodeUnavailable(
            f"raft group {group.name}: no live leader after "
            f"{len(LEADER_RETRY_BACKOFF_MS) + 1} attempts"
        )


class ClusterConnection:
    """One logical connection through the router (duck-types JdbcConnection)."""

    def __init__(self, source: ClusterDataSource):
        self.source = source
        self.session = _ClusterSession(self)
        self.closed = False
        self._explicit = False
        self._read_only = False
        # Per-group transactional state, keyed by group index.
        self._txn_conns: Dict[int, JdbcConnection] = {}
        self._txn_leaders: Dict[int, RaftMember] = {}
        self._txn_batches: Dict[int, List[Tuple[str, Tuple[Any, ...]]]] = {}

    @property
    def _stats(self):
        return self.source.cluster.stats

    @property
    def _tier(self):
        return self.source.cluster.tier

    # -- statements -----------------------------------------------------------
    def execute(
        self,
        statement: Union[str, Statement],
        params: Tuple[Any, ...] = (),
        trace_page: Optional[str] = None,
    ) -> Generator[Event, Any, ResultSet]:
        if self.closed:
            raise JdbcError("execute on a closed connection")
        route = route_statement(
            statement, params, self._tier, self.source.cluster.partitioner
        )
        if route.is_write:
            result = yield from self._execute_write(route, statement, params, trace_page)
        else:
            result = yield from self._execute_read(route, statement, params, trace_page)
        return result

    # -- writes ---------------------------------------------------------------
    def _execute_write(
        self,
        route: Route,
        statement: Union[str, Statement],
        params: Tuple[Any, ...],
        trace_page: Optional[str],
    ) -> Generator[Event, Any, ResultSet]:
        if route.kind == "single":
            self._stats.single_shard_statements += 1
            targets = [route.shard]
        else:
            self._stats.broadcast_writes += 1
            targets = list(range(len(self.source.cluster.groups)))
        results: List[ResultSet] = []
        if self._explicit:
            for index in targets:
                connection = yield from self._txn_connection(index)
                result = yield from connection.execute(statement, params, trace_page)
                self._txn_batches[index].append((statement, params))
                results.append(result)
        else:
            for index in targets:
                connection, leader, group = yield from self.source.leader_connection(index)
                try:
                    # Auto-commit: the server commits implicitly inside
                    # execute, so the session is never left open.
                    result = yield from connection.execute(statement, params, trace_page)
                finally:
                    connection.close()
                if self._tier.replicated:
                    yield from group.commit_batch(leader, [(statement, params)])
                results.append(result)
        if len(results) == 1:
            return results[0]
        return merge_results(statement, results)

    def _txn_connection(
        self, group_index: int
    ) -> Generator[Event, Any, JdbcConnection]:
        connection = self._txn_conns.get(group_index)
        if connection is None:
            connection, leader, _group = yield from self.source.leader_connection(
                group_index
            )
            connection.begin(read_only=self._read_only)
            self._txn_conns[group_index] = connection
            self._txn_leaders[group_index] = leader
            self._txn_batches[group_index] = []
        return connection

    # -- reads ----------------------------------------------------------------
    def _execute_read(
        self,
        route: Route,
        statement: Union[str, Statement],
        params: Tuple[Any, ...],
        trace_page: Optional[str],
    ) -> Generator[Event, Any, ResultSet]:
        if route.kind == "single":
            self._stats.single_shard_statements += 1
            result = yield from self._read_one(route.shard, statement, params, trace_page)
            return result
        # Scatter-gather: one child per shard, in parallel; a child
        # failure fails the whole query (the waiter sees the exception).
        self._stats.scatter_gather_queries += 1
        env = self.source.env
        children = [
            env.process(
                self._read_one(index, statement, params, trace_page),
                name=f"scatter:{self.source.client_node}:{index}",
            )
            for index in range(len(self.source.cluster.groups))
        ]
        outcome = yield env.all_of(children)
        results = [outcome[index] for index in range(len(children))]
        return merge_results(statement, results)

    def _read_one(
        self,
        group_index: int,
        statement: Union[str, Statement],
        params: Tuple[Any, ...],
        trace_page: Optional[str],
    ) -> Generator[Event, Any, ResultSet]:
        """One group's share of a read, honouring the policy read mode."""
        group = self.source.cluster.groups[group_index]
        stats = self._stats
        # Inside an explicit transaction, reads on a group the transaction
        # has written to go through its enlisted leader connection
        # (read-your-writes); groups the transaction never touched follow
        # the policy read_mode like any other read.
        if self._explicit:
            connection = self._txn_conns.get(group_index)
            if connection is not None:
                stats.reads_leader += 1
                result = yield from connection.execute(statement, params, trace_page)
                return result
        mode = self._tier.read_mode
        if mode == "stale-local" and self._tier.replicated:
            member = group.member_on(self.source.client_node)
            if member is not None and member.alive:
                stats.reads_stale_local += 1
                if member.applied_index < group.commit_index:
                    # This replica has not applied every committed write:
                    # the read is stale by the age of the oldest miss.
                    stats.stale_reads_served += 1
                    missed = group.log[member.applied_index]
                    if missed.commit_time is not None:
                        stats.staleness_ms += self.source.env.now - missed.commit_time
                connection = yield from self.source.member_connection(member)
                try:
                    result = yield from connection.execute(statement, params, trace_page)
                finally:
                    connection.close()
                return result
            # No live local replica for this group: fall back to the leader.
        connection, leader, group = yield from self.source.leader_connection(group_index)
        try:
            result = yield from connection.execute(statement, params, trace_page)
        finally:
            connection.close()
        if mode == "quorum" and self._tier.replicated:
            # Read-index confirmation: the leader proves it still leads
            # before the result counts, making the read linearizable.
            stats.reads_quorum += 1
            yield from group.confirm_quorum(leader)
        else:
            stats.reads_leader += 1
        return result

    # -- transactions -----------------------------------------------------------
    def begin(self, read_only: bool = False) -> None:
        if self._explicit:
            raise JdbcError("connection already in a transaction")
        self._explicit = True
        self._read_only = read_only

    def commit(self) -> Generator[Event, Any, None]:
        if self.closed:
            raise JdbcError("commit on a closed connection")
        participants = sorted(self._txn_conns)
        if len(participants) >= 2:
            # Two-phase commit: an explicit prepare round trip to every
            # participant leader before any of them commits.
            self._stats.cross_shard_txns += 1
            self._stats.two_phase_commits += 1
            network = self.source.network
            client = self.source.client_node
            for index in participants:
                leader = self._txn_leaders[index]
                yield from network.transfer(
                    client, leader.node.name, PREPARE_SIZE, "2pc-prepare"
                )
                yield from network.transfer(
                    leader.node.name, client, ACK_SIZE, "2pc-ack"
                )
        error: Optional[Exception] = None
        try:
            for index in participants:
                connection = self._txn_conns.pop(index)
                leader = self._txn_leaders.pop(index)
                batch = self._txn_batches.pop(index, None)
                if error is None:
                    try:
                        if connection.session.in_transaction:
                            yield from connection.commit()
                        connection.close()
                        if batch and self._tier.replicated:
                            group = self.source.cluster.groups[index]
                            yield from group.commit_batch(leader, batch)
                        continue
                    except _NETWORK_ERRORS as exc:
                        error = exc
                # A participant failed: roll the rest back (best effort)
                # instead of leaving locked sessions behind.
                try:
                    if connection.session.in_transaction:
                        yield from connection.rollback()
                    connection.close()
                except _NETWORK_ERRORS:
                    pass
        finally:
            self._txn_conns.clear()
            self._txn_leaders.clear()
            self._txn_batches.clear()
            self._explicit = False
        if error is not None:
            raise error

    def rollback(self) -> Generator[Event, Any, None]:
        if self.closed:
            raise JdbcError("rollback on a closed connection")
        try:
            for index in sorted(self._txn_conns):
                connection = self._txn_conns[index]
                if connection.session.in_transaction:
                    yield from connection.rollback()
                connection.close()
        finally:
            self._txn_conns.clear()
            self._txn_leaders.clear()
            self._txn_batches.clear()
            self._explicit = False

    def close(self) -> None:
        if self.closed:
            return
        if self._explicit or self._txn_conns:
            raise JdbcError("close with an open transaction; commit or rollback first")
        self.closed = True
