"""Relational database substrate: engine, SQL subset, server, JDBC model."""

from .bptree import BPlusTree
from .engine import Database, DatabaseError
from .executor import ExecutionError, Executor, ResultSet
from .expressions import (
    And,
    ColumnRef,
    Comparison,
    EvaluationError,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    Parameter,
    bind_parameters,
    like_matcher,
    like_prefix,
)
from .jdbc import DataSource, JdbcConfig, JdbcConnection, JdbcError
from .plan import AccessChoice, PlanNode, QueryPlan
from .schema import Column, ForeignKey, SchemaError, TableSchema
from .server import DatabaseServer, DbCostModel, DbSession, result_wire_size
from .stats import TableStats
from .sql import (
    Aggregate,
    Delete,
    Insert,
    OrderBy,
    Select,
    SelectItem,
    SqlError,
    Statement,
    TableRef,
    Update,
    parse,
    parse_cached,
)
from .storage import StorageError, Table
from .transactions import LockManager, Transaction, TransactionError
from .types import BOOLEAN, FLOAT, INTEGER, TEXT, ColumnType

__all__ = [
    "BPlusTree",
    "Database",
    "DatabaseError",
    "ExecutionError",
    "Executor",
    "ResultSet",
    "AccessChoice",
    "PlanNode",
    "QueryPlan",
    "TableStats",
    "like_matcher",
    "like_prefix",
    "And",
    "ColumnRef",
    "Comparison",
    "EvaluationError",
    "Expression",
    "InList",
    "Like",
    "Literal",
    "Not",
    "Or",
    "Parameter",
    "bind_parameters",
    "DataSource",
    "JdbcConfig",
    "JdbcConnection",
    "JdbcError",
    "Column",
    "ForeignKey",
    "SchemaError",
    "TableSchema",
    "DatabaseServer",
    "DbCostModel",
    "DbSession",
    "result_wire_size",
    "Aggregate",
    "Delete",
    "Insert",
    "OrderBy",
    "Select",
    "SelectItem",
    "SqlError",
    "Statement",
    "TableRef",
    "Update",
    "parse",
    "parse_cached",
    "StorageError",
    "Table",
    "LockManager",
    "Transaction",
    "TransactionError",
    "BOOLEAN",
    "FLOAT",
    "INTEGER",
    "TEXT",
    "ColumnType",
]
