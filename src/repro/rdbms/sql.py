"""A SQL subset: lexer, parser, and statement AST.

Supports exactly what the two applications and the query-caching layer
need — single-table and equi-join SELECTs with aggregates, ORDER BY and
LIMIT, plus INSERT / UPDATE / DELETE — while rejecting anything else
loudly.  Statements parse to dataclass ASTs consumed by
:mod:`repro.rdbms.executor`.

Grammar (informal)::

    select   := SELECT select_list FROM table_ref (JOIN table_ref ON eq)*
                [WHERE expr] [GROUP BY column] [ORDER BY column [ASC|DESC]]
                [LIMIT int]
    expr     := comparisons, LIKE, IN, BETWEEN, AND/OR/NOT, parentheses
    insert   := INSERT INTO name '(' columns ')' VALUES '(' values ')'
    update   := UPDATE name SET assignments [WHERE expr]
    delete   := DELETE FROM name [WHERE expr]
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from .expressions import (
    And,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    Parameter,
)

__all__ = [
    "SqlError",
    "Select",
    "Insert",
    "Update",
    "Delete",
    "Aggregate",
    "SelectItem",
    "TableRef",
    "JoinClause",
    "OrderBy",
    "Statement",
    "statement_footprint",
    "parse",
    "parse_cached",
]


class SqlError(Exception):
    """Raised on lexical, syntactic, or unsupported-feature errors."""


# ---------------------------------------------------------------------------
# Statement AST
# ---------------------------------------------------------------------------

AGGREGATE_FUNCTIONS = ("COUNT", "MAX", "MIN", "SUM", "AVG")


@dataclass(frozen=True)
class Aggregate:
    """``COUNT(*)`` / ``MAX(col)`` etc. in a select list."""

    function: str
    column: Optional[str]  # None means '*' (COUNT(*) only)
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        target = self.column if self.column is not None else "*"
        return f"{self.function.lower()}({target})"


@dataclass(frozen=True)
class SelectItem:
    """A plain column in a select list, optionally aliased."""

    column: str
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        return self.alias or self.column


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    table: TableRef
    left_column: str
    right_column: str


@dataclass(frozen=True)
class OrderBy:
    column: str
    descending: bool = False


@dataclass(frozen=True)
class Select:
    items: Tuple[Union[SelectItem, Aggregate], ...]  # empty tuple means '*'
    table: TableRef
    joins: Tuple[JoinClause, ...] = ()
    where: Optional[Expression] = None
    group_by: Optional[str] = None
    order_by: Optional[OrderBy] = None
    limit: Optional[int] = None

    @property
    def is_aggregate(self) -> bool:
        return any(isinstance(item, Aggregate) for item in self.items)

    @property
    def is_star(self) -> bool:
        return not self.items

    def tables(self) -> List[str]:
        return [self.table.name] + [join.table.name for join in self.joins]


@dataclass(frozen=True)
class Insert:
    table: str
    columns: Tuple[str, ...]
    values: Tuple[Expression, ...]


@dataclass(frozen=True)
class Update:
    table: str
    assignments: Tuple[Tuple[str, Expression], ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Expression] = None


Statement = Union[Select, Insert, Update, Delete]


def statement_footprint(statement: Statement) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """``(tables_read, tables_written)`` of one statement, from the AST.

    SELECT reads its FROM table plus every JOIN table; INSERT writes its
    target; UPDATE and DELETE both read (scan) and write their target.
    This is the primitive the consistency layer uses to derive method
    footprints automatically — no hand-maintained table lists.
    """
    if isinstance(statement, Select):
        return tuple(sorted(set(statement.tables()))), ()
    if isinstance(statement, Insert):
        return (), (statement.table,)
    if isinstance(statement, (Update, Delete)):
        return (statement.table,), (statement.table,)
    raise SqlError(f"no footprint for statement type {type(statement).__name__}")


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<param>\?)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),.*])
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "JOIN", "ON", "AS",
    "GROUP", "ORDER", "BY", "ASC", "DESC", "LIMIT", "INSERT", "INTO",
    "VALUES", "UPDATE", "SET", "DELETE", "LIKE", "IN", "NULL", "TRUE",
    "FALSE", "INNER", "BETWEEN",
}


@dataclass
class _Token:
    kind: str  # 'number' | 'string' | 'param' | 'op' | 'punct' | 'ident' | 'keyword' | 'eof'
    text: str
    position: int


def _lex(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SqlError(f"unexpected character {sql[position]!r} at {position} in {sql!r}")
        kind = match.lastgroup
        text = match.group()
        position = match.end()
        if kind == "ws":
            continue
        if kind == "ident" and text.upper() in _KEYWORDS:
            tokens.append(_Token("keyword", text.upper(), match.start()))
        else:
            tokens.append(_Token(kind, text, match.start()))
    tokens.append(_Token("eof", "", len(sql)))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = _lex(sql)
        self.index = 0
        self._parameter_count = 0

    # -- token helpers -------------------------------------------------------
    def _peek(self) -> _Token:
        return self.tokens[self.index]

    def _advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def _error(self, message: str) -> SqlError:
        token = self._peek()
        return SqlError(f"{message} at {token.position} (near {token.text!r}) in {self.sql!r}")

    def _expect_keyword(self, keyword: str) -> None:
        token = self._advance()
        if token.kind != "keyword" or token.text != keyword:
            self.index -= 1
            raise self._error(f"expected {keyword}")

    def _match_keyword(self, keyword: str) -> bool:
        token = self._peek()
        if token.kind == "keyword" and token.text == keyword:
            self.index += 1
            return True
        return False

    def _expect_punct(self, punct: str) -> None:
        token = self._advance()
        if token.kind != "punct" or token.text != punct:
            self.index -= 1
            raise self._error(f"expected {punct!r}")

    def _match_punct(self, punct: str) -> bool:
        token = self._peek()
        if token.kind == "punct" and token.text == punct:
            self.index += 1
            return True
        return False

    def _expect_ident(self) -> str:
        token = self._advance()
        if token.kind != "ident":
            self.index -= 1
            raise self._error("expected identifier")
        return token.text

    def _column_name(self) -> str:
        """Possibly-qualified column name: ident ['.' ident]."""
        name = self._expect_ident()
        if self._match_punct("."):
            name = f"{name}.{self._expect_ident()}"
        return name

    # -- entry -----------------------------------------------------------------
    def parse(self) -> Statement:
        token = self._peek()
        if token.kind != "keyword":
            raise self._error("expected a statement keyword")
        if token.text == "SELECT":
            statement = self._select()
        elif token.text == "INSERT":
            statement = self._insert()
        elif token.text == "UPDATE":
            statement = self._update()
        elif token.text == "DELETE":
            statement = self._delete()
        else:
            raise self._error(f"unsupported statement {token.text}")
        if self._peek().kind != "eof":
            raise self._error("trailing tokens")
        return statement

    # -- SELECT ------------------------------------------------------------------
    def _select(self) -> Select:
        self._expect_keyword("SELECT")
        items = self._select_list()
        self._expect_keyword("FROM")
        table = self._table_ref()
        joins: List[JoinClause] = []
        while True:
            if self._match_keyword("INNER"):
                self._expect_keyword("JOIN")
            elif not self._match_keyword("JOIN"):
                break
            join_table = self._table_ref()
            self._expect_keyword("ON")
            left = self._column_name()
            token = self._advance()
            if token.kind != "op" or token.text != "=":
                self.index -= 1
                raise self._error("JOIN supports only equality conditions")
            right = self._column_name()
            joins.append(JoinClause(join_table, left, right))
        where = self._where_clause()
        group_by = None
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = self._column_name()
        order_by = None
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            column = self._column_name()
            descending = False
            if self._match_keyword("DESC"):
                descending = True
            else:
                self._match_keyword("ASC")
            order_by = OrderBy(column, descending)
        limit = None
        if self._match_keyword("LIMIT"):
            token = self._advance()
            if token.kind != "number" or "." in token.text:
                self.index -= 1
                raise self._error("LIMIT expects an integer")
            limit = int(token.text)
        return Select(tuple(items), table, tuple(joins), where, group_by, order_by, limit)

    def _select_list(self) -> List[Union[SelectItem, Aggregate]]:
        if self._match_punct("*"):
            return []
        items: List[Union[SelectItem, Aggregate]] = []
        while True:
            items.append(self._select_item())
            if not self._match_punct(","):
                break
        return items

    def _select_item(self) -> Union[SelectItem, Aggregate]:
        token = self._peek()
        if token.kind == "ident" and token.text.upper() in AGGREGATE_FUNCTIONS:
            lookahead = self.tokens[self.index + 1]
            if lookahead.kind == "punct" and lookahead.text == "(":
                function = self._advance().text.upper()
                self._expect_punct("(")
                if self._match_punct("*"):
                    if function != "COUNT":
                        raise self._error(f"{function}(*) is not supported")
                    column = None
                else:
                    column = self._column_name()
                self._expect_punct(")")
                alias = self._alias()
                return Aggregate(function, column, alias)
        column = self._column_name()
        return SelectItem(column, self._alias())

    def _alias(self) -> Optional[str]:
        if self._match_keyword("AS"):
            return self._expect_ident()
        if self._peek().kind == "ident":
            return self._advance().text
        return None

    def _table_ref(self) -> TableRef:
        name = self._expect_ident()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().kind == "ident":
            alias = self._advance().text
        return TableRef(name, alias)

    def _where_clause(self) -> Optional[Expression]:
        if self._match_keyword("WHERE"):
            return self._expression()
        return None

    # -- expressions ----------------------------------------------------------
    def _expression(self) -> Expression:
        return self._or_expression()

    def _or_expression(self) -> Expression:
        parts = [self._and_expression()]
        while self._match_keyword("OR"):
            parts.append(self._and_expression())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def _and_expression(self) -> Expression:
        parts = [self._not_expression()]
        while self._match_keyword("AND"):
            parts.append(self._not_expression())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def _not_expression(self) -> Expression:
        if self._match_keyword("NOT"):
            return Not(self._not_expression())
        return self._primary()

    def _primary(self) -> Expression:
        if self._match_punct("("):
            inner = self._expression()
            self._expect_punct(")")
            return inner
        left = self._value()
        token = self._peek()
        if token.kind == "keyword" and token.text == "LIKE":
            if not isinstance(left, ColumnRef):
                raise self._error("LIKE requires a column on the left")
            self._advance()
            return Like(left, self._value())
        if token.kind == "keyword" and token.text == "BETWEEN":
            # Desugar to a pair of inclusive range comparisons; the
            # planner recombines them into one ordered-index range scan.
            self._advance()
            low = self._value()
            self._expect_keyword("AND")
            high = self._value()
            return And(
                (Comparison(left, ">=", low), Comparison(left, "<=", high))
            )
        if token.kind == "keyword" and token.text == "IN":
            if not isinstance(left, ColumnRef):
                raise self._error("IN requires a column on the left")
            self._advance()
            self._expect_punct("(")
            options = [self._value()]
            while self._match_punct(","):
                options.append(self._value())
            self._expect_punct(")")
            return InList(left, tuple(options))
        if token.kind == "op":
            operator = self._advance().text
            if operator == "<>":
                operator = "!="
            right = self._value()
            return Comparison(left, operator, right)
        raise self._error("expected a comparison operator")

    def _value(self) -> Expression:
        token = self._advance()
        if token.kind == "number":
            value = float(token.text) if "." in token.text else int(token.text)
            return Literal(value)
        if token.kind == "string":
            return Literal(token.text[1:-1].replace("''", "'"))
        if token.kind == "param":
            parameter = Parameter(self._parameter_count)
            self._parameter_count += 1
            return parameter
        if token.kind == "keyword" and token.text in ("NULL", "TRUE", "FALSE"):
            return Literal({"NULL": None, "TRUE": True, "FALSE": False}[token.text])
        if token.kind == "ident":
            self.index -= 1
            return ColumnRef(self._column_name())
        self.index -= 1
        raise self._error("expected a value")

    # -- INSERT / UPDATE / DELETE -----------------------------------------------
    def _insert(self) -> Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        self._expect_punct("(")
        columns = [self._expect_ident()]
        while self._match_punct(","):
            columns.append(self._expect_ident())
        self._expect_punct(")")
        self._expect_keyword("VALUES")
        self._expect_punct("(")
        values = [self._value()]
        while self._match_punct(","):
            values.append(self._value())
        self._expect_punct(")")
        if len(columns) != len(values):
            raise SqlError(
                f"INSERT column/value count mismatch ({len(columns)} vs {len(values)})"
            )
        return Insert(table, tuple(columns), tuple(values))

    def _update(self) -> Update:
        self._expect_keyword("UPDATE")
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments: List[Tuple[str, Expression]] = []
        while True:
            column = self._expect_ident()
            token = self._advance()
            if token.kind != "op" or token.text != "=":
                self.index -= 1
                raise self._error("expected = in SET")
            assignments.append((column, self._value()))
            if not self._match_punct(","):
                break
        return Update(table, tuple(assignments), self._where_clause())

    def _delete(self) -> Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident()
        return Delete(table, self._where_clause())


def parse(sql: str) -> Statement:
    """Parse one SQL statement; raises :class:`SqlError` on anything off-grammar."""
    return _Parser(sql).parse()


_PARSE_CACHE: Dict[str, Statement] = {}


def parse_cached(sql: str) -> Statement:
    """Like :func:`parse` but memoized by statement text (ASTs are frozen)."""
    statement = _PARSE_CACHE.get(sql)
    if statement is None:
        statement = parse(sql)
        if len(_PARSE_CACHE) < 4096:
            _PARSE_CACHE[sql] = statement
    return statement
