"""Table schemas: columns, primary keys, secondary indexes, foreign keys."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from .types import ColumnType, TypeError_, coerce

__all__ = ["Column", "ForeignKey", "TableSchema", "SchemaError"]


class SchemaError(Exception):
    """Raised for malformed schema definitions or violated constraints."""


# Per-type nominal sizes for :meth:`TableSchema.estimated_row_size` (the
# planner's cost model); unknown types get a conservative middle value.
_NOMINAL_TYPE_SIZES = {"INTEGER": 8, "FLOAT": 8, "TEXT": 40, "BOOLEAN": 1}


@dataclass(frozen=True)
class Column:
    """One column: name, type, nullability, optional default."""

    name: str
    type: ColumnType
    nullable: bool = False
    default: Any = None

    def coerce(self, value: Any) -> Any:
        try:
            return coerce(self.type, value, self.nullable)
        except TypeError_ as error:
            raise SchemaError(f"column {self.name!r}: {error}") from None


@dataclass(frozen=True)
class ForeignKey:
    """Declarative reference used by data generators and integrity checks."""

    column: str
    references_table: str
    references_column: str


class TableSchema:
    """Schema for one table.

    ``indexes`` lists columns that get secondary hash indexes; the primary
    key is always indexed.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: str,
        indexes: Sequence[str] = (),
        foreign_keys: Sequence[ForeignKey] = (),
    ):
        if not columns:
            raise SchemaError(f"table {name!r} has no columns")
        self.name = name
        self.columns: List[Column] = list(columns)
        self.column_map: Dict[str, Column] = {}
        for column in self.columns:
            if column.name in self.column_map:
                raise SchemaError(f"duplicate column {column.name!r} in {name!r}")
            self.column_map[column.name] = column
        if primary_key not in self.column_map:
            raise SchemaError(f"primary key {primary_key!r} is not a column of {name!r}")
        self.primary_key = primary_key
        for index in indexes:
            if index not in self.column_map:
                raise SchemaError(f"indexed column {index!r} is not a column of {name!r}")
        self.indexes: List[str] = [c for c in indexes if c != primary_key]
        for fk in foreign_keys:
            if fk.column not in self.column_map:
                raise SchemaError(f"foreign key column {fk.column!r} missing in {name!r}")
        self.foreign_keys: List[ForeignKey] = list(foreign_keys)
        self._estimated_row_size: Any = None  # computed lazily

    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name in self.column_map

    def column(self, name: str) -> Column:
        try:
            return self.column_map[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def normalize_row(self, values: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and complete a row dict (applying defaults)."""
        unknown = set(values) - set(self.column_map)
        if unknown:
            raise SchemaError(f"unknown columns for {self.name!r}: {sorted(unknown)}")
        row: Dict[str, Any] = {}
        for column in self.columns:
            if column.name in values:
                row[column.name] = column.coerce(values[column.name])
            else:
                row[column.name] = column.coerce(column.default)
        return row

    def estimated_row_size(self) -> int:
        """Nominal row size in bytes, independent of any stored data.

        The cost-based planner converts record estimates to block
        estimates with this; it uses fixed per-type sizes (TEXT columns
        are assumed ~40 bytes) so estimates never require touching rows.
        """
        if self._estimated_row_size is None:
            size = 0
            for column in self.columns:
                size += _NOMINAL_TYPE_SIZES.get(column.type.name, 16) + 2
            self._estimated_row_size = size
        return self._estimated_row_size

    def row_size(self, row: Dict[str, Any]) -> int:
        """Approximate serialized size of a row in bytes."""
        size = 0
        for column in self.columns:
            value = row.get(column.name)
            if value is not None:
                size += column.type.size_of(value)
            size += 2  # field framing
        return size
