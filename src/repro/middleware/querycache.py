"""Edge-side caching of aggregate query results (§4.4).

Entity beans map rows; aggregate queries (category listings, bid
histories, search results) can only run in the database.  Caching their
results at edge servers "can further reduce the number of remote method
invocations whose sole purpose is to reach centralized database
servers".  The manager supports the paper's two refresh protocols:

* **pull**: invalidation marks entries stale; the next read re-executes
  the query at the main server (one RMI);
* **push**: update propagation delivers fresh rows with the
  invalidation, so "query readers are not penalized".
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..rdbms.lru import LruCache
from ..rdbms.sql import parse_cached, statement_footprint
from ..simnet.kernel import Event
from .context import InvocationContext
from .descriptors import QueryCacheDescriptor

__all__ = ["QueryCacheManager", "QueryCacheStats", "QUERY_CACHE_CAPACITY"]

UPDATER_FACADE = "UpdaterFacade"

# Default bound on cached parameter tuples per query.  Generous: the
# paper-sweep working sets (categories × regions) stay well under it,
# so the bound only bites for adversarial/unbounded parameter spaces —
# the unbounded-growth hazard this cap exists to close.
QUERY_CACHE_CAPACITY = 4096


class QueryCacheStats:
    """Hit/miss/refresh counters for one cached query."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.push_refreshes = 0
        self.evictions = 0

    def as_dict(self) -> Dict[str, int]:
        stats = {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "push_refreshes": self.push_refreshes,
        }
        # Emitted only when the capacity bound actually bit, so metric
        # artifacts from runs that never evict stay byte-identical.
        if self.evictions:
            stats["evictions"] = self.evictions
        return stats


class QueryCacheManager:
    """Per-server cache of parameterized aggregate query results."""

    def __init__(self, server: Any, capacity: int = QUERY_CACHE_CAPACITY):
        self.server = server
        self.capacity = capacity
        self._descriptors: Dict[str, QueryCacheDescriptor] = {}
        # query_id -> bounded LRU of {params: rows}
        self._entries: Dict[str, LruCache] = {}
        self._stale: Dict[str, set] = {}
        # query_id -> tables its SQL reads (for footprint derivation).
        self._tables: Dict[str, Tuple[str, ...]] = {}
        self.stats: Dict[str, QueryCacheStats] = {}

    # -- registration -----------------------------------------------------------
    def register(self, descriptor: QueryCacheDescriptor) -> None:
        self._descriptors[descriptor.query_id] = descriptor
        self._entries.setdefault(descriptor.query_id, LruCache(self.capacity))
        self._stale.setdefault(descriptor.query_id, set())
        reads, _ = statement_footprint(parse_cached(descriptor.sql))
        self._tables[descriptor.query_id] = reads
        self.stats.setdefault(descriptor.query_id, QueryCacheStats())

    def handles(self, query_id: str) -> bool:
        return query_id in self._descriptors

    def descriptor(self, query_id: str) -> QueryCacheDescriptor:
        return self._descriptors[query_id]

    def registered_queries(self) -> List[str]:
        return sorted(self._descriptors)

    # -- read path -----------------------------------------------------------
    def get(
        self, ctx: InvocationContext, query_id: str, params: Tuple
    ) -> Generator[Event, Any, List[dict]]:
        """Cached rows for (query, params); pulls from central on miss."""
        if query_id not in self._descriptors:
            raise KeyError(f"query {query_id!r} is not registered on {self.server.name}")
        if ctx.footprint is not None:
            # A cache hit never reaches the JDBC layer, so the query's
            # read tables are reported here — derived from its SQL, not
            # hand-declared.
            ctx.footprint.add(self._tables[query_id], ())
        stats = self.stats[query_id]
        entries = self._entries[query_id]
        params = tuple(params)
        if params not in self._stale[query_id]:
            rows = entries.get(params)
            if rows is not None:
                stats.hits += 1
                yield from ctx.cpu(0.02)  # local cache lookup
                return [dict(row) for row in rows]
        stats.misses += 1
        facade = yield from ctx.lookup(UPDATER_FACADE + "@central")
        rows = yield from facade.call(ctx, "fetch_query", query_id, params)
        self._install(query_id, params, [dict(row) for row in rows])
        return [dict(row) for row in rows]

    def _install(self, query_id: str, params: Tuple, rows: List[dict]) -> None:
        evicted = self._entries[query_id].put(params, rows)
        self._stale[query_id].discard(params)
        if evicted is not None:
            self.stats[query_id].evictions += 1
            self._stale[query_id].discard(evicted[0])

    # -- maintenance (update propagation) ---------------------------------------
    def drop_all(self) -> None:
        """Server-process crash: every cached result set is lost.

        Registrations and per-query counters survive — the cache comes
        back registered-but-empty, refilling on demand.
        """
        for query_id in self._entries:
            self._entries[query_id].clear()
            self._stale[query_id].clear()

    def invalidate(self, query_id: str, params: Optional[Tuple]) -> None:
        if query_id not in self._descriptors:
            return
        self.stats[query_id].invalidations += 1
        if params is None:
            self._stale[query_id].update(self._entries[query_id].keys())
        else:
            params = tuple(params)
            if params in self._entries[query_id]:
                self._stale[query_id].add(params)

    def apply_refresh(self, query_id: str, params: Tuple, rows: List[dict]) -> None:
        """Push path: install fresh rows computed at the main server."""
        if query_id not in self._descriptors:
            return
        self._install(query_id, tuple(params), [dict(row) for row in rows])
        self.stats[query_id].push_refreshes += 1

    def cached_params(self, query_id: str) -> List[Tuple]:
        """Parameter tuples currently cached for ``query_id``."""
        cache = self._entries.get(query_id)
        return [] if cache is None else list(cache.keys())

    def is_fresh(self, query_id: str, params: Tuple) -> bool:
        params = tuple(params)
        cache = self._entries.get(query_id)
        return (
            cache is not None
            and params in cache
            and params not in self._stale.get(query_id, set())
        )

    def tables_of(self, query_id: str) -> Tuple[str, ...]:
        """Tables the query's SQL reads (auto-derived at registration)."""
        return self._tables.get(query_id, ())
