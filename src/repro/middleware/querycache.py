"""Edge-side caching of aggregate query results (§4.4).

Entity beans map rows; aggregate queries (category listings, bid
histories, search results) can only run in the database.  Caching their
results at edge servers "can further reduce the number of remote method
invocations whose sole purpose is to reach centralized database
servers".  The manager supports the paper's two refresh protocols:

* **pull**: invalidation marks entries stale; the next read re-executes
  the query at the main server (one RMI);
* **push**: update propagation delivers fresh rows with the
  invalidation, so "query readers are not penalized".
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..simnet.kernel import Event
from .context import InvocationContext
from .descriptors import QueryCacheDescriptor

__all__ = ["QueryCacheManager", "QueryCacheStats"]

UPDATER_FACADE = "UpdaterFacade"


class QueryCacheStats:
    """Hit/miss/refresh counters for one cached query."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.push_refreshes = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "push_refreshes": self.push_refreshes,
        }


class QueryCacheManager:
    """Per-server cache of parameterized aggregate query results."""

    def __init__(self, server: Any):
        self.server = server
        self._descriptors: Dict[str, QueryCacheDescriptor] = {}
        # query_id -> {params: rows}
        self._entries: Dict[str, Dict[Tuple, List[dict]]] = {}
        self._stale: Dict[str, set] = {}
        self.stats: Dict[str, QueryCacheStats] = {}

    # -- registration -----------------------------------------------------------
    def register(self, descriptor: QueryCacheDescriptor) -> None:
        self._descriptors[descriptor.query_id] = descriptor
        self._entries.setdefault(descriptor.query_id, {})
        self._stale.setdefault(descriptor.query_id, set())
        self.stats.setdefault(descriptor.query_id, QueryCacheStats())

    def handles(self, query_id: str) -> bool:
        return query_id in self._descriptors

    def descriptor(self, query_id: str) -> QueryCacheDescriptor:
        return self._descriptors[query_id]

    def registered_queries(self) -> List[str]:
        return sorted(self._descriptors)

    # -- read path -----------------------------------------------------------
    def get(
        self, ctx: InvocationContext, query_id: str, params: Tuple
    ) -> Generator[Event, Any, List[dict]]:
        """Cached rows for (query, params); pulls from central on miss."""
        if query_id not in self._descriptors:
            raise KeyError(f"query {query_id!r} is not registered on {self.server.name}")
        stats = self.stats[query_id]
        entries = self._entries[query_id]
        params = tuple(params)
        if params in entries and params not in self._stale[query_id]:
            stats.hits += 1
            yield from ctx.cpu(0.02)  # local cache lookup
            return [dict(row) for row in entries[params]]
        stats.misses += 1
        facade = yield from ctx.lookup(UPDATER_FACADE + "@central")
        rows = yield from facade.call(ctx, "fetch_query", query_id, params)
        entries[params] = [dict(row) for row in rows]
        self._stale[query_id].discard(params)
        return [dict(row) for row in rows]

    # -- maintenance (update propagation) ---------------------------------------
    def drop_all(self) -> None:
        """Server-process crash: every cached result set is lost.

        Registrations and per-query counters survive — the cache comes
        back registered-but-empty, refilling on demand.
        """
        for query_id in self._entries:
            self._entries[query_id].clear()
            self._stale[query_id].clear()

    def invalidate(self, query_id: str, params: Optional[Tuple]) -> None:
        if query_id not in self._descriptors:
            return
        self.stats[query_id].invalidations += 1
        if params is None:
            self._stale[query_id].update(self._entries[query_id].keys())
        else:
            params = tuple(params)
            if params in self._entries[query_id]:
                self._stale[query_id].add(params)

    def apply_refresh(self, query_id: str, params: Tuple, rows: List[dict]) -> None:
        """Push path: install fresh rows computed at the main server."""
        if query_id not in self._descriptors:
            return
        params = tuple(params)
        self._entries[query_id][params] = [dict(row) for row in rows]
        self._stale[query_id].discard(params)
        self.stats[query_id].push_refreshes += 1

    def cached_params(self, query_id: str) -> List[Tuple]:
        """Parameter tuples currently cached for ``query_id``."""
        return list(self._entries.get(query_id, {}))

    def is_fresh(self, query_id: str, params: Tuple) -> bool:
        params = tuple(params)
        return (
            params in self._entries.get(query_id, {})
            and params not in self._stale.get(query_id, set())
        )
