"""Base classes for application components (beans and servlets).

Business methods are written as generators taking an
:class:`~repro.middleware.context.InvocationContext` first:

    class CatalogBean(StatelessSessionBean):
        def get_product(self, ctx, product_id):
            item_home = yield from ctx.lookup("Item")
            ...
            return details

Plain (non-generator) methods are also accepted for trivial accessors —
containers detect and run both.
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, Generator, Optional, Set

__all__ = [
    "Bean",
    "StatelessSessionBean",
    "StatefulSessionBean",
    "EntityBean",
    "MessageDrivenBean",
    "Servlet",
    "run_business_method",
    "BeanError",
]


class BeanError(Exception):
    """Raised on bean protocol violations (missing method, bad state)."""


def run_business_method(instance: Any, method: str, ctx: Any, args: tuple):
    """Invoke ``instance.method(ctx, *args)`` supporting plain or generator form.

    Returns a generator in both cases so containers can uniformly
    ``yield from`` it.
    """
    try:
        function = getattr(instance, method)
    except AttributeError:
        raise BeanError(
            f"{type(instance).__name__} has no business method {method!r}"
        ) from None
    if method.startswith("_"):
        raise BeanError(f"{method!r} is not a public business method")
    # Generator business methods (the common case) are returned as-is:
    # wrapping them in another generator just to ``yield from`` would add
    # one interpreter frame to every resume of every component call.
    result = function(ctx, *args)
    if inspect.isgenerator(result):
        return result
    return _plain_result(result)


def _plain_result(result: Any):
    """Lift a plain return value into the generator protocol."""
    return result
    yield  # pragma: no cover - keeps this a generator function


class Bean:
    """Marker base for all EJB implementations."""

    def ejb_create(self, ctx, *args) -> None:
        """Lifecycle hook called when the container instantiates the bean."""


class StatelessSessionBean(Bean):
    """No conversational state; instances are pooled and interchangeable."""


class StatefulSessionBean(Bean):
    """Holds per-client conversational state in ``self.state``."""

    def __init__(self):
        self.state: Dict[str, Any] = {}
        self.session_id: Optional[str] = None


class EntityBean(Bean):
    """Represents one row of shared persistent state.

    The container populates ``self.state`` from the database (``ejbLoad``)
    before business methods run and writes dirty fields back at
    transaction commit (``ejbStore``).  Use :meth:`set_field` so the
    container can track dirtiness and build update events.
    """

    def __init__(self):
        self.state: Dict[str, Any] = {}
        self.primary_key: Any = None
        self._dirty_fields: Set[str] = set()
        self._loaded = False

    # -- state access ---------------------------------------------------------
    def get_field(self, name: str) -> Any:
        if name not in self.state:
            raise BeanError(
                f"{type(self).__name__}[{self.primary_key!r}] has no field {name!r}"
            )
        return self.state[name]

    def set_field(self, name: str, value: Any) -> None:
        if name not in self.state:
            raise BeanError(
                f"{type(self).__name__}[{self.primary_key!r}] has no field {name!r}"
            )
        if self.state[name] != value:
            self.state[name] = value
            self._dirty_fields.add(name)

    @property
    def is_dirty(self) -> bool:
        return bool(self._dirty_fields)

    @property
    def dirty_fields(self) -> tuple:
        return tuple(sorted(self._dirty_fields))

    def clear_dirty(self) -> None:
        self._dirty_fields.clear()

    # -- default accessors ----------------------------------------------------
    def get_state(self, ctx) -> Dict[str, Any]:
        """Whole-row snapshot (a copy)."""
        return dict(self.state)


class MessageDrivenBean(Bean):
    """Asynchronous consumer: the container calls :meth:`on_message`."""

    def on_message(self, ctx, message) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover


class Servlet:
    """A web-tier component: one :meth:`handle` per HTTP request.

    ``handle`` returns a :class:`~repro.middleware.web.Response`.
    """

    def handle(self, ctx, request) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover
