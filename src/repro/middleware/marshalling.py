"""Serialized-size estimation for RMI arguments and results.

RMI latency in the simulation depends on message sizes (through the
bandwidth shaper), so marshalling estimates the wire footprint of the
Python values that flow through component interfaces.
"""

from __future__ import annotations

from typing import Any

__all__ = ["sizeof", "call_size", "result_size"]

_PRIMITIVE_SIZE = 9  # a boxed primitive plus serialization tag


def sizeof(value: Any, _depth: int = 0) -> int:
    """Approximate Java-serialization size of ``value`` in bytes.

    The hot path is exact-type dispatch: the values that flow through
    component interfaces are overwhelmingly plain strs/ints/floats and
    the dicts/lists the result sets are made of.  Subclasses (IntEnum,
    custom containers, objects) take the isinstance chain below.
    """
    if _depth > 12:
        return 16
    kind = type(value)
    if kind is str:
        return 7 + len(value)
    if kind is int or kind is float:
        return _PRIMITIVE_SIZE
    if value is None:
        return 1
    if kind is bool:
        return 2
    if kind is dict:
        total = 24
        for key, item in value.items():
            total += sizeof(key, _depth + 1) + sizeof(item, _depth + 1)
        return total
    if kind is list or kind is tuple:
        total = 24
        for item in value:
            total += sizeof(item, _depth + 1)
        return total
    return _sizeof_slow(value, _depth)


def _sizeof_slow(value: Any, _depth: int) -> int:
    """Subclass and object fallback; mirrors the original isinstance order."""
    if isinstance(value, bool):
        return 2
    if isinstance(value, (int, float)):
        return _PRIMITIVE_SIZE
    if isinstance(value, str):
        return 7 + len(value)
    if isinstance(value, bytes):
        return 7 + len(value)
    if isinstance(value, dict):
        total = 24
        for key, item in value.items():
            total += sizeof(key, _depth + 1) + sizeof(item, _depth + 1)
        return total
    if isinstance(value, (list, tuple, set, frozenset)):
        total = 24
        for item in value:
            total += sizeof(item, _depth + 1)
        return total
    if hasattr(value, "wire_size"):
        return int(value.wire_size())
    if hasattr(value, "__dict__"):
        return 32 + sizeof(vars(value), _depth + 1)
    return 32


def call_size(base: int, per_arg: int, method: str, args: tuple) -> int:
    """Request-message size for an RMI invocation."""
    size = base + len(method) + per_arg * len(args)
    for arg in args:
        size += sizeof(arg)
    return size


def result_size(base: int, value: Any) -> int:
    """Response-message size for an RMI result."""
    return base + sizeof(value)
