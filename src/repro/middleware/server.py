"""The application server: containers + naming + web tier on one node.

An :class:`AppServer` is the JBoss/Jetty bundle of the paper's testbed.
It hosts whichever containers the deployment plan assigns to it, resolves
component references (local first, then the central server's JNDI tree),
owns the connection pools for RMI and JDBC, and serves HTTP requests.

Reference resolution implements the paper's placement semantics:

* read access to an entity resolves to a **local read-only replica** when
  one is deployed, then a local read-write container, then the central
  server (a remote stub);
* write access skips read-only replicas;
* ``name@central`` forces resolution at the main server (used by replicas
  to reach their updater façade).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

from ..faults.stats import ResilienceStats
from ..rdbms.jdbc import DataSource, JdbcConfig
from ..rdbms.server import DatabaseServer, result_wire_size
from ..rdbms.sql import parse_cached, statement_footprint
from ..simnet.kernel import Environment, Event
from ..simnet.monitor import Trace
from ..simnet.transport import ConnectionPool
from .consistency import (
    EdgeConsistencyManager,
    METHOD_CACHE_CAPACITY,
    TransactionalMethodCache,
)
from .context import InvocationContext
from .costs import MiddlewareCosts
from .descriptors import (
    ApplicationDescriptor,
    ComponentDescriptor,
    ComponentKind,
    UpdateMode,
)
from .ejb import BeanError
from .entity import EntityContainer
from .jms import JmsProvider
from .mdb import MessageDrivenContainer
from .naming import JNDI_LOOKUP_REQUEST, JNDI_LOOKUP_RESPONSE, HomeCache, JndiRegistry, NamingError
from .querycache import QueryCacheManager
from .readonly import ReadOnlyEntityContainer
from .rmi import ComponentRef, LocalRef, RemoteRef
from .session import StatefulSessionContainer, StatelessSessionContainer
from .web import HttpSessionStore, Response, ServletContainer, WebRequest

if TYPE_CHECKING:  # pragma: no cover
    from .updates import UpdatePropagator

__all__ = ["AppServer", "result_wire_size"]  # result_wire_size re-exported


class AppServer:
    """One application-server process bound to a testbed node."""

    def __init__(
        self,
        env: Environment,
        node: Any,
        application: ApplicationDescriptor,
        costs: MiddlewareCosts,
        db_server: Optional[DatabaseServer] = None,
        trace: Optional[Trace] = None,
        is_main: bool = False,
        wide_area_of=None,
        spans=None,
        metrics=None,
    ):
        self.env = env
        self.node = node
        self.application = application
        self.costs = costs
        self.db_server = db_server
        self.trace = trace
        self.spans = spans  # SpanRecorder shared across the deployment
        self.metrics = metrics  # MetricsRegistry for live instruments
        self.is_main = is_main
        self._wide_area_of = wide_area_of  # callable(node_a, node_b) -> bool

        self.naming = JndiRegistry(node.name)
        self.home_cache = HomeCache(enabled=True)
        self.web_sessions = HttpSessionStore()
        self.containers: Dict[str, Any] = {}
        self._readonly: Dict[str, ReadOnlyEntityContainer] = {}
        self.query_cache: Optional[QueryCacheManager] = None
        # Unified edge-consistency chain: replicas, the query cache and
        # the method cache all receive bus payloads through it.
        self.consistency = EdgeConsistencyManager(self)
        self.method_cache: Optional[TransactionalMethodCache] = None
        self.update_propagator: Optional["UpdatePropagator"] = None
        self.jms: Optional[JmsProvider] = None
        self.central: Optional["AppServer"] = None
        # Availability: clients probing a failed server time out and may
        # fail over to another entry point (§1's availability argument).
        self.available = True
        self.crashes = 0
        # Deployment-wide resilience counters; distribute() replaces this
        # per-server default with one instance shared by every server.
        self.resilience = ResilienceStats()
        # Peer servers by node name (set by distribute()): lets RMI pools
        # refuse connections to crashed peers instead of failing
        # mid-exchange, and lets crash() flush peers' pooled sockets.
        self.peers: Dict[str, "AppServer"] = {}

        self._rmi_pools: Dict[str, ConnectionPool] = {}
        self._datasource: Optional[DataSource] = None
        # Sharded/replicated data tier (set by distribute() when the
        # policy declares one); db access then routes through its router.
        self.cluster = None
        # Overridable before first use: the original Pet Store web tier
        # opened un-pooled connections per request (JdbcConfig(pooled=False)).
        self.jdbc_config = JdbcConfig()
        self._network = None
        self.http_requests = 0

    # -- identity ------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.node.name

    @property
    def network(self):
        if self._network is None:
            raise BeanError(f"server {self.name} is not attached to a network")
        return self._network

    def attach_network(self, network) -> None:
        self._network = network

    def fail(self) -> None:
        """Take this server down (new connections time out)."""
        self.available = False

    def recover(self) -> None:
        """Bring the server back up."""
        self.available = True

    def crash(self) -> None:
        """The server *process* dies: go down AND lose volatile state.

        Unlike :meth:`fail` (a reachability blip), a crash drains
        everything held in process memory — HTTP sessions, stateful bean
        instances, stateless instance pools, read-only replica caches,
        query caches, the home-stub cache, and open connections (ours and
        the idle sockets peers pooled towards us).  The *node* keeps
        routing; only the application server is gone, so clients can fail
        over to another entry point while we are down.
        """
        self.available = False
        self.crashes += 1
        if self.resilience is not None:
            self.resilience.server_crashes += 1
        self.web_sessions.clear()
        for container in self.containers.values():
            drain = getattr(container, "drain", None)
            if drain is not None:
                drain()
        for container in self._readonly.values():
            container.drop_all()
        if self.query_cache is not None:
            self.query_cache.drop_all()
        if self.method_cache is not None:
            self.method_cache.drop_all()
        self.home_cache.invalidate()
        self._rmi_pools.clear()
        self._datasource = None
        for peer in self.peers.values():
            for pool in peer._rmi_pools.values():
                pool.drop_connections_to(self.node.name)

    def restart(self) -> None:
        """Come back up cold: empty caches refill through normal traffic."""
        self.available = True

    def is_wide_area(self, other_node: str) -> bool:
        if self._wide_area_of is None:
            return False
        return self._wide_area_of(self.node.name, other_node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "main" if self.is_main else "edge"
        return f"<AppServer {self.name} ({role})>"

    # -- deployment -----------------------------------------------------------
    def deploy(self, descriptor: ComponentDescriptor, replica: bool = False) -> Any:
        """Instantiate a container for ``descriptor`` on this server.

        ``replica=True`` deploys the read-only flavour of a read-mostly
        entity bean; read access then resolves to it locally.
        """
        if descriptor.kind == ComponentKind.ENTITY:
            if replica:
                container = ReadOnlyEntityContainer(self, descriptor)
                self._readonly[descriptor.name] = container
                self.naming.rebind(descriptor.name + ".ro", container)
                return container
            container = EntityContainer(self, descriptor)
        elif descriptor.kind == ComponentKind.STATELESS_SESSION:
            container = StatelessSessionContainer(self, descriptor)
        elif descriptor.kind == ComponentKind.STATEFUL_SESSION:
            container = StatefulSessionContainer(self, descriptor)
        elif descriptor.kind == ComponentKind.MESSAGE_DRIVEN:
            container = MessageDrivenContainer(self, descriptor)
        elif descriptor.kind == ComponentKind.SERVLET:
            container = ServletContainer(self, descriptor)
        else:  # pragma: no cover - enum is closed
            raise BeanError(f"unknown component kind {descriptor.kind}")
        self.containers[descriptor.name] = container
        self.naming.rebind(descriptor.name, container)
        return container

    def enable_query_cache(self) -> QueryCacheManager:
        if self.query_cache is None:
            self.query_cache = QueryCacheManager(self)
        return self.query_cache

    def enable_method_cache(
        self,
        mode: UpdateMode = UpdateMode.SYNC,
        lease_ms: Optional[float] = None,
        capacity: int = METHOD_CACHE_CAPACITY,
    ) -> TransactionalMethodCache:
        """Activate transactional method caching (level 6) on this server."""
        if self.method_cache is None:
            self.method_cache = TransactionalMethodCache(
                self, mode=mode, lease_ms=lease_ms, capacity=capacity
            )
            self.consistency.register(self.method_cache)
        return self.method_cache

    def container(self, name: str) -> Any:
        try:
            return self.containers[name]
        except KeyError:
            raise NamingError(f"{name!r} is not deployed on {self.name}") from None

    def has_component(self, name: str) -> bool:
        return name in self.containers or name in self._readonly

    def readonly_container(self, name: str) -> Optional[ReadOnlyEntityContainer]:
        return self._readonly.get(name)

    # -- reference resolution ---------------------------------------------------
    def _peer_available(self, node_name: str) -> bool:
        """Liveness oracle for connection pools (counts refusals)."""
        peer = self.peers.get(node_name)
        if peer is None or peer.available:
            return True
        if self.resilience is not None:
            self.resilience.pool_refusals += 1
        return False

    def rmi_pool(self, dst_node: str) -> ConnectionPool:
        pool = self._rmi_pools.get(dst_node)
        if pool is None:
            pool = ConnectionPool(
                self._network, kind="rmi", availability=self._peer_available
            )
            self._rmi_pools[dst_node] = pool
        return pool

    def lookup(
        self, ctx: InvocationContext, name: str, for_update: bool = False
    ) -> Generator[Event, Any, ComponentRef]:
        """Resolve ``name`` to a component reference (read-preferring)."""
        force_central = name.endswith("@central")
        if force_central:
            name = name[: -len("@central")]

        cache_key = name + (":w" if for_update else ":r") + (":c" if force_central else "")
        cached = self.home_cache.get(cache_key)
        if cached is not None:
            return cached

        ref: Optional[ComponentRef] = None
        if force_central and self.central is None:
            # This server *is* the central server: resolve locally.
            force_central = False
        if not force_central:
            if not for_update and name in self._readonly:
                ref = LocalRef(self._readonly[name])
            elif name in self.containers:
                ref = LocalRef(self.containers[name])

        if ref is None:
            central = self.central
            if central is None:
                raise NamingError(f"{name!r} is not deployed anywhere reachable from {self.name}")
            if not central.has_component(name):
                raise NamingError(f"{name!r} is not deployed on central server {central.name}")
            # Remote JNDI lookup against the central tree (unless cached).
            if self.costs.jndi_remote_lookup:
                yield from self._network.transfer(
                    self.node.name, central.node.name, JNDI_LOOKUP_REQUEST, kind="lookup"
                )
                yield from self._network.transfer(
                    central.node.name, self.node.name, JNDI_LOOKUP_RESPONSE, kind="lookup"
                )
                ctx.record_call("lookup", central.node.name, name, "jndi_lookup")
            target_container = central.containers.get(name) or central._readonly.get(name)
            ref = RemoteRef(self, central, target_container)

        self.home_cache.put(cache_key, ref)
        return ref

    def lookup_for_update(
        self, ctx: InvocationContext, name: str
    ) -> Generator[Event, Any, ComponentRef]:
        result = yield from self.lookup(ctx, name, for_update=True)
        return result

    def lookup_at(
        self, ctx: InvocationContext, name: str, target: "AppServer"
    ) -> Generator[Event, Any, ComponentRef]:
        """A direct reference to ``name`` on a specific server."""
        if target is self:
            return LocalRef(self.container(name))
        container = target.containers.get(name) or target._readonly.get(name)
        if container is None:
            raise NamingError(f"{name!r} is not deployed on {target.name}")
        cache_key = f"{name}@{target.name}"
        cached = self.home_cache.get(cache_key)
        if cached is not None:
            return cached
        ref = RemoteRef(self, target, container)
        self.home_cache.put(cache_key, ref)
        return ref
        yield  # pragma: no cover - resolution is currently synchronous

    # -- database access -----------------------------------------------------
    def datasource(self) -> DataSource:
        if self._datasource is None:
            if self.cluster is not None:
                self._datasource = self.cluster.datasource_for(
                    self.node.name, self.jdbc_config
                )
            elif self.db_server is None:
                raise BeanError(f"server {self.name} has no database configured")
            else:
                self._datasource = DataSource(
                    self._network, self.node.name, self.db_server, self.jdbc_config
                )
        return self._datasource

    def db_execute(
        self, ctx: InvocationContext, sql: str, params: Tuple = ()
    ) -> Generator[Event, Any, Any]:
        """Execute SQL against the application database, transaction-aware.

        Inside a container-managed transaction the statement runs on the
        transaction's enlisted connection (opened and ``BEGIN``-ed on
        first use); outside, it runs auto-commit on a pooled connection.
        """
        source = self.datasource()
        start = ctx.env.now
        # Automatic footprint derivation (level 6): report this
        # statement's read/write tables to any active collector, and
        # record writes on the transaction for the consistency bus.
        # ``parse_cached`` memoizes, so levels 1–5 (no collector, no
        # table tracking) never pay for a parse here.
        collector = ctx.footprint
        transaction = ctx.transaction
        propagator = self.update_propagator
        tracking = (
            transaction is not None
            and propagator is not None
            and propagator.tracks_table_writes
        )
        if collector is not None or tracking:
            reads, writes = statement_footprint(parse_cached(sql))
            if collector is not None:
                collector.add(reads, writes)
            if tracking:
                for table in writes:
                    transaction.record_table_write(table)
        statement_label = sql.split(None, 3)[0].lower() + ":" + _table_of(sql)
        span = ctx.start_span(
            "jdbc",
            statement_label,
            wide_area=self.is_wide_area(self.db_server.node.name),
            target=self.db_server.node.name,
            method="execute",
        )
        try:
            transaction = ctx.transaction
            if transaction is not None:
                key = ("jdbc", id(source))
                connection = transaction.resources.get(key)
                if connection is None:
                    connection = yield from source.connect()
                    connection.begin()
                    transaction.resources[key] = connection
                    transaction.enlist_connection(connection)
                result = yield from connection.execute(sql, params)
            else:
                connection = yield from source.connect()
                result = yield from connection.execute(sql, params)
                connection.close()
        finally:
            ctx.finish_span(span)
        ctx.record_call(
            "jdbc",
            self.db_server.node.name,
            statement_label,
            "execute",
            duration=ctx.env.now - start,
        )
        return result

    def can_query_locally(self, query_id: str) -> bool:
        """True when this server can answer the query without a WAN trip.

        The main server executes against the (LAN/loopback) database;
        edge servers answer only from an active query cache — application
        façades use this to decide whether to delegate to their central
        counterpart, as the edge ``Catalog`` bean does (§4.3).
        """
        if self.is_main:
            return True
        return self.query_cache is not None and self.query_cache.handles(query_id)

    def cached_query(
        self, ctx: InvocationContext, query_id: str, params: Tuple = ()
    ) -> Generator[Event, Any, List[dict]]:
        """Run a registered aggregate query, using the edge cache if present."""
        if self.query_cache is not None and self.query_cache.handles(query_id):
            rows = yield from self.query_cache.get(ctx, query_id, params)
            return rows
        sql = self.application.queries.get(query_id)
        if sql is None:
            raise BeanError(f"unknown query id {query_id!r}")
        if not self.is_main and self.central is not None:
            # No local cache: fetch through the central façade (one RMI).
            facade = yield from self.lookup(ctx, "UpdaterFacade@central")
            rows = yield from facade.call(ctx, "fetch_query", query_id, tuple(params))
            return rows
        result = yield from self.db_execute(ctx, sql, tuple(params))
        return [dict(row) for row in result.rows]

    # -- web tier ------------------------------------------------------------
    def serve(
        self, ctx: InvocationContext, request: WebRequest
    ) -> Generator[Event, Any, Response]:
        """Dispatch an HTTP request to the mapped servlet."""
        self.http_requests += 1
        servlet_name = self.application.servlets.get(request.page)
        if servlet_name is None:
            raise BeanError(f"no servlet mapped for page {request.page!r}")
        container = self.containers.get(servlet_name)
        if container is None:
            raise BeanError(
                f"servlet {servlet_name!r} (page {request.page!r}) is not "
                f"deployed on {self.name}"
            )
        response = yield from container.handle(ctx, request)
        return response


def _table_of(sql: str) -> str:
    """Best-effort table name extraction for trace labels."""
    tokens = sql.replace(",", " ").split()
    uppers = [t.upper() for t in tokens]
    for marker in ("FROM", "INTO", "UPDATE"):
        if marker in uppers:
            index = uppers.index(marker)
            if marker == "UPDATE" and index + 1 < len(tokens):
                return tokens[index + 1]
            if index + 1 < len(tokens):
                return tokens[index + 1]
    return "?"
