"""JMS-style publish/subscribe messaging.

The provider lives on one node (the main server in the paper's §4.5
deployment).  Publishing to a topic is cheap and local for the
read-write tier; the provider then delivers a copy of the message to
every subscriber asynchronously — each delivery is its own simulated
process crossing the WAN, so the publisher never blocks on edge
round trips.  "This approach completely avoids the blocking problem and
its scalability is limited only by the messaging middleware."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Tuple, TYPE_CHECKING

from ..simnet.kernel import Environment, Event
from .context import InvocationContext
from .marshalling import sizeof
from .resilience import RETRYABLE_ERRORS, RmiTimeout, backoff_delay

if TYPE_CHECKING:  # pragma: no cover
    from .server import AppServer

__all__ = ["Message", "Topic", "JmsProvider"]

_message_ids = itertools.count(1)


@dataclass
class Message:
    """A JMS message: opaque body plus delivery metadata."""

    topic: str
    body: Any
    published_at: float = 0.0
    id: int = field(default_factory=lambda: next(_message_ids))

    def wire_size(self) -> int:
        return 64 + sizeof(self.body)


class Topic:
    """A named topic with durable-enough subscriptions for this study."""

    def __init__(self, name: str):
        self.name = name
        # (subscriber AppServer, container) pairs.
        self.subscribers: List[Tuple[Any, Any]] = []
        self.published = 0
        self.delivered = 0

    def subscribe(self, server: Any, container: Any) -> None:
        self.subscribers.append((server, container))


class JmsProvider:
    """The messaging broker bound to a host node."""

    def __init__(self, env: Environment, host_server: "AppServer"):
        self.env = env
        self.host_server = host_server
        self.topics: Dict[str, Topic] = {}
        self.in_flight = 0
        self.delivery_latency_total = 0.0
        self.deliveries = 0
        self.metrics = None  # MetricsRegistry, set by distribute()
        # Redelivery + dead-letter queue: a delivery that keeps hitting
        # transport faults is retried with backoff up to the cost
        # profile's budget, then parked here as (topic, message id,
        # subscriber) — the update is *dropped* and the subscriber's
        # replicas go stale until a later update lands.
        self.redeliveries = 0
        self.dead_letters: List[Tuple[str, int, str]] = []

    def topic(self, name: str) -> Topic:
        existing = self.topics.get(name)
        if existing is None:
            existing = Topic(name)
            self.topics[name] = existing
        return existing

    def publish(
        self, ctx: InvocationContext, topic_name: str, body: Any
    ) -> Generator[Event, Any, Message]:
        """Publish; returns once the broker has accepted the message.

        Deliveries to subscribers proceed in detached processes — the
        publisher does not wait for them.
        """
        topic = self.topic(topic_name)
        message = Message(topic=topic_name, body=body, published_at=ctx.env.now)
        publisher_node = ctx.server.node.name
        broker_node = self.host_server.node.name
        span = ctx.start_span(
            "jms",
            f"publish {topic_name}",
            wide_area=ctx.server.is_wide_area(broker_node),
            target=topic_name,
            method="publish",
        )
        try:
            yield from ctx.cpu(ctx.costs.jms_publish_cpu)
            if publisher_node != broker_node:
                yield from ctx.server.network.transfer(
                    publisher_node, broker_node, message.wire_size(), kind="jms"
                )
        finally:
            ctx.finish_span(span)
        topic.published += 1
        ctx.record_call("jms", broker_node, topic_name, "publish")
        if self.metrics is not None:
            self.metrics.histogram("jms.topic_depth").observe(self.in_flight)
        for subscriber_server, container in topic.subscribers:
            self.in_flight += 1
            self.env.process(
                self._deliver(
                    ctx,
                    message,
                    topic,
                    subscriber_server,
                    container,
                    parent_span_id=span.id if span is not None else None,
                ),
                name=f"jms-delivery-{message.id}-{subscriber_server.name}",
            )
        return message

    def _deliver(
        self,
        ctx: InvocationContext,
        message: Message,
        topic: Topic,
        subscriber_server: Any,
        container: Any,
        parent_span_id=None,
    ) -> Generator[Event, Any, None]:
        broker_node = self.host_server.node.name
        subscriber_node = subscriber_server.node.name
        # Deliveries are asynchronous: the span attaches to the *publish*
        # span explicitly so the causal tree survives the detached process.
        span = ctx.start_span(
            "jms-delivery",
            f"deliver {topic.name}",
            node=subscriber_node,
            wide_area=self.host_server.is_wide_area(subscriber_node),
            target=topic.name,
            method="on_message",
            parent_id=parent_span_id,
        )
        costs = self.host_server.costs
        stats = self.host_server.resilience
        attempt = 0
        try:
            while True:
                attempt += 1
                try:
                    if broker_node != subscriber_node:
                        yield from self.host_server.network.transfer(
                            broker_node, subscriber_node, message.wire_size(), kind="jms"
                        )
                    delivery_ctx = ctx.at_server(subscriber_server)
                    if span is not None:
                        delivery_ctx.span_id = span.id  # fresh context; bind in place
                    yield from delivery_ctx.cpu(delivery_ctx.costs.mdb_dispatch_cpu)
                    yield from container.invoke(delivery_ctx, "on_message", (message,))
                    break
                except RETRYABLE_ERRORS + (RmiTimeout,):
                    if stats is not None:
                        # The subscriber missed an update: stale from the
                        # first failed attempt until something lands.
                        stats.mark_stale(subscriber_server.name, self.env.now)
                    if attempt > costs.jms_max_redeliveries:
                        self.dead_letters.append(
                            (topic.name, message.id, subscriber_server.name)
                        )
                        if stats is not None:
                            stats.jms_dead_lettered += 1
                            stats.dropped_updates += 1
                        return
                    self.redeliveries += 1
                    if stats is not None:
                        stats.jms_redeliveries += 1
                    yield self.env.sleep(
                        backoff_delay(
                            costs.jms_redelivery_backoff_ms,
                            costs.rmi_backoff_cap_ms,
                            attempt,
                        )
                    )
            topic.delivered += 1
            self.deliveries += 1
            if stats is not None:
                # A successful delivery ends any open staleness window.
                stats.mark_fresh(subscriber_server.name, self.env.now)
            lag = self.env.now - message.published_at
            self.delivery_latency_total += lag
            if self.metrics is not None:
                self.metrics.histogram("jms.delivery_lag_ms").observe(lag)
        finally:
            self.in_flight -= 1
            ctx.finish_span(span)

    def mean_delivery_latency(self) -> float:
        if not self.deliveries:
            return 0.0
        return self.delivery_latency_total / self.deliveries
