"""Deployment descriptors — standard and *extended* (section 5).

The standard part mirrors ejb-jar.xml: component kind, transaction
attribute, persistence type, remote/local interface exposure.  The
extended part is the paper's proposal: declarative read-mostly caching
(``ReadMostlyDescriptor``) and query caching (``QueryCacheDescriptor``)
that containers implement automatically, so "application deployers need
only declaratively express desired component behavior".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from ..rdbms.schema import TableSchema

__all__ = [
    "ComponentKind",
    "TxAttribute",
    "Persistence",
    "UpdateMode",
    "RefreshMode",
    "ReadMostlyDescriptor",
    "QueryCacheDescriptor",
    "ComponentDescriptor",
    "ApplicationDescriptor",
    "DescriptorError",
]


class DescriptorError(Exception):
    """Raised for inconsistent descriptor definitions."""


class ComponentKind(Enum):
    STATELESS_SESSION = "stateless-session"
    STATEFUL_SESSION = "stateful-session"
    ENTITY = "entity"
    MESSAGE_DRIVEN = "message-driven"
    SERVLET = "servlet"


class TxAttribute(Enum):
    REQUIRED = "Required"
    REQUIRES_NEW = "RequiresNew"
    NOT_SUPPORTED = "NotSupported"
    SUPPORTS = "Supports"


class Persistence(Enum):
    BMP = "bean-managed"
    CMP = "container-managed"


class UpdateMode(Enum):
    """How updates reach read-only replicas (extended descriptor, §5)."""

    SYNC = "synchronous"    # blocking push: zero staleness (§4.3)
    ASYNC = "asynchronous"  # JMS topic + MDB façade (§4.5)


class RefreshMode(Enum):
    """How a stale replica re-acquires state."""

    PUSH = "push"  # new state travels with the invalidation
    PULL = "pull"  # replica queries the remote façade on next use


@dataclass(frozen=True)
class ReadMostlyDescriptor:
    """Extended descriptor: deploy read-only replicas of an entity bean.

    ``updater`` names the read-write bean whose committed writes are
    propagated.  Consistency knobs mirror the paper's configurations.
    """

    updater: str
    update_mode: UpdateMode = UpdateMode.SYNC
    refresh_mode: RefreshMode = RefreshMode.PUSH
    # Optional relaxed-consistency bound (TACT-style, §5); None = propagate
    # immediately.  Only meaningful for ASYNC updates.
    staleness_bound_ms: Optional[float] = None


@dataclass(frozen=True)
class QueryCacheDescriptor:
    """Extended descriptor: cache one parameterized query at edge servers.

    ``invalidated_by`` lists the *tables* whose committed writes
    invalidate cached results — "operations that cause query result
    invalidations/updates should be specified as well" (§5).
    ``key_of_update`` maps an update event to the cache-entry parameter
    tuple it invalidates; returning None invalidates every entry of the
    query.
    """

    query_id: str
    sql: str
    invalidated_by: Tuple[str, ...] = ()
    refresh_mode: RefreshMode = RefreshMode.PULL
    update_mode: UpdateMode = UpdateMode.SYNC
    # maps an update event to the cache key(s) it invalidates; None = all.
    key_of_update: Optional[Callable] = None


@dataclass
class ComponentDescriptor:
    """One component's deployment descriptor."""

    name: str
    kind: ComponentKind
    impl: type
    tx_attribute: TxAttribute = TxAttribute.REQUIRED
    remote_interface: bool = True
    local_interface: bool = True
    # -- entity-only fields ---------------------------------------------------
    table: Optional[str] = None
    persistence: Persistence = Persistence.CMP
    read_mostly: Optional[ReadMostlyDescriptor] = None
    # -- message-driven-only fields --------------------------------------------
    topic: Optional[str] = None
    # -- placement hint: pattern level at which this component is also
    #    deployed on edge servers (None = kind-based default) ---------------
    edge_from_level: Optional[int] = None
    # -- extended descriptor: business methods whose results edge
    #    containers may cache transaction-consistently (level 6).  Read/
    #    write table footprints are *not* declared here — they are derived
    #    automatically from the JDBC statements the method executes.
    cached_methods: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.kind == ComponentKind.ENTITY and self.table is None:
            raise DescriptorError(f"entity bean {self.name!r} needs a table")
        if self.kind != ComponentKind.ENTITY and self.table is not None:
            raise DescriptorError(f"non-entity {self.name!r} must not map a table")
        if self.kind == ComponentKind.MESSAGE_DRIVEN and self.topic is None:
            raise DescriptorError(f"message-driven bean {self.name!r} needs a topic")
        if self.read_mostly is not None and self.kind != ComponentKind.ENTITY:
            raise DescriptorError(f"read-mostly descriptor on non-entity {self.name!r}")
        if self.cached_methods and self.kind != ComponentKind.STATELESS_SESSION:
            raise DescriptorError(
                f"cached-methods annotation on non-stateless-session {self.name!r}"
            )
        if not self.remote_interface and not self.local_interface:
            raise DescriptorError(f"component {self.name!r} has no interface at all")

    @property
    def is_entity(self) -> bool:
        return self.kind == ComponentKind.ENTITY

    @property
    def is_facade(self) -> bool:
        """Façades are the components that may be invoked remotely (§5)."""
        return self.remote_interface and self.kind in (
            ComponentKind.STATELESS_SESSION,
            ComponentKind.STATEFUL_SESSION,
            ComponentKind.MESSAGE_DRIVEN,
        )


@dataclass
class ApplicationDescriptor:
    """The whole application: components, schemas, query caches, pages."""

    name: str
    components: Dict[str, ComponentDescriptor] = field(default_factory=dict)
    schemas: Dict[str, TableSchema] = field(default_factory=dict)
    # All named aggregate queries (always available for central execution).
    queries: Dict[str, str] = field(default_factory=dict)  # query_id -> SQL
    # The subset of queries cached at edges (active from level 4).
    query_caches: Dict[str, QueryCacheDescriptor] = field(default_factory=dict)
    servlets: Dict[str, str] = field(default_factory=dict)  # page name -> component

    def add(self, descriptor: ComponentDescriptor) -> ComponentDescriptor:
        if descriptor.name in self.components:
            raise DescriptorError(f"duplicate component {descriptor.name!r}")
        self.components[descriptor.name] = descriptor
        return descriptor

    def add_schema(self, schema: TableSchema) -> None:
        if schema.name in self.schemas:
            raise DescriptorError(f"duplicate schema {schema.name!r}")
        self.schemas[schema.name] = schema

    def add_query(self, query_id: str, sql: str) -> None:
        if query_id in self.queries:
            raise DescriptorError(f"duplicate query {query_id!r}")
        self.queries[query_id] = sql

    def add_query_cache(self, descriptor: QueryCacheDescriptor) -> None:
        if descriptor.query_id in self.query_caches:
            raise DescriptorError(f"duplicate query cache {descriptor.query_id!r}")
        self.queries.setdefault(descriptor.query_id, descriptor.sql)
        self.query_caches[descriptor.query_id] = descriptor

    def map_page(self, page: str, servlet_component: str) -> None:
        if servlet_component not in self.components:
            raise DescriptorError(f"page {page!r} maps to unknown {servlet_component!r}")
        if self.components[servlet_component].kind != ComponentKind.SERVLET:
            raise DescriptorError(f"page {page!r} must map to a servlet")
        self.servlets[page] = servlet_component

    def component(self, name: str) -> ComponentDescriptor:
        try:
            return self.components[name]
        except KeyError:
            raise DescriptorError(f"unknown component {name!r}") from None

    def entities(self) -> List[ComponentDescriptor]:
        return [c for c in self.components.values() if c.is_entity]

    def validate(self) -> None:
        """Cross-component consistency checks."""
        for descriptor in self.components.values():
            if descriptor.is_entity and descriptor.table not in self.schemas:
                raise DescriptorError(
                    f"entity {descriptor.name!r} maps missing table {descriptor.table!r}"
                )
            if descriptor.read_mostly is not None:
                updater = descriptor.read_mostly.updater
                if updater != descriptor.name and updater not in self.components:
                    raise DescriptorError(
                        f"read-mostly bean {descriptor.name!r} names unknown "
                        f"updater {updater!r}"
                    )
        for page, servlet in self.servlets.items():
            if servlet not in self.components:
                raise DescriptorError(f"page {page!r} maps to unknown {servlet!r}")
