"""The unified edge-consistency substrate.

Levels 3–5 each introduced a mechanism that keeps derived state at edge
servers consistent with writes committed at the main server: read-only
entity replicas (§4.3), aggregate query caches (§4.4), and the JMS
asynchronous variant of their maintenance traffic (§4.5).  Those
mechanisms share one shape — *edge-held state keyed by what it was
derived from, invalidated when the underlying tables change* — and this
module names that shape:

* every mechanism is a :class:`ConsistencyInterceptor` registered with
  its server's :class:`EdgeConsistencyManager`;
* one shared **invalidation bus** (the existing
  :class:`~repro.middleware.updates.UpdatePropagator` payloads, sync
  push or JMS) delivers committed writes to the chain — the updater
  façade dispatches an arriving payload through the manager instead of
  hand-enumerating replica containers and the query cache;
* read/write **table footprints** are collected automatically at the
  JDBC layer through :class:`FootprintCollector` (threaded on
  ``InvocationContext.footprint``), never hand-declared.

On top of the substrate sits the level-6 extension, **transactional
method caching** (Pfeifer & Lockemann, "Theory and Practice of
Transactional Method Caching"): edge containers cache whole
``(bean, method, args) → result`` entries for annotated façade methods,
learn each method's table footprint from the statements it actually
executes, and invalidate transaction-consistently when the bus reports
a commit touching those tables.

Consistency modes mirror the paper's sync-vs-JMS spectrum:

* **strict** (``UpdateMode.SYNC``): zero stale reads.  The writer's
  commit blocks until every edge acked the invalidation, so in
  failure-free operation a read after commit completion always sees the
  invalidation.  Failures are covered by two guards: per-target payload
  *sequence numbers* (a push the RMI layer lost leaves a gap; the next
  arriving payload reveals it and the cache drops everything), and a
  *freshness lease* — the cache serves hits only while the newest
  payload it received was *stamped* within ``lease_ms``.  With
  ``lease_ms`` no larger than the RMI deadline, a write whose push
  failed cannot complete its commit before the lease that could have
  served its stale entry has expired.
* **bounded** (``UpdateMode.ASYNC``): invalidations arrive via JMS with
  the publish timestamp; hits served between a commit and the arrival
  of its invalidation are counted as stale serves and the propagation
  window is measured — the observable staleness the availability report
  surfaces.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple, TYPE_CHECKING

from ..rdbms.lru import LruCache
from ..simnet.kernel import Event
from .context import InvocationContext
from .descriptors import UpdateMode

if TYPE_CHECKING:  # pragma: no cover
    from .server import AppServer
    from .updates import UpdatePayload

__all__ = [
    "FootprintCollector",
    "ConsistencyInterceptor",
    "ReplicaInterceptor",
    "QueryCacheInterceptor",
    "TransactionalMethodCache",
    "MethodCacheStats",
    "EdgeConsistencyManager",
    "METHOD_CACHE_CAPACITY",
]

# Default bound on live (bean, method, args) entries per server.  Large
# enough that the RUBiS/petstore working sets never evict in the paper
# sweeps; the knob exists for memory-bounded deployments.
METHOD_CACHE_CAPACITY = 4096

# Hit timestamps older than this can never be inside a measured
# staleness window (JMS redelivery gives up long before), so per-entry
# hit logs are pruned past it — bounded memory for hot entries.
_HIT_LOG_HORIZON_MS = 30_000.0


class FootprintCollector:
    """Accumulates the tables a unit of work read and wrote.

    Threaded through :attr:`InvocationContext.footprint`; contributions
    come from the JDBC funnel (parsed statement ASTs), read-only replica
    containers (their mapped table) and query caches (their SQL's
    tables).  Order is first-touch, deduplicated — deterministic for a
    deterministic simulation.
    """

    __slots__ = ("tables_read", "tables_written")

    def __init__(self):
        self.tables_read: List[str] = []
        self.tables_written: List[str] = []

    def add(self, reads=(), writes=()) -> None:
        for table in reads:
            if table not in self.tables_read:
                self.tables_read.append(table)
        for table in writes:
            if table not in self.tables_written:
                self.tables_written.append(table)


class ConsistencyInterceptor:
    """One edge-state mechanism plugged into the consistency chain."""

    name = "interceptor"

    def apply(self, ctx: InvocationContext, payload: "UpdatePayload") -> None:
        """Install/apply one bus payload into this mechanism's state."""
        raise NotImplementedError

    def drop_all(self) -> None:  # pragma: no cover - default no-op
        """Server-process crash: volatile state is gone."""


class ReplicaInterceptor(ConsistencyInterceptor):
    """Read-only entity replicas (§4.3) as a chain member."""

    name = "replicas"

    def __init__(self, server: "AppServer"):
        self.server = server

    def apply(self, ctx: InvocationContext, payload: "UpdatePayload") -> None:
        server = self.server
        for event in payload.events:
            container = server.readonly_container(event.component)
            if container is None:
                continue
            if event.state or event.deleted:
                container.apply_update(event)
            else:
                container.invalidate(event.primary_key)

    def drop_all(self) -> None:
        for container in self.server._readonly.values():
            container.drop_all()


class QueryCacheInterceptor(ConsistencyInterceptor):
    """Aggregate query result caches (§4.4) as a chain member."""

    name = "query_cache"

    def __init__(self, server: "AppServer"):
        self.server = server

    def apply(self, ctx: InvocationContext, payload: "UpdatePayload") -> None:
        cache = self.server.query_cache
        if cache is None:
            return
        for query_id, params in payload.invalidations:
            cache.invalidate(query_id, params)
        for query_id, params, rows in payload.query_refreshes:
            cache.apply_refresh(query_id, params, rows)

    def drop_all(self) -> None:
        cache = self.server.query_cache
        if cache is not None:
            cache.drop_all()


class MethodCacheStats:
    """Counters for one server's transactional method cache."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0   # entries dropped by bus payloads
        self.stale_serves = 0    # hits that returned provably stale results
        self.seq_gaps = 0        # lost-push detections (strict mode)
        self.drops = 0           # whole-cache drops (seq gap or crash)
        self.rejected_stores = 0  # results not cached: method wrote tables
        self.missed_payloads = 0  # failed pushes observed (ground truth)
        self.staleness_events = 0
        self.staleness_total_ms = 0.0
        self.staleness_max_ms = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "stale_serves": self.stale_serves,
            "seq_gaps": self.seq_gaps,
            "drops": self.drops,
            "rejected_stores": self.rejected_stores,
            "missed_payloads": self.missed_payloads,
            "staleness_events": self.staleness_events,
            "staleness_total_ms": round(self.staleness_total_ms, 3),
            "staleness_max_ms": round(self.staleness_max_ms, 3),
        }


class _Entry:
    __slots__ = ("result", "tables_read", "stored_at")

    def __init__(self, result: Any, tables_read: Tuple[str, ...], stored_at: float):
        self.result = result
        self.tables_read = tables_read
        self.stored_at = stored_at


def _copy_result(value: Any) -> Any:
    """Structural copy so cached results cannot alias caller mutations."""
    if isinstance(value, dict):
        return {key: _copy_result(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_copy_result(item) for item in value]
    if isinstance(value, tuple):
        return tuple(_copy_result(item) for item in value)
    return value


class TransactionalMethodCache(ConsistencyInterceptor):
    """Level 6: (bean, method, args) → result caching at one edge server.

    Entries carry the read-table footprint *learned* from the JDBC
    statements the method executed on its first (miss) invocation; a
    method observed writing any table is never cached (its writes would
    be silently skipped on hits) and is recorded as a design-rule R7
    violation.  Bus payloads invalidate every entry whose footprint
    intersects the committed write set.
    """

    name = "method_cache"
    HIT_CPU_MS = 0.02  # local lookup, same as a query-cache hit

    def __init__(
        self,
        server: "AppServer",
        mode: UpdateMode = UpdateMode.SYNC,
        lease_ms: Optional[float] = None,
        capacity: int = METHOD_CACHE_CAPACITY,
    ):
        self.server = server
        self.mode = mode
        self.strict = mode == UpdateMode.SYNC
        # Strict-mode freshness lease; must not exceed the RMI deadline
        # (the zero-staleness argument in the module docstring needs
        # lease_ms <= rmi_timeout_ms).
        self.lease_ms = float(
            server.costs.rmi_timeout_ms if lease_ms is None else lease_ms
        )
        self.capacity = capacity
        self._entries = LruCache(capacity)
        self._by_table: Dict[str, Set[tuple]] = {}
        self._methods: Set[Tuple[str, str]] = set()
        self._no_store: Set[Tuple[str, str]] = set()
        # (component, method) -> tables it wrote: the R7 evidence.
        self.write_violations: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        # Bounded mode: per-entry serve timestamps, for counting hits
        # that landed inside a commit→invalidation propagation window.
        self._hit_log: Dict[tuple, List[float]] = {}
        # Strict mode ground truth: entries whose invalidating push the
        # RMI layer lost (measurement only — never consulted to serve).
        self._compromised: Dict[tuple, float] = {}
        # Stamp of the newest bus payload received (strict lease gate).
        self._last_sent = server.env.now
        self._last_seq = 0
        self.stats = MethodCacheStats()

    # -- registration -----------------------------------------------------------
    def register(self, component: str, methods) -> None:
        for method in methods:
            self._methods.add((component, method))

    def intercepts(self, component: str, method: str) -> bool:
        return (component, method) in self._methods

    def registered_methods(self) -> List[Tuple[str, str]]:
        return sorted(self._methods)

    def entry_count(self) -> int:
        return len(self._entries)

    def footprint_of(self, component: str, method: str) -> Optional[Tuple[str, ...]]:
        """The learned read footprint of a cached method (None = no entry)."""
        for key in self._entries.keys():
            if key[0] == component and key[1] == method:
                return self._entries.peek(key).tables_read
        return None

    # -- call-path interception ---------------------------------------------------
    def _fresh_enough(self, now: float) -> bool:
        if not self.strict:
            return True
        return now - self._last_sent <= self.lease_ms

    def invoke_through(
        self, ctx: InvocationContext, container: Any, method: str, args: tuple
    ) -> Generator[Event, Any, Any]:
        """The cached call path: serve a hit, or run-and-learn on a miss."""
        component = container.descriptor.name
        if (component, method) in self._no_store:
            result = yield from container._invoke_direct(ctx, method, args)
            return result
        try:
            key = (component, method, args)
            entry = self._entries.get(key) if self._fresh_enough(ctx.env.now) else None
        except TypeError:  # unhashable argument: not cacheable
            result = yield from container._invoke_direct(ctx, method, args)
            return result

        if entry is not None:
            self.stats.hits += 1
            yield from ctx.cpu(self.HIT_CPU_MS)
            if ctx.footprint is not None:
                # A nested hit still contributes its reads to the
                # enclosing method's learned footprint.
                ctx.footprint.add(entry.tables_read, ())
            now = ctx.env.now
            if self.strict:
                if key in self._compromised:
                    self.stats.stale_serves += 1
            else:
                log = self._hit_log.setdefault(key, [])
                log.append(now)
                horizon = now - _HIT_LOG_HORIZON_MS
                while log and log[0] < horizon:
                    log.pop(0)
            return _copy_result(entry.result)

        self.stats.misses += 1
        collector = FootprintCollector()
        result = yield from container._invoke_direct(
            ctx.with_footprint(collector), method, args
        )
        if ctx.footprint is not None:
            ctx.footprint.add(collector.tables_read, collector.tables_written)
        if collector.tables_written:
            self._no_store.add((component, method))
            self.write_violations.setdefault(
                (component, method), tuple(collector.tables_written)
            )
            self.stats.rejected_stores += 1
            return result
        self._store(key, result, tuple(collector.tables_read), ctx.env.now)
        return result

    def _store(
        self, key: tuple, result: Any, tables_read: Tuple[str, ...], now: float
    ) -> None:
        evicted = self._entries.put(key, _Entry(_copy_result(result), tables_read, now))
        self.stats.stores += 1
        for table in tables_read:
            self._by_table.setdefault(table, set()).add(key)
        if evicted is not None:
            evicted_key, evicted_entry = evicted
            self.stats.evictions += 1
            self._forget(evicted_key, evicted_entry.tables_read)

    def _forget(self, key: tuple, tables_read: Tuple[str, ...]) -> None:
        for table in tables_read:
            keys = self._by_table.get(table)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_table[table]
        self._hit_log.pop(key, None)
        self._compromised.pop(key, None)

    # -- bus delivery -----------------------------------------------------------
    @staticmethod
    def _payload_tables(payload: "UpdatePayload") -> List[str]:
        tables = list(payload.tables)
        for event in payload.events:
            if event.table not in tables:
                tables.append(event.table)
        return tables

    def apply(self, ctx: InvocationContext, payload: "UpdatePayload") -> None:
        now = self.server.env.now
        if payload.seq is not None:
            if payload.seq != self._last_seq + 1:
                # A push between the last one we saw and this one never
                # arrived: its invalidations are lost, so nothing held
                # here can be trusted any more.
                self.stats.seq_gaps += 1
                self.drop_all()
            if payload.seq > self._last_seq:
                self._last_seq = payload.seq
        if payload.sent_at is not None and payload.sent_at > self._last_sent:
            self._last_sent = payload.sent_at
        tables = self._payload_tables(payload)
        if tables:
            self._invalidate_tables(tables, payload.sent_at, now)

    def _invalidate_tables(
        self, tables: List[str], sent_at: Optional[float], now: float
    ) -> None:
        affected: List[tuple] = []
        for table in tables:
            keys = self._by_table.get(table)
            if keys:
                affected.extend(keys)
        if not affected:
            return
        window_counted = False
        for key in dict.fromkeys(affected):
            entry = self._entries.pop(key)
            if entry is None:
                continue
            self.stats.invalidations += 1
            if not self.strict and sent_at is not None:
                log = self._hit_log.get(key)
                if log:
                    self.stats.stale_serves += sum(1 for t in log if t > sent_at)
                if not window_counted:
                    window = now - sent_at
                    self.stats.staleness_events += 1
                    self.stats.staleness_total_ms += window
                    if window > self.stats.staleness_max_ms:
                        self.stats.staleness_max_ms = window
                    window_counted = True
            self._forget(key, entry.tables_read)

    def mark_missed(self, payload: "UpdatePayload", now: float) -> None:
        """Ground-truth instrumentation: a push to this server was lost.

        Called by the propagator (which *knows* the push failed) so that
        any later hit on an entry the lost payload would have
        invalidated can be counted as a stale serve.  Strict mode's
        lease/sequence guards are supposed to make that count stay zero
        — the fault-injection suite asserts exactly that.
        """
        self.stats.missed_payloads += 1
        tables = set(self._payload_tables(payload))
        if not tables:
            return
        for table in tables:
            for key in self._by_table.get(table, ()):
                self._compromised.setdefault(key, now)

    def drop_all(self) -> None:
        """Lose every entry (crash, or a detected lost invalidation)."""
        self._entries.clear()
        self._by_table.clear()
        self._hit_log.clear()
        self._compromised.clear()
        self.stats.drops += 1


class EdgeConsistencyManager:
    """The per-server interceptor chain behind the invalidation bus.

    Replica containers and the query cache are standing members (they
    observe the server's live registries, so deploying a replica or
    enabling the query cache needs no registration step); the
    transactional method cache joins when a deployment activates it.
    An arriving bus payload is applied to every member, in chain order.
    """

    def __init__(self, server: "AppServer"):
        self.server = server
        self._chain: List[ConsistencyInterceptor] = [
            ReplicaInterceptor(server),
            QueryCacheInterceptor(server),
        ]
        self.payloads_delivered = 0

    def register(self, interceptor: ConsistencyInterceptor) -> None:
        self._chain.append(interceptor)

    def interceptors(self) -> List[ConsistencyInterceptor]:
        return list(self._chain)

    def deliver(self, ctx: InvocationContext, payload: "UpdatePayload") -> bool:
        self.payloads_delivered += 1
        for interceptor in self._chain:
            interceptor.apply(ctx, payload)
        return True
