"""Message-driven bean container.

An MDB is the asynchronous flavour of the façade pattern (§5): it
consumes messages from a JMS topic and performs work under its own
container-managed transaction.  §4.5 uses an ``UpdateSubscriber`` MDB on
each edge server to apply pushed updates to read-only beans and query
caches.
"""

from __future__ import annotations

from typing import Any, Generator

from ..simnet.kernel import Event
from .context import InvocationContext
from .descriptors import ComponentDescriptor, ComponentKind
from .ejb import BeanError, run_business_method
from .session import BaseContainer

__all__ = ["MessageDrivenContainer"]


class MessageDrivenContainer(BaseContainer):
    """Container for one message-driven bean type."""

    def __init__(self, server: Any, descriptor: ComponentDescriptor):
        if descriptor.kind != ComponentKind.MESSAGE_DRIVEN:
            raise BeanError(f"{descriptor.name!r} is not a message-driven bean")
        super().__init__(server, descriptor)
        self._instance = descriptor.impl()
        self.messages_handled = 0

    def invoke(
        self, ctx: InvocationContext, method: str, args: tuple, identity: Any = None
    ) -> Generator[Event, Any, Any]:
        if method != "on_message":
            raise BeanError(
                f"message-driven bean {self.name!r} only accepts on_message, "
                f"got {method!r}"
            )
        self.invocations += 1

        def body(inner_ctx):
            yield from inner_ctx.cpu(inner_ctx.costs.bean_method_base)
            result = yield from run_business_method(
                self._instance, "on_message", inner_ctx, args
            )
            return result

        result = yield from self._run_demarcated(ctx, body)
        self.messages_handled += 1
        return result
