"""Invocation and transaction contexts threaded through component code.

Every component method in this middleware is a generator taking an
:class:`InvocationContext` as its first argument.  The context knows
*where* the code is running (which application server), *why* (which
page request), and *within what* (which transaction) — so the same
application code runs unmodified under any deployment, and distribution
costs arise purely from placement.  That placement-obliviousness is the
heart of the paper's container-mediated approach.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

from ..simnet.kernel import Environment, Event

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from .costs import MiddlewareCosts
    from .server import AppServer
    from ..obs.spans import Span, SpanRecorder
    from ..simnet.monitor import Trace

__all__ = [
    "RequestInfo",
    "UpdateEvent",
    "TransactionContext",
    "InvocationContext",
    "TransactionError",
]


class TransactionError(Exception):
    """Raised on transaction lifecycle misuse in the middleware layer."""


_request_ids = itertools.count(1)
_transaction_ids = itertools.count(1)


def reset_ids() -> None:
    """Restart request/transaction numbering (called per experiment cell).

    Ids are only meaningful within one run; restarting them per cell
    makes exported span tables independent of how many cells the hosting
    process ran before — the serial/parallel byte-identity contract.
    """
    global _request_ids, _transaction_ids
    _request_ids = itertools.count(1)
    _transaction_ids = itertools.count(1)


@dataclass
class RequestInfo:
    """Identity of the client page request being served."""

    page: str
    client_group: str
    session_id: str
    client_node: str
    id: int = field(default_factory=lambda: next(_request_ids))


@dataclass
class UpdateEvent:
    """One committed write that must reach read-only replicas/caches.

    ``state`` is the full post-commit entity state (the paper notes that
    pushing only changed fields is an optimization; ``changed_fields``
    carries that information for the delta-push variant).
    """

    component: str
    table: str
    primary_key: Any
    state: Dict[str, Any]
    changed_fields: tuple = ()
    deleted: bool = False
    inserted: bool = False
    # True when ``state`` carries only the changed fields (the §4.3
    # "transferring only the changes" optimization).
    partial: bool = False


class TransactionContext:
    """A container-managed transaction spanning beans and the database.

    Collects: dirty entity instances to ``ejbStore`` at commit, JDBC
    connections to commit, and update events to propagate to edge
    replicas.  The commit sequence reproduces §4.3/§4.5: store, database
    commit, then *blocking* synchronous push (or non-blocking asynchronous
    publish) of replica updates.
    """

    def __init__(self, ctx: "InvocationContext", read_only_hint: bool = False):
        self.id = next(_transaction_ids)
        self.origin = ctx.server.name if ctx.server else "?"
        self.read_only = True  # flips on first write
        self.read_only_hint = read_only_hint
        self.state = "active"
        self._enlisted_entities: List[tuple] = []  # (container, instance)
        self._enlisted_seen: set = set()
        self._connections: List[Any] = []  # JdbcConnection, committed in order
        self.update_events: List[UpdateEvent] = []
        self.query_invalidations: List[tuple] = []  # (query_id, params-or-None)
        # Tables written by this transaction (first-write order).  The
        # consistency bus turns these into method-cache invalidations;
        # collection is free when no method caches are deployed.
        self.written_tables: List[str] = []
        # Scratch space for containers (per-tx entity instance caches,
        # enlisted JDBC connections by datasource, ...), keyed by owner.
        self.resources: Dict[Any, Any] = {}

    # -- enlistment -----------------------------------------------------------
    def enlist_entity(self, container: Any, instance: Any) -> None:
        key = (id(container), getattr(instance, "primary_key", id(instance)))
        if key in self._enlisted_seen:
            return
        self._enlisted_seen.add(key)
        self._enlisted_entities.append((container, instance))

    def enlist_connection(self, connection: Any) -> None:
        if connection not in self._connections:
            self._connections.append(connection)

    def mark_write(self) -> None:
        if self.read_only_hint:
            raise TransactionError("write inside a transaction hinted read-only")
        self.read_only = False

    def add_update_event(self, event: UpdateEvent) -> None:
        self.update_events.append(event)

    def add_query_invalidation(self, query_id: str, params: Optional[tuple]) -> None:
        self.query_invalidations.append((query_id, params))

    def record_table_write(self, table: str) -> None:
        if table and table not in self.written_tables:
            self.written_tables.append(table)

    # -- completion -----------------------------------------------------------
    def commit(self, ctx: "InvocationContext") -> Generator[Event, Any, None]:
        if self.state != "active":
            raise TransactionError(f"commit on a {self.state} transaction")
        # 1. Synchronize dirty (or all, with the unoptimized ejbStore
        #    behaviour) entity instances back to the database.
        for container, instance in self._enlisted_entities:
            yield from container.store_instance(ctx, self, instance)
        # 2. Commit every enlisted database connection.
        for connection in self._connections:
            if connection.session.in_transaction:
                yield from connection.commit()
            connection.close()
        self.state = "committed"
        # 3. Propagate updates to edge replicas (blocking iff synchronous).
        #    Propagation runs outside this (now completed) transaction —
        #    its refresh queries auto-commit on fresh connections.
        propagator = ctx.server.update_propagator if ctx.server else None
        if propagator is not None and (
            self.update_events
            or self.query_invalidations
            or (propagator.tracks_table_writes and self.written_tables)
        ):
            post_commit_ctx = ctx.in_transaction(None)
            yield from propagator.propagate(
                post_commit_ctx,
                self.update_events,
                self.query_invalidations,
                written_tables=self.written_tables,
            )

    def rollback(self, ctx: "InvocationContext") -> Generator[Event, Any, None]:
        if self.state != "active":
            raise TransactionError(f"rollback on a {self.state} transaction")
        for container, instance in self._enlisted_entities:
            container.discard_instance(instance)
        for connection in self._connections:
            if connection.session.in_transaction:
                yield from connection.rollback()
            connection.close()
        self.update_events.clear()
        self.query_invalidations.clear()
        self.written_tables.clear()
        self.state = "aborted"


class InvocationContext:
    """Where/why/within-what a component method is executing."""

    def __init__(
        self,
        env: Environment,
        server: "AppServer",
        request: RequestInfo,
        costs: "MiddlewareCosts",
        trace: Optional["Trace"] = None,
        transaction: Optional[TransactionContext] = None,
        depth: int = 0,
        spans: Optional["SpanRecorder"] = None,
        span_id: Optional[int] = None,
        footprint: Optional[Any] = None,
    ):
        self.env = env
        self.server = server
        self.request = request
        self.costs = costs
        self.trace = trace
        self.transaction = transaction
        self.depth = depth
        self.spans = spans
        self.span_id = span_id
        # Active table-footprint collector (see repro.middleware.consistency).
        # Travels across servers with the call — a delegated sub-call's
        # reads still belong to the caller's method footprint.
        self.footprint = footprint

    # -- derived contexts -----------------------------------------------------
    def at_server(self, server: "AppServer") -> "InvocationContext":
        """The context seen by the callee of a cross-server RMI call.

        The transaction does NOT propagate across servers: remote façade
        calls start their own container-managed transactions, which is
        how the EJB deployments in the paper behave (no distributed 2PC
        across the WAN).
        """
        return InvocationContext(
            env=self.env,
            server=server,
            request=self.request,
            costs=server.costs,
            trace=self.trace,
            transaction=None,
            depth=self.depth + 1,
            spans=self.spans,
            span_id=self.span_id,
            footprint=self.footprint,
        )

    def in_transaction(self, transaction: TransactionContext) -> "InvocationContext":
        return InvocationContext(
            env=self.env,
            server=self.server,
            request=self.request,
            costs=self.costs,
            trace=self.trace,
            transaction=transaction,
            depth=self.depth,
            spans=self.spans,
            span_id=self.span_id,
            footprint=self.footprint,
        )

    def with_footprint(self, footprint: Any) -> "InvocationContext":
        """The context seen by work whose table accesses ``footprint``
        collects (the method-cache miss path)."""
        return InvocationContext(
            env=self.env,
            server=self.server,
            request=self.request,
            costs=self.costs,
            trace=self.trace,
            transaction=self.transaction,
            depth=self.depth,
            spans=self.spans,
            span_id=self.span_id,
            footprint=footprint,
        )

    def in_span(self, span: Optional["Span"]) -> "InvocationContext":
        """The context seen by work nested under ``span``.

        Returns ``self`` unchanged when tracing is off (``span`` None),
        so instrumented call sites stay allocation-free in the common
        untraced path.
        """
        if span is None:
            return self
        return InvocationContext(
            env=self.env,
            server=self.server,
            request=self.request,
            costs=self.costs,
            trace=self.trace,
            transaction=self.transaction,
            depth=self.depth,
            spans=self.spans,
            span_id=span.id,
            footprint=self.footprint,
        )

    # -- effects -----------------------------------------------------------
    def cpu(self, work_ms: float) -> Generator[Event, None, None]:
        """Charge CPU time on the current server's node.

        Inlines :meth:`Node.compute` — every RMI/servlet invocation passes
        through here, and the extra generator frame is measurable.
        """
        if work_ms == 0:
            return
        if work_ms < 0:
            raise ValueError("work_ms must be non-negative")
        node = self.server.node
        yield from node.cpu.use(work_ms / node.cpu_speed)

    def lookup(self, component_name: str):
        """Resolve a component reference (see AppServer.lookup).

        Generator: remote JNDI lookups cost a network round trip unless
        the EJBHomeFactory cache already holds the home stub.
        """
        return self.server.lookup(self, component_name)

    def start_span(
        self,
        kind: str,
        name: str,
        node: Optional[str] = None,
        wide_area: bool = False,
        target: Optional[str] = None,
        method: Optional[str] = None,
        parent_id: Optional[int] = None,
    ):
        """Open a child span of the current one; None when tracing is off.

        ``node`` defaults to the executing server's node; ``parent_id``
        defaults to this context's span (pass one explicitly to attach
        asynchronous work, e.g. a JMS delivery, to its publish span).
        """
        if self.spans is None:
            return None
        request = self.request
        return self.spans.start_span(
            kind=kind,
            name=name,
            node=node if node is not None else (self.server.node.name if self.server else "?"),
            time=self.env.now,
            parent_id=parent_id if parent_id is not None else self.span_id,
            request_id=request.id if request else None,
            wide_area=wide_area,
            page=request.page if request else None,
            group=request.client_group if request else None,
            target=target,
            method=method,
        )

    def finish_span(self, span) -> None:
        if span is not None:
            self.spans.finish_span(span, self.env.now)

    def record_call(
        self, kind: str, dst_node: str, target: str, method: str, duration: float = 0.0
    ) -> None:
        if self.trace is None:
            return
        from ..simnet.monitor import CallRecord

        src = self.server.node.name
        self.trace.record(
            CallRecord(
                time=self.env.now,
                kind=kind,
                src_node=src,
                dst_node=dst_node,
                target=target,
                method=method,
                wide_area=self.server.is_wide_area(dst_node),
                page=self.request.page if self.request else None,
                request_id=self.request.id if self.request else None,
                duration=duration,
            )
        )
