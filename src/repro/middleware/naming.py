"""JNDI-style naming: per-server registries and the home-stub cache.

Each application server has a local JNDI tree holding the components
deployed on it.  Resolving a component that lives elsewhere requires a
remote lookup against the authoritative (main) server's tree — a network
round trip — unless the *EJBHomeFactory* cache already holds the stub.
Caching home stubs "to avoid unnecessary trips to the JNDI tree" is one
of the paper's remote-façade optimizations (§4.2).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["JndiRegistry", "HomeCache", "NamingError"]

JNDI_LOOKUP_REQUEST = 140
JNDI_LOOKUP_RESPONSE = 420  # a marshalled home stub


class NamingError(Exception):
    """Raised when a name cannot be resolved anywhere."""


class JndiRegistry:
    """One server's JNDI tree: name -> locally deployed container."""

    def __init__(self, server_name: str):
        self.server_name = server_name
        self._bindings: Dict[str, Any] = {}
        self.lookups = 0

    def bind(self, name: str, container: Any) -> None:
        if name in self._bindings:
            raise NamingError(f"{name!r} already bound on {self.server_name}")
        self._bindings[name] = container

    def rebind(self, name: str, container: Any) -> None:
        self._bindings[name] = container

    def unbind(self, name: str) -> None:
        self._bindings.pop(name, None)

    def resolve(self, name: str) -> Optional[Any]:
        self.lookups += 1
        return self._bindings.get(name)

    def names(self):
        return sorted(self._bindings)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings


class HomeCache:
    """EJBHomeFactory: memoizes resolved references per server.

    With the cache disabled (the ablation baseline), every ``lookup``
    re-resolves — and pays the remote round trip when the component's
    home is on another server.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._cache: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    def get(self, name: str) -> Optional[Any]:
        if not self.enabled:
            self.misses += 1
            return None
        ref = self._cache.get(name)
        if ref is None:
            self.misses += 1
        else:
            self.hits += 1
        return ref

    def put(self, name: str, ref: Any) -> None:
        if self.enabled:
            self._cache[name] = ref

    def invalidate(self, name: Optional[str] = None) -> None:
        if name is None:
            self._cache.clear()
        else:
            self._cache.pop(name, None)
