"""The (read-write) entity bean container.

Reproduces the EJB entity lifecycle whose costs drive §4.3:

* activation loads the row (``ejbLoad`` = one JDBC SELECT);
* finders run queries; with BMP, ``findByPrimaryKey`` performs an extra
  existence-check SELECT (the paper removed this in its baseline), and
  each found bean still loads itself — the "n+1 database calls problem";
  with CMP 2.0 batching, the finder materializes rows directly;
* at commit, dirty instances write back (``ejbStore`` = one JDBC
  UPDATE); without the paper's optimization, even clean instances
  touched by a read-only transaction store themselves;
* committed writes generate :class:`~repro.middleware.context.UpdateEvent`
  records when the bean has read-only replicas to feed.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from ..simnet.kernel import Event
from .context import InvocationContext, TransactionContext, UpdateEvent
from .descriptors import ComponentDescriptor, ComponentKind, Persistence
from .ejb import BeanError, EntityBean, run_business_method
from .session import BaseContainer

__all__ = ["EntityContainer", "FinderSpec"]


class FinderSpec:
    """Declarative home finder: SQL template over the bean's table.

    Bean classes declare::

        FINDERS = {
            "find_by_category": FinderSpec(
                "SELECT * FROM items WHERE category_id = ?"),
        }

    A finder returns the list of primary keys found; with CMP row
    batching the fetched rows also pre-populate the transaction's
    instance cache, avoiding the per-bean reload.
    """

    def __init__(self, sql: str):
        self.sql = sql


class EntityContainer(BaseContainer):
    """Container for one read-write entity bean type."""

    def __init__(self, server: Any, descriptor: ComponentDescriptor):
        if descriptor.kind != ComponentKind.ENTITY:
            raise BeanError(f"{descriptor.name!r} is not an entity bean")
        super().__init__(server, descriptor)
        self.schema = server.application.schemas[descriptor.table]
        self.loads = 0
        self.stores = 0
        self.skipped_stores = 0
        self.finder_calls = 0

    # -- transaction-scoped instance cache -------------------------------------
    def _cache(self, transaction: TransactionContext) -> Dict[Any, EntityBean]:
        return transaction.resources.setdefault(("entities", self.name), {})

    def _emits_update_events(self) -> bool:
        """Writes generate update events only when somebody consumes them:
        a read-mostly replica of this bean, or a query cache watching the
        bean's table."""
        if self.descriptor.read_mostly is not None:
            return True
        for cache in self.server.application.query_caches.values():
            if self.schema.name in cache.invalidated_by:
                return True
        return False

    # -- home methods -----------------------------------------------------------
    def _finder_spec(self, finder: str) -> FinderSpec:
        finders = getattr(self.descriptor.impl, "FINDERS", {})
        try:
            return finders[finder]
        except KeyError:
            raise BeanError(
                f"entity {self.name!r} has no finder {finder!r}"
            ) from None

    def _run_home(
        self, ctx: InvocationContext, method: str, args: tuple
    ) -> Generator[Event, Any, Any]:
        costs = ctx.costs
        if method == "find_by_primary_key":
            (primary_key,) = args
            if (
                self.descriptor.persistence == Persistence.BMP
                and costs.bmp_find_extra_db_call
            ):
                # The "excessive database call ... present in
                # ejbFindByPrimaryKey" that the paper's baseline removed.
                result = yield from self.server.db_execute(
                    ctx,
                    f"SELECT {self.schema.primary_key} FROM {self.schema.name} "
                    f"WHERE {self.schema.primary_key} = ?",
                    (primary_key,),
                )
                if not result.rows:
                    raise BeanError(f"{self.name}: no entity {primary_key!r}")
            return primary_key

        if method == "create":
            (values,) = args
            row = dict(values)
            ctx.transaction.mark_write()
            columns = ", ".join(row.keys())
            placeholders = ", ".join("?" for _ in row)
            yield from self.server.db_execute(
                ctx,
                f"INSERT INTO {self.schema.name} ({columns}) VALUES ({placeholders})",
                tuple(row.values()),
            )
            primary_key = row[self.schema.primary_key]
            instance = self._materialize(ctx, primary_key, self.schema.normalize_row(row))
            if self._emits_update_events():
                ctx.transaction.add_update_event(
                    UpdateEvent(
                        component=self.name,
                        table=self.schema.name,
                        primary_key=primary_key,
                        state=dict(instance.state),
                        inserted=True,
                    )
                )
            return primary_key

        if method == "remove":
            (primary_key,) = args
            ctx.transaction.mark_write()
            yield from self.server.db_execute(
                ctx,
                f"DELETE FROM {self.schema.name} WHERE {self.schema.primary_key} = ?",
                (primary_key,),
            )
            self._cache(ctx.transaction).pop(primary_key, None)
            if self._emits_update_events():
                ctx.transaction.add_update_event(
                    UpdateEvent(
                        component=self.name,
                        table=self.schema.name,
                        primary_key=primary_key,
                        state={},
                        deleted=True,
                    )
                )
            return None

        # Custom declarative finder.
        spec = self._finder_spec(method)
        self.finder_calls += 1
        result = yield from self.server.db_execute(ctx, spec.sql, args)
        primary_keys: List[Any] = []
        pk_column = self.schema.primary_key
        for row in result.rows:
            key = row.get(pk_column)
            if key is None:  # qualified output from a join
                for column, value in row.items():
                    if column.endswith("." + pk_column):
                        key = value
                        break
            primary_keys.append(key)
            if ctx.costs.finder_loads_rows and set(row) >= set(self.schema.column_names()):
                # CMP batching: the finder's rows pre-populate instances.
                self._materialize(ctx, key, row)
        return primary_keys

    def _materialize(
        self, ctx: InvocationContext, primary_key: Any, row: Dict[str, Any]
    ) -> EntityBean:
        instance = self.descriptor.impl()
        instance.primary_key = primary_key
        instance.state = dict(row)
        instance._loaded = True
        self._cache(ctx.transaction)[primary_key] = instance
        ctx.transaction.enlist_entity(self, instance)
        return instance

    # -- activation -----------------------------------------------------------
    def _activate(
        self, ctx: InvocationContext, primary_key: Any
    ) -> Generator[Event, Any, EntityBean]:
        cache = self._cache(ctx.transaction)
        instance = cache.get(primary_key)
        if instance is not None:
            return instance
        result = yield from self.server.db_execute(
            ctx,
            f"SELECT * FROM {self.schema.name} WHERE {self.schema.primary_key} = ?",
            (primary_key,),
        )
        row = result.first()
        if row is None:
            raise BeanError(f"{self.name}: no entity with key {primary_key!r}")
        yield from ctx.cpu(ctx.costs.ejb_load_cpu)
        self.loads += 1
        return self._materialize(ctx, primary_key, row)

    # -- store / discard (called by TransactionContext) -------------------------
    def store_instance(
        self, ctx: InvocationContext, transaction: TransactionContext, instance: EntityBean
    ) -> Generator[Event, Any, None]:
        if not instance.is_dirty:
            if ctx.costs.store_on_read_only_tx:
                # Unoptimized ejbStore: write the full row back even though
                # nothing changed (the paper's baseline removed this).
                yield from ctx.cpu(ctx.costs.ejb_store_cpu)
                yield from self._write_row(ctx, instance, full=True)
                self.stores += 1
            else:
                self.skipped_stores += 1
            return
        if transaction.read_only:
            transaction.mark_write()
        yield from ctx.cpu(ctx.costs.ejb_store_cpu)
        yield from self._write_row(ctx, instance, full=False)
        self.stores += 1
        if self._emits_update_events():
            transaction.add_update_event(
                UpdateEvent(
                    component=self.name,
                    table=self.schema.name,
                    primary_key=instance.primary_key,
                    state=dict(instance.state),
                    changed_fields=instance.dirty_fields,
                )
            )
        instance.clear_dirty()

    def _write_row(
        self, ctx: InvocationContext, instance: EntityBean, full: bool
    ) -> Generator[Event, Any, None]:
        pk_column = self.schema.primary_key
        if full:
            fields = [c for c in self.schema.column_names() if c != pk_column]
        else:
            fields = [f for f in instance.dirty_fields if f != pk_column]
        if not fields:
            return
        assignments = ", ".join(f"{field} = ?" for field in fields)
        params = tuple(instance.state[field] for field in fields) + (instance.primary_key,)
        yield from self.server.db_execute(
            ctx,
            f"UPDATE {self.schema.name} SET {assignments} WHERE {pk_column} = ?",
            params,
        )

    def discard_instance(self, instance: EntityBean) -> None:
        instance.clear_dirty()
        instance._loaded = False

    # -- dispatch ------------------------------------------------------------
    def invoke(
        self, ctx: InvocationContext, method: str, args: tuple, identity: Any = None
    ) -> Generator[Event, Any, Any]:
        self.invocations += 1

        def body(inner_ctx):
            yield from inner_ctx.cpu(inner_ctx.costs.bean_method_base)
            if identity is None:
                result = yield from self._run_home(inner_ctx, method, args)
                return result
            instance = yield from self._activate(inner_ctx, identity)
            was_dirty = instance.is_dirty
            result = yield from run_business_method(instance, method, inner_ctx, args)
            if instance.is_dirty and not was_dirty:
                inner_ctx.transaction.mark_write()
            return result

        result = yield from self._run_demarcated(ctx, body)
        return result
