"""J2EE-style component middleware: containers, RMI, JMS, web tier.

The subpackage layering (bottom up): costs/marshalling -> context ->
naming/rmi -> containers (session/entity/mdb/readonly) -> replication
(updates/querycache) -> web -> server.
"""

from .context import (
    InvocationContext,
    RequestInfo,
    TransactionContext,
    TransactionError,
    UpdateEvent,
)
from .costs import MiddlewareCosts
from .descriptors import (
    ApplicationDescriptor,
    ComponentDescriptor,
    ComponentKind,
    DescriptorError,
    Persistence,
    QueryCacheDescriptor,
    ReadMostlyDescriptor,
    RefreshMode,
    TxAttribute,
    UpdateMode,
)
from .ejb import (
    Bean,
    BeanError,
    EntityBean,
    MessageDrivenBean,
    Servlet,
    StatefulSessionBean,
    StatelessSessionBean,
)
from .entity import EntityContainer, FinderSpec
from .jms import JmsProvider, Message, Topic
from .marshalling import sizeof
from .mdb import MessageDrivenContainer
from .naming import HomeCache, JndiRegistry, NamingError
from .querycache import QueryCacheManager
from .readonly import ReadOnlyEntityContainer, ReadOnlyViolation
from .rmi import AccessError, BoundEntityRef, ComponentRef, LocalRef, RemoteRef
from .server import AppServer
from .session import StatefulSessionContainer, StatelessSessionContainer
from .updates import (
    UPDATE_SUBSCRIBER,
    UPDATE_TOPIC,
    UPDATER_FACADE,
    UpdatePayload,
    UpdatePropagator,
    UpdateSubscriberMdb,
    UpdaterFacadeBean,
    update_subscriber_descriptor,
    updater_facade_descriptor,
)
from .web import HttpSessionStore, Response, ServletContainer, WebRequest, http_get

__all__ = [
    "InvocationContext",
    "RequestInfo",
    "TransactionContext",
    "TransactionError",
    "UpdateEvent",
    "MiddlewareCosts",
    "ApplicationDescriptor",
    "ComponentDescriptor",
    "ComponentKind",
    "DescriptorError",
    "Persistence",
    "QueryCacheDescriptor",
    "ReadMostlyDescriptor",
    "RefreshMode",
    "TxAttribute",
    "UpdateMode",
    "Bean",
    "BeanError",
    "EntityBean",
    "MessageDrivenBean",
    "Servlet",
    "StatefulSessionBean",
    "StatelessSessionBean",
    "EntityContainer",
    "FinderSpec",
    "JmsProvider",
    "Message",
    "Topic",
    "sizeof",
    "MessageDrivenContainer",
    "HomeCache",
    "JndiRegistry",
    "NamingError",
    "QueryCacheManager",
    "ReadOnlyEntityContainer",
    "ReadOnlyViolation",
    "AccessError",
    "BoundEntityRef",
    "ComponentRef",
    "LocalRef",
    "RemoteRef",
    "AppServer",
    "StatefulSessionContainer",
    "StatelessSessionContainer",
    "UPDATE_SUBSCRIBER",
    "UPDATE_TOPIC",
    "UPDATER_FACADE",
    "UpdatePayload",
    "UpdatePropagator",
    "UpdateSubscriberMdb",
    "UpdaterFacadeBean",
    "update_subscriber_descriptor",
    "updater_facade_descriptor",
    "HttpSessionStore",
    "Response",
    "ServletContainer",
    "WebRequest",
    "http_get",
]
