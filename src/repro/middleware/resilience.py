"""Shared retry/timeout vocabulary for the middleware's fault handling.

One module answers "which exceptions are transient network faults?" and
"how long is the Nth backoff?" so the RMI fabric, the JMS provider, the
update propagator and the workload clients all agree.  Everything here
is pure computation — no kernel events — so importing it costs nothing
in fault-free runs.
"""

from __future__ import annotations

from ..simnet.network import LinkDown
from ..simnet.router import PacketLoss
from ..simnet.transport import NodeUnavailable

__all__ = ["RmiTimeout", "RETRYABLE_ERRORS", "backoff_delay"]

# Transient transport-level failures worth retrying: a partitioned link,
# a lost packet, a pool refusing to dial a crashed node.  Application
# errors (BeanError, TransactionError, ...) are deliberately absent —
# retrying those would mask bugs, not faults.
RETRYABLE_ERRORS = (LinkDown, PacketLoss, NodeUnavailable)


class RmiTimeout(Exception):
    """A remote invocation exhausted its deadline or retry budget.

    ``__cause__`` carries the last underlying transport fault.
    """

    def __init__(self, target: str, method: str, src: str, dst: str, attempts: int):
        super().__init__(
            f"rmi {target}.{method} {src}->{dst} failed after "
            f"{attempts} attempt(s)"
        )
        self.target = target
        self.method = method
        self.src = src
        self.dst = dst
        self.attempts = attempts


def backoff_delay(base_ms: float, cap_ms: float, attempt: int) -> float:
    """Capped exponential backoff for the Nth retry (attempt >= 1)."""
    if attempt < 1:
        raise ValueError("attempt numbering starts at 1")
    return min(cap_ms, base_ms * (2.0 ** (attempt - 1)))
