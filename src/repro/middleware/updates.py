"""Update propagation from read-write beans to edge replicas and caches.

Implements both halves of the paper's consistency spectrum:

* §4.3 **synchronous blocking push** — at transaction commit the writer
  blocks while one bulk RMI call per edge server delivers new entity
  state, query invalidations and query refreshes (zero staleness: "a
  read operation that arrives after a previous write has committed will
  always read the correct value");
* §4.5 **asynchronous updates** — the same payload is published once to
  a JMS topic; ``UpdateSubscriber`` MDBs on the edge servers apply it,
  and the writer returns immediately.

The ``UpdaterFacade`` stateless session bean is the single remote entry
point for replica maintenance: edges *pull* state and query results from
it, and the propagator *pushes* through it — "updates to read-only beans
and query caches are made in one bulk RMI call" (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Tuple, TYPE_CHECKING

from ..simnet.kernel import Event
from .context import InvocationContext, UpdateEvent
from .descriptors import (
    ComponentDescriptor,
    ComponentKind,
    QueryCacheDescriptor,
    RefreshMode,
    TxAttribute,
    UpdateMode,
)
from .ejb import MessageDrivenBean, StatelessSessionBean
from .resilience import RETRYABLE_ERRORS, RmiTimeout

if TYPE_CHECKING:  # pragma: no cover
    from .server import AppServer

__all__ = [
    "UpdaterFacadeBean",
    "UpdateSubscriberMdb",
    "UpdatePropagator",
    "UpdatePayload",
    "UPDATER_FACADE",
    "UPDATE_SUBSCRIBER",
    "UPDATE_TOPIC",
]

UPDATER_FACADE = "UpdaterFacade"
UPDATE_SUBSCRIBER = "UpdateSubscriber"
UPDATE_TOPIC = "replica-updates"


@dataclass
class UpdatePayload:
    """The bulk update shipped to one edge server (or one JMS message).

    The last three fields exist for the consistency bus (level 6):
    ``tables`` carries the committing transaction's write set so method
    caches can invalidate by footprint, ``sent_at`` stamps when the
    payload left the main server (strict lease gate / bounded staleness
    measurement), and ``seq`` is the per-target sequence number that
    lets a strict-mode cache detect a lost push.  They are populated
    only when a deployment activates method caching, so levels 1–5
    ship byte-identical payloads.
    """

    events: List[UpdateEvent] = field(default_factory=list)
    invalidations: List[Tuple[str, Optional[tuple]]] = field(default_factory=list)
    query_refreshes: List[Tuple[str, tuple, List[dict]]] = field(default_factory=list)
    tables: List[str] = field(default_factory=list)
    sent_at: Optional[float] = None
    seq: Optional[int] = None

    @property
    def empty(self) -> bool:
        return not (
            self.events or self.invalidations or self.query_refreshes or self.tables
        )

    def wire_size(self) -> int:
        """Serialized size; identical to the pre-level-6 payload layout
        whenever the consistency-bus fields are unset."""
        from .marshalling import sizeof

        body = {
            "events": self.events,
            "invalidations": self.invalidations,
            "query_refreshes": self.query_refreshes,
        }
        if self.tables:
            body["tables"] = self.tables
        if self.sent_at is not None:
            body["sent_at"] = self.sent_at
        if self.seq is not None:
            body["seq"] = self.seq
        return 32 + sizeof(body)


class UpdaterFacadeBean(StatelessSessionBean):
    """Auto-deployed façade for replica state exchange.

    On the main server it answers ``fetch_state`` / ``fetch_query``
    pulls; on edge servers it applies pushed payloads.  A single bean
    class keeps the protocol in one place, mirroring how a container
    provider would ship it (§5 automation).
    """

    # -- pull endpoints (main server) --------------------------------------
    def fetch_state(self, ctx, component: str, primary_key):
        """Full entity state for a replica refresh — one bulk answer.

        Reads the *authoritative* read-write bean (``for_update`` lookup),
        never a read-only replica — a replica answering another replica's
        refresh would be circular.
        """
        home = yield from ctx.server.lookup(ctx, component, for_update=True)
        state = yield from home.call(ctx, "get_state", identity=primary_key)
        return state

    def fetch_query(self, ctx, query_id: str, params):
        """Execute a registered aggregate query at the data centre."""
        sql = ctx.server.application.queries[query_id]
        result = yield from ctx.server.db_execute(ctx, sql, tuple(params))
        return [dict(row) for row in result.rows]

    # -- push endpoint (edge servers) ----------------------------------------
    def apply_updates(self, ctx, payload: UpdatePayload):
        """Dispatch a bulk update payload through the consistency chain.

        Replica installs, query-cache invalidations/refreshes and
        method-cache invalidations are all interceptors on the server's
        :class:`~repro.middleware.consistency.EdgeConsistencyManager`;
        this façade no longer knows which mechanisms are deployed.
        """
        yield from ctx.cpu(0.05 * max(1, len(payload.events)))
        return ctx.server.consistency.deliver(ctx, payload)


class UpdateSubscriberMdb(MessageDrivenBean):
    """§4.5's asynchronous façade: applies payloads arriving via JMS."""

    def on_message(self, ctx, message):
        facade = yield from ctx.lookup(UPDATER_FACADE)
        result = yield from facade.call(ctx, "apply_updates", message.body)
        return result


def updater_facade_descriptor() -> ComponentDescriptor:
    return ComponentDescriptor(
        name=UPDATER_FACADE,
        kind=ComponentKind.STATELESS_SESSION,
        impl=UpdaterFacadeBean,
        tx_attribute=TxAttribute.NOT_SUPPORTED,
        remote_interface=True,
        edge_from_level=3,  # present wherever replicas/caches may live
    )


def update_subscriber_descriptor() -> ComponentDescriptor:
    return ComponentDescriptor(
        name=UPDATE_SUBSCRIBER,
        kind=ComponentKind.MESSAGE_DRIVEN,
        impl=UpdateSubscriberMdb,
        tx_attribute=TxAttribute.NOT_SUPPORTED,
        remote_interface=False,
        topic=UPDATE_TOPIC,
    )


class UpdatePropagator:
    """Commit-time propagation engine on the main server."""

    def __init__(self, server: "AppServer", targets: List["AppServer"]):
        self.server = server
        self.targets = list(targets)
        # Level 6: when any target runs a transactional method cache,
        # every commit's write-table set rides the bus (even commits
        # producing no replica events), payloads are stamped, and sync
        # pushes carry per-target sequence numbers.  Off by default so
        # levels 1–5 propagate exactly as before.
        self.tracks_table_writes = False
        self.table_update_mode = UpdateMode.SYNC
        self._seq: dict = {}  # target server name -> last sequence sent
        self.sync_pushes = 0
        self.async_publishes = 0
        self.blocking_time_total = 0.0
        # Pushes abandoned after the RMI layer exhausted its retries.
        # The write already committed locally, so the edge replica is
        # simply stale until a later push succeeds.
        self.failed_pushes = 0
        # Relaxed-consistency batching (§5, TACT-style staleness bounds):
        # events whose descriptor declares staleness_bound_ms accumulate
        # here and flush in one coalesced publish within the bound.
        self._bounded_buffer: dict = {}  # (component, pk) -> UpdateEvent
        self._buffer_started = 0.0
        self._flush_scheduled = False
        self._flush_deadline = float("inf")
        self.coalesced_events = 0
        self.bounded_flushes = 0

    # -- payload assembly ---------------------------------------------------
    def _mode_of_event(self, event: UpdateEvent) -> Tuple[UpdateMode, RefreshMode]:
        descriptor = self.server.application.components.get(event.component)
        read_mostly = descriptor.read_mostly if descriptor else None
        if read_mostly is None:
            return UpdateMode.SYNC, RefreshMode.PUSH
        return read_mostly.update_mode, read_mostly.refresh_mode

    def _derived_invalidations(
        self, events: List[UpdateEvent]
    ) -> List[Tuple[QueryCacheDescriptor, Optional[tuple]]]:
        derived = []
        for cache in self.server.application.query_caches.values():
            for event in events:
                if event.table not in cache.invalidated_by:
                    continue
                key = cache.key_of_update(event) if cache.key_of_update else None
                derived.append((cache, key))
        return derived

    def build_payloads(
        self,
        ctx: InvocationContext,
        events: List[UpdateEvent],
        explicit_invalidations: List[Tuple[str, Optional[tuple]]],
    ) -> Generator[Event, Any, Tuple[UpdatePayload, UpdatePayload]]:
        """Partition work into (synchronous, asynchronous) payloads."""
        sync = UpdatePayload()
        asynchronous = UpdatePayload()
        for event in events:
            descriptor = self.server.application.components.get(event.component)
            if descriptor is None or descriptor.read_mostly is None:
                # No replicas consume this bean's state; the event exists
                # only to derive query-cache invalidations below.
                continue
            mode, refresh = self._mode_of_event(event)
            shipped = event
            if refresh == RefreshMode.PULL and not event.deleted:
                shipped = UpdateEvent(
                    component=event.component,
                    table=event.table,
                    primary_key=event.primary_key,
                    state={},  # invalidation only; replicas pull on demand
                    changed_fields=event.changed_fields,
                    inserted=event.inserted,
                )
            elif (
                ctx.costs.push_delta_only
                and event.changed_fields
                and not event.inserted
                and not event.deleted
            ):
                # §4.3: push "only the changes instead of the entire
                # bean's state (i.e., fields that were modified)".
                shipped = UpdateEvent(
                    component=event.component,
                    table=event.table,
                    primary_key=event.primary_key,
                    state={f: event.state[f] for f in event.changed_fields},
                    changed_fields=event.changed_fields,
                    partial=True,
                )
            (sync if mode == UpdateMode.SYNC else asynchronous).events.append(shipped)

        invalidation_work: List[Tuple[QueryCacheDescriptor, Optional[tuple]]] = []
        invalidation_work.extend(self._derived_invalidations(events))
        for query_id, params in explicit_invalidations:
            descriptor = self.server.application.query_caches.get(query_id)
            if descriptor is not None:
                invalidation_work.append((descriptor, params))

        seen = set()
        for descriptor, params in invalidation_work:
            marker = (descriptor.query_id, params)
            if marker in seen:
                continue
            seen.add(marker)
            target = sync if descriptor.update_mode == UpdateMode.SYNC else asynchronous
            if descriptor.refresh_mode == RefreshMode.PUSH and params is not None:
                # Compute fresh rows now so readers are never penalized.
                result = yield from self.server.db_execute(
                    ctx, descriptor.sql, tuple(params)
                )
                target.query_refreshes.append(
                    (descriptor.query_id, tuple(params), [dict(r) for r in result.rows])
                )
            else:
                target.invalidations.append((descriptor.query_id, params))
        return sync, asynchronous

    # -- propagation -----------------------------------------------------------
    def propagate(
        self,
        ctx: InvocationContext,
        events: List[UpdateEvent],
        explicit_invalidations: List[Tuple[str, Optional[tuple]]],
        written_tables: Tuple[str, ...] = (),
    ) -> Generator[Event, Any, None]:
        if not self.targets:
            return
        # All propagation work — refresh queries, sync pushes, JMS
        # publishes — nests under one "propagate" span, so the tree-based
        # design-rule checker can exclude replica maintenance structurally.
        span = ctx.start_span("propagate", "replica-updates")
        ctx = ctx.in_span(span)
        try:
            sync, asynchronous = yield from self.build_payloads(
                ctx, events, explicit_invalidations
            )
            if self.tracks_table_writes and written_tables:
                carrier = (
                    sync
                    if self.table_update_mode == UpdateMode.SYNC
                    else asynchronous
                )
                for table in written_tables:
                    if table not in carrier.tables:
                        carrier.tables.append(table)
            if not asynchronous.empty:
                immediate, bound = self._split_by_staleness_bound(asynchronous)
                if not immediate.empty:
                    if self.tracks_table_writes:
                        immediate.sent_at = ctx.env.now
                    yield from self.server.jms.publish(ctx, UPDATE_TOPIC, immediate)
                    self.async_publishes += 1
                if bound is not None:
                    self._buffer_bounded(ctx, *bound)
            if not sync.empty:
                start = ctx.env.now
                pushes = [
                    ctx.env.process(
                        self._push_one(ctx, target, sync),
                        name=f"sync-push-{target.name}",
                    )
                    for target in self.targets
                ]
                yield ctx.env.all_of(pushes)
                self.sync_pushes += 1
                self.blocking_time_total += ctx.env.now - start
        finally:
            ctx.finish_span(span)

    def _push_one(
        self, ctx: InvocationContext, target: "AppServer", payload: UpdatePayload
    ) -> Generator[Event, Any, None]:
        stats = self.server.resilience
        shipped = payload
        if self.tracks_table_writes:
            # Per-target copy: the stamp and sequence number are assigned
            # together, synchronously, so stamp order equals sequence
            # order — the invariant the strict-mode staleness proof needs.
            seq = self._seq.get(target.name, 0) + 1
            self._seq[target.name] = seq
            shipped = UpdatePayload(
                events=payload.events,
                invalidations=payload.invalidations,
                query_refreshes=payload.query_refreshes,
                tables=payload.tables,
                sent_at=ctx.env.now,
                seq=seq,
            )
        try:
            ref = yield from self.server.lookup_at(ctx, UPDATER_FACADE, target)
            yield from ref.call(ctx, "apply_updates", shipped)
        except (RmiTimeout,) + RETRYABLE_ERRORS:
            # The transaction already committed locally; a push that the
            # RMI layer could not land just leaves this replica stale.
            self.failed_pushes += 1
            if stats is not None:
                stats.sync_push_failures += 1
                stats.dropped_updates += 1
                stats.mark_stale(target.name, ctx.env.now)
            cache = getattr(target, "method_cache", None)
            if cache is not None:
                # Ground truth for the staleness audit: this target never
                # saw the payload (the seq gap it leaves is what the
                # cache's own guards must catch).
                cache.mark_missed(shipped, ctx.env.now)
            return
        if stats is not None:
            stats.mark_fresh(target.name, ctx.env.now)

    # -- relaxed-consistency batching (§5) --------------------------------------
    def _staleness_bound_of(self, event: UpdateEvent) -> Optional[float]:
        descriptor = self.server.application.components.get(event.component)
        if descriptor is None or descriptor.read_mostly is None:
            return None
        return descriptor.read_mostly.staleness_bound_ms

    def _split_by_staleness_bound(self, payload: UpdatePayload):
        """Partition an async payload into (immediate, (bounded, min_bound))."""
        immediate = UpdatePayload(
            invalidations=list(payload.invalidations),
            query_refreshes=list(payload.query_refreshes),
            tables=list(payload.tables),
        )
        bounded_events: List[UpdateEvent] = []
        min_bound: Optional[float] = None
        for event in payload.events:
            bound = self._staleness_bound_of(event)
            if bound is None:
                immediate.events.append(event)
            else:
                bounded_events.append(event)
                min_bound = bound if min_bound is None else min(min_bound, bound)
        if not bounded_events:
            return immediate, None
        return immediate, (bounded_events, min_bound)

    def _buffer_bounded(
        self, ctx: InvocationContext, events: List[UpdateEvent], bound: float
    ) -> None:
        """Coalesce bounded events by key; flush within the bound window.

        Repeated writes to the same entity within one window ship once,
        with the latest state — the bandwidth saving that motivates
        relaxed consistency bounds (§5, citing TACT).
        """
        if not self._bounded_buffer:
            # Staleness is measured from the oldest buffered commit.
            self._buffer_started = ctx.env.now
        for event in events:
            key = (event.component, event.primary_key)
            if key in self._bounded_buffer:
                self.coalesced_events += 1
            self._bounded_buffer[key] = event
        deadline = ctx.env.now + bound
        # Schedule (or pull forward) the flush so that no buffered event
        # waits past its own staleness bound.
        if not self._flush_scheduled or deadline < self._flush_deadline:
            self._flush_scheduled = True
            self._flush_deadline = deadline
            ctx.env.process(
                self._flush_after(ctx, bound), name="bounded-update-flush"
            )

    def _flush_after(
        self, ctx: InvocationContext, delay: float
    ) -> Generator[Event, Any, None]:
        yield ctx.env.sleep(delay)
        if not self._bounded_buffer:
            return  # an earlier flush already drained the buffer
        self._flush_scheduled = False
        payload = UpdatePayload(events=list(self._bounded_buffer.values()))
        if self.tracks_table_writes:
            for event in payload.events:
                if event.table not in payload.tables:
                    payload.tables.append(event.table)
            payload.sent_at = self._buffer_started
        self._bounded_buffer.clear()
        flush_ctx = InvocationContext(
            env=ctx.env,
            server=self.server,
            request=None,
            costs=self.server.costs,
            trace=self.server.trace,
            spans=self.server.spans,
        )
        span = flush_ctx.start_span("propagate", "bounded-flush")
        flush_ctx = flush_ctx.in_span(span)
        try:
            yield from self.server.jms.publish(flush_ctx, UPDATE_TOPIC, payload)
        finally:
            flush_ctx.finish_span(span)
        self.async_publishes += 1
        self.bounded_flushes += 1
