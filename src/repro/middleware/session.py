"""Session bean containers: stateless (pooled) and stateful (per client).

Transaction demarcation is container-managed.  A ``REQUIRED`` business
method called outside a transaction begins one, commits it on success —
including the blocking replica push of §4.3 when updates are pending —
and rolls it back on failure.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from ..simnet.kernel import Event
from .context import InvocationContext, TransactionContext
from .descriptors import ComponentDescriptor, ComponentKind, TxAttribute
from .ejb import BeanError, StatefulSessionBean, run_business_method

__all__ = ["BaseContainer", "StatelessSessionContainer", "StatefulSessionContainer"]


class BaseContainer:
    """Shared container behaviour: metrics and transaction demarcation."""

    def __init__(self, server: Any, descriptor: ComponentDescriptor):
        self.server = server
        self.descriptor = descriptor
        self.invocations = 0
        self.transactions_started = 0

    @property
    def name(self) -> str:
        return self.descriptor.name

    def invoke(
        self, ctx: InvocationContext, method: str, args: tuple, identity: Any = None
    ) -> Generator[Event, Any, Any]:
        raise NotImplementedError
        yield  # pragma: no cover

    # -- container-managed transactions ---------------------------------------
    def _run_demarcated(
        self, ctx: InvocationContext, body
    ) -> Generator[Event, Any, Any]:
        """Run ``body(inner_ctx)`` under this component's tx attribute."""
        attribute = self.descriptor.tx_attribute
        if attribute == TxAttribute.NOT_SUPPORTED:
            inner = ctx.in_transaction(None) if ctx.transaction else ctx
            result = yield from body(inner)
            return result
        if attribute == TxAttribute.SUPPORTS:
            result = yield from body(ctx)
            return result
        if attribute == TxAttribute.REQUIRED and ctx.transaction is not None:
            result = yield from body(ctx)
            return result
        # REQUIRED without a transaction, or REQUIRES_NEW: start one here.
        transaction = TransactionContext(ctx)
        self.transactions_started += 1
        inner = ctx.in_transaction(transaction)
        try:
            result = yield from body(inner)
        except BaseException:
            if transaction.state == "active":
                yield from transaction.rollback(inner)
            raise
        if transaction.state == "active":
            yield from transaction.commit(inner)
        return result


class StatelessSessionContainer(BaseContainer):
    """Pools interchangeable instances; any free one serves any call."""

    def __init__(self, server: Any, descriptor: ComponentDescriptor, pool_size: int = 16):
        if descriptor.kind != ComponentKind.STATELESS_SESSION:
            raise BeanError(f"{descriptor.name!r} is not a stateless session bean")
        super().__init__(server, descriptor)
        self._pool: List[Any] = []
        self.pool_size = pool_size
        self.instances_created = 0

    def drain(self) -> None:
        """Server-process crash: pooled instances are gone (counters survive)."""
        self._pool.clear()

    def _checkout(self, ctx: InvocationContext) -> Generator[Event, Any, Any]:
        if self._pool:
            return self._pool.pop()
        instance = self.descriptor.impl()
        instance.ejb_create(ctx)
        self.instances_created += 1
        yield from ctx.cpu(ctx.costs.instance_creation)
        return instance

    def _checkin(self, instance: Any) -> None:
        if len(self._pool) < self.pool_size:
            self._pool.append(instance)

    def invoke(
        self, ctx: InvocationContext, method: str, args: tuple, identity: Any = None
    ) -> Generator[Event, Any, Any]:
        self.invocations += 1
        # Level 6: annotated methods route through the transactional
        # method cache (a hit skips checkout, demarcation and the
        # business method entirely; a miss runs below with a footprint
        # collector attached).  ``method_cache`` is None at levels 1–5.
        cache = self.server.method_cache
        if cache is not None and cache.intercepts(self.name, method):
            result = yield from cache.invoke_through(ctx, self, method, args)
            return result
        result = yield from self._invoke_direct(ctx, method, args)
        return result

    def _invoke_direct(
        self, ctx: InvocationContext, method: str, args: tuple
    ) -> Generator[Event, Any, Any]:
        instance = yield from self._checkout(ctx)

        def body(inner_ctx):
            yield from inner_ctx.cpu(inner_ctx.costs.bean_method_base)
            result = yield from run_business_method(instance, method, inner_ctx, args)
            return result

        try:
            result = yield from self._run_demarcated(ctx, body)
        finally:
            self._checkin(instance)
        return result


class StatefulSessionContainer(BaseContainer):
    """One instance per client session, created on first use.

    The instance key is the request's session id, so a client "sticks"
    to its conversational state on whichever server serves it — stateful
    session beans are deployable at the edge precisely because this state
    is not shared (§2.2).

    When the live-instance population exceeds the cost profile's
    ``stateful_passivation_threshold``, least-recently-used instances are
    passivated (serialized out of memory); touching a passivated session
    pays an activation delay.
    """

    PASSIVATION_IO_MS = 2.0  # serialize/deserialize to the store

    def __init__(self, server: Any, descriptor: ComponentDescriptor):
        if descriptor.kind != ComponentKind.STATEFUL_SESSION:
            raise BeanError(f"{descriptor.name!r} is not a stateful session bean")
        super().__init__(server, descriptor)
        self._instances: Dict[str, StatefulSessionBean] = {}
        self._passivated: Dict[str, StatefulSessionBean] = {}
        self._last_used: Dict[str, int] = {}
        self._use_counter = 0
        self.instances_created = 0
        self.instances_removed = 0
        self.passivations = 0
        self.activations = 0

    def drain(self) -> None:
        """Server-process crash: all conversational state is lost (counters survive)."""
        self._instances.clear()
        self._passivated.clear()
        self._last_used.clear()

    def _touch(self, key: str) -> None:
        self._use_counter += 1
        self._last_used[key] = self._use_counter

    def _maybe_passivate(self, ctx: InvocationContext, protect: str):
        threshold = ctx.costs.stateful_passivation_threshold
        while len(self._instances) > threshold:
            victim = min(
                (k for k in self._instances if k != protect),
                key=lambda k: self._last_used.get(k, 0),
                default=None,
            )
            if victim is None:
                return
            self._passivated[victim] = self._instances.pop(victim)
            self.passivations += 1
            yield from ctx.cpu(self.PASSIVATION_IO_MS)

    def _activate_if_passivated(self, ctx: InvocationContext, key: str):
        instance = self._passivated.pop(key, None)
        if instance is not None:
            self._instances[key] = instance
            self.activations += 1
            yield from ctx.cpu(self.PASSIVATION_IO_MS)
            yield ctx.env.sleep(self.PASSIVATION_IO_MS)  # store read-back

    def _session_key(self, ctx: InvocationContext, identity: Any) -> str:
        if identity is not None:
            return str(identity)
        if ctx.request is None:
            raise BeanError(
                f"stateful bean {self.name!r} invoked without a session identity"
            )
        return ctx.request.session_id

    def instance_count(self) -> int:
        return len(self._instances) + len(self._passivated)

    def live_instance_count(self) -> int:
        return len(self._instances)

    def invoke(
        self, ctx: InvocationContext, method: str, args: tuple, identity: Any = None
    ) -> Generator[Event, Any, Any]:
        self.invocations += 1
        key = self._session_key(ctx, identity)

        if method == "remove":
            removed = self._instances.pop(key, None) or self._passivated.pop(key, None)
            self._last_used.pop(key, None)
            if removed is not None:
                self.instances_removed += 1
            return None

        yield from self._activate_if_passivated(ctx, key)
        self._touch(key)
        instance = self._instances.get(key)
        if instance is None:
            instance = self.descriptor.impl()
            instance.session_id = key
            instance.ejb_create(ctx)
            self._instances[key] = instance
            self.instances_created += 1
            yield from ctx.cpu(ctx.costs.instance_creation)
        yield from self._maybe_passivate(ctx, protect=key)

        def body(inner_ctx):
            yield from inner_ctx.cpu(inner_ctx.costs.bean_method_base)
            result = yield from run_business_method(instance, method, inner_ctx, args)
            return result

        result = yield from self._run_demarcated(ctx, body)
        return result
