"""Middleware cost profile: CPU and protocol constants.

Every millisecond the middleware charges comes from this one dataclass,
so experiments can calibrate Pet Store (heavyweight: JSP template
framework, BMP entity beans, JBoss 2.4-era RMI) differently from RUBiS
(lightweight servlets, CMP 2.0, JBoss 3.0) — the paper's two
applications differ exactly this way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MiddlewareCosts"]


@dataclass(frozen=True)
class MiddlewareCosts:
    """CPU times in ms; sizes in bytes; fractions dimensionless."""

    # -- web tier ------------------------------------------------------------
    servlet_base: float = 1.0          # request parsing, dispatch, session lookup
    page_render_per_kb: float = 0.15   # response generation cost per KB of HTML
    # Non-CPU per-request latency of the web stack (synchronous logging,
    # connection handling, JVM overheads): waits without occupying a CPU,
    # reconciling the paper's ~90 ms local pages with its <40% CPU load.
    servlet_io_wait: float = 0.0
    http_request_size: int = 420
    http_keep_alive: bool = False      # the paper did NOT use keep-alive

    # -- EJB container -------------------------------------------------------
    local_call: float = 0.05           # in-VM call through the container
    bean_method_base: float = 0.12     # interception/tx bookkeeping per method
    instance_creation: float = 0.8     # new bean instance (pool miss)
    stateful_passivation_threshold: int = 10_000

    # -- RMI -----------------------------------------------------------------
    rmi_marshal_base: int = 380        # serialized call header size
    rmi_marshal_per_arg: int = 24
    rmi_result_base: int = 260
    rmi_cpu: float = 0.35              # marshalling/unmarshalling CPU per side
    rmi_dgc_fraction: float = 0.5      # extra fractional RTT per call (DGC/pings)
    rmi_stub_creation_rtt: bool = True # first use of a remote stub costs a RTT
    jndi_remote_lookup: bool = True    # un-cached remote lookup costs an RMI

    # -- replica update propagation --------------------------------------------
    # §4.3 optimization: "transferring only the changes instead of the
    # entire bean's state (i.e., fields that were modified)".
    push_delta_only: bool = False

    # -- JMS -----------------------------------------------------------------
    jms_publish_cpu: float = 0.3
    jms_message_base: int = 420
    mdb_dispatch_cpu: float = 0.25

    # -- resilience ----------------------------------------------------------
    # Deadline/retry policy for remote invocations and JMS redelivery.
    # These only matter once the fault layer (repro.faults) disturbs the
    # network: a fault-free run never enters a retry or backoff path, so
    # the defaults change nothing in the paper-reproduction sweeps.
    rmi_timeout_ms: float = 3_000.0    # per-call deadline (matches the 2003-era
                                       # client connect timeout in the web tier)
    rmi_max_retries: int = 3
    rmi_backoff_base_ms: float = 50.0  # capped exponential: base * 2^(attempt-1)
    rmi_backoff_cap_ms: float = 2_000.0
    jms_max_redeliveries: int = 3      # then the message is dead-lettered
    jms_redelivery_backoff_ms: float = 500.0

    # -- persistence ---------------------------------------------------------
    ejb_load_cpu: float = 0.08
    ejb_store_cpu: float = 0.08
    # The paper's §3.4 baseline already removed the extra
    # ejbFindByPrimaryKey database call and the ejbStore at the end of
    # read-only transactions; ablations re-enable them.
    bmp_find_extra_db_call: bool = False
    store_on_read_only_tx: bool = False
    finder_loads_rows: bool = False       # CMP batches row loads into the finder

    def variant(self, **changes) -> "MiddlewareCosts":
        """A copy with the given fields replaced (profiles are immutable)."""
        return replace(self, **changes)
