"""Read-only entity bean containers (the Read-Mostly pattern, §4.3).

A read-only container holds a local cache of entity state at an edge
server.  Business (read) methods run against the cache with local
response time; any attempted write raises.  State arrives either

* **push**: the main server's update propagation delivers fresh state
  with the invalidation (clients "will always have local response
  times"), or
* **pull**: an invalidation only marks entries stale, and the first
  business call afterwards refreshes by querying the remote updater
  façade ("one RMI call").

Cold misses always pull — a replica cannot invent state it never saw.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Set

from ..simnet.kernel import Event
from .context import InvocationContext, UpdateEvent
from .descriptors import ComponentDescriptor, ComponentKind, RefreshMode
from .ejb import BeanError, run_business_method
from .session import BaseContainer

__all__ = ["ReadOnlyEntityContainer", "ReadOnlyViolation"]

UPDATER_FACADE = "UpdaterFacade"


class ReadOnlyViolation(BeanError):
    """A business method attempted to mutate read-only replica state."""


class ReadOnlyEntityContainer(BaseContainer):
    """Cache-backed, read-only replica of an entity bean type."""

    def __init__(self, server: Any, descriptor: ComponentDescriptor):
        if descriptor.kind != ComponentKind.ENTITY or descriptor.read_mostly is None:
            raise BeanError(
                f"{descriptor.name!r} is not a read-mostly entity bean"
            )
        super().__init__(server, descriptor)
        self.schema = server.application.schemas[descriptor.table]
        self._cache: Dict[Any, Dict[str, Any]] = {}
        self._stale: Set[Any] = set()
        self.hits = 0
        self.misses = 0
        self.refreshes = 0
        self.invalidations = 0

    @property
    def refresh_mode(self) -> RefreshMode:
        return self.descriptor.read_mostly.refresh_mode

    # -- replica maintenance (called by update propagation) ---------------------
    def apply_update(self, event: UpdateEvent) -> None:
        """Push-path: install fresh state delivered with the invalidation."""
        if event.deleted:
            self._cache.pop(event.primary_key, None)
            self._stale.discard(event.primary_key)
            return
        if event.partial:
            # Delta push (§4.3): merge changed fields into the cached row.
            # A replica that never saw the full row cannot apply a delta —
            # it invalidates and pulls on next use instead.
            cached = self._cache.get(event.primary_key)
            if cached is None or event.primary_key in self._stale:
                self.invalidate(event.primary_key)
                return
            cached.update(event.state)
            return
        if event.state:
            self._cache[event.primary_key] = dict(event.state)
            self._stale.discard(event.primary_key)
        else:
            self.invalidate(event.primary_key)

    def drop_all(self) -> None:
        """Server-process crash: the replica restarts cold (counters survive).

        Subsequent reads repopulate entity by entity through the normal
        pull-on-miss path — one WAN round trip each — which is exactly
        the post-restart degradation the availability report measures.
        """
        self._cache.clear()
        self._stale.clear()

    def invalidate(self, primary_key: Any = None) -> None:
        """Pull-path: mark one entry (or everything) stale."""
        self.invalidations += 1
        if primary_key is None:
            self._stale.update(self._cache.keys())
        elif primary_key in self._cache:
            self._stale.add(primary_key)

    def preload(self, rows) -> int:
        """Install fresh state for many rows at once (warm-up helper).

        Stands in for the measurement-excluded warm-up traffic of the
        paper's one-hour runs; returns the number of entries loaded.
        """
        count = 0
        pk_column = self.schema.primary_key
        for row in rows:
            self._cache[row[pk_column]] = dict(row)
            self._stale.discard(row[pk_column])
            count += 1
        return count

    def cached_keys(self) -> Set[Any]:
        return set(self._cache)

    def is_fresh(self, primary_key: Any) -> bool:
        return primary_key in self._cache and primary_key not in self._stale

    # -- state acquisition -----------------------------------------------------
    def _get_state(
        self, ctx: InvocationContext, primary_key: Any
    ) -> Generator[Event, Any, Dict[str, Any]]:
        if self.is_fresh(primary_key):
            self.hits += 1
            return self._cache[primary_key]
        self.misses += 1
        # Refresh from the central updater façade: exactly one RMI call.
        facade = yield from ctx.lookup(UPDATER_FACADE + "@central")
        state = yield from facade.call(ctx, "fetch_state", self.name, primary_key)
        if state is None:
            raise BeanError(f"{self.name}: no entity with key {primary_key!r}")
        self._cache[primary_key] = dict(state)
        self._stale.discard(primary_key)
        self.refreshes += 1
        return self._cache[primary_key]

    # -- dispatch ------------------------------------------------------------
    def invoke(
        self, ctx: InvocationContext, method: str, args: tuple, identity: Any = None
    ) -> Generator[Event, Any, Any]:
        self.invocations += 1
        yield from ctx.cpu(ctx.costs.bean_method_base)
        if ctx.footprint is not None:
            # Replica reads never reach the JDBC layer; the mapped table
            # is this container's whole read footprint.
            ctx.footprint.add((self.descriptor.table,), ())

        if identity is None:
            if method == "find_by_primary_key":
                (primary_key,) = args
                # Existence is established on first state access; the
                # find itself is local.
                return primary_key
            raise BeanError(
                f"read-only bean {self.name!r} does not support home method "
                f"{method!r}; aggregate queries belong to query caches"
            )

        state = yield from self._get_state(ctx, identity)
        instance = self.descriptor.impl()
        instance.primary_key = identity
        instance.state = dict(state)
        instance._loaded = True
        result = yield from run_business_method(instance, method, ctx, args)
        if instance.is_dirty:
            raise ReadOnlyViolation(
                f"method {method!r} mutated read-only replica "
                f"{self.name}[{identity!r}] on {self.server.name}"
            )
        return result
