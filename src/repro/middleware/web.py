"""The web tier: HTTP request handling, servlets, and HTTP sessions.

The paper's headline centralized-deployment number comes from here: a
page request without keep-alive costs a TCP handshake round trip plus a
request/response round trip, "approximately an extra 400 ms" across the
emulated WAN.  Servlet dispatch, HTTP-session lookup and page rendering
charge CPU on the serving node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional, TYPE_CHECKING

from ..simnet.kernel import Environment, Event
from ..simnet.transport import Connection, ConnectionPool
from .context import InvocationContext, RequestInfo
from .descriptors import ComponentDescriptor, ComponentKind
from .ejb import BeanError, run_business_method

if TYPE_CHECKING:  # pragma: no cover
    from .server import AppServer

__all__ = [
    "WebRequest",
    "Response",
    "HttpSessionStore",
    "ServletContainer",
    "ServerUnavailable",
    "http_get",
    "CONNECT_TIMEOUT_MS",
]

# How long a client waits before concluding a server is down (a 2003-era
# TCP connect timeout).  Paid once per failed attempt before failover.
CONNECT_TIMEOUT_MS = 3_000.0


class ServerUnavailable(Exception):
    """Raised when the target application server is down."""

    def __init__(self, server_name: str):
        super().__init__(f"application server {server_name!r} is unavailable")
        self.server_name = server_name


@dataclass
class WebRequest:
    """One HTTP request as seen by a servlet."""

    page: str
    params: Dict[str, Any] = field(default_factory=dict)
    session_id: str = ""
    client_node: str = ""

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)


@dataclass
class Response:
    """A generated page: size drives both render CPU and transfer time."""

    html_size: int
    status: int = 200
    data: Optional[dict] = None  # structured view of what was rendered (tests)

    def wire_size(self) -> int:
        return 280 + self.html_size  # headers + body


class HttpSessionStore:
    """Per-server HTTPSession map (``session_id -> attribute dict``).

    Session state lives on whichever server the client talks to —
    web-tier conversational state is edge-deployable exactly like
    stateful session beans (§2.2).
    """

    def __init__(self):
        self._sessions: Dict[str, Dict[str, Any]] = {}
        self.created = 0

    def get(self, session_id: str) -> Dict[str, Any]:
        session = self._sessions.get(session_id)
        if session is None:
            session = {}
            self._sessions[session_id] = session
            self.created += 1
        return session

    def discard(self, session_id: str) -> None:
        self._sessions.pop(session_id, None)

    def clear(self) -> None:
        """Drop every session (server-process crash); ``created`` survives."""
        self._sessions.clear()

    def __len__(self) -> int:
        return len(self._sessions)


class ServletContainer:
    """Holds one servlet instance and dispatches requests through it."""

    def __init__(self, server: Any, descriptor: ComponentDescriptor):
        if descriptor.kind != ComponentKind.SERVLET:
            raise BeanError(f"{descriptor.name!r} is not a servlet")
        self.server = server
        self.descriptor = descriptor
        self.instance = descriptor.impl()
        self.requests = 0

    @property
    def name(self) -> str:
        return self.descriptor.name

    def invoke(
        self, ctx: InvocationContext, method: str, args: tuple, identity: Any = None
    ) -> Generator[Event, Any, Any]:
        """Servlets are invocable like components (used by dispatch)."""
        result = yield from run_business_method(self.instance, method, ctx, args)
        return result

    def handle(
        self, ctx: InvocationContext, request: WebRequest
    ) -> Generator[Event, Any, Response]:
        self.requests += 1
        yield from ctx.cpu(ctx.costs.servlet_base)
        if ctx.costs.servlet_io_wait > 0:
            # Stack latency that does not occupy a CPU (see MiddlewareCosts).
            yield ctx.env.sleep(ctx.costs.servlet_io_wait)
        response = yield from run_business_method(
            self.instance, "handle", ctx, (request,)
        )
        if not isinstance(response, Response):
            raise BeanError(
                f"servlet {self.name!r} returned {type(response).__name__}, "
                "expected Response"
            )
        # Rendering cost scales with the generated page size.
        yield from ctx.cpu(ctx.costs.page_render_per_kb * response.html_size / 1024.0)
        return response


# ---------------------------------------------------------------------------
# Client side
# ---------------------------------------------------------------------------

_http_pools: Dict[int, ConnectionPool] = {}


def _response_wire_size(response: "Response") -> int:
    return response.wire_size()


def http_get(
    env: Environment,
    server: "AppServer",
    request: WebRequest,
    client_group: str = "local",
) -> Generator[Event, Any, Response]:
    """Issue one HTTP GET from ``request.client_node`` to ``server``.

    Without keep-alive (the paper's setting) this opens a fresh TCP
    connection per request: handshake round trip + request round trip.
    With keep-alive, connections are pooled per client node.
    """
    if not server.available:
        # The connection attempt hangs until the client-side timeout.
        yield env.sleep(CONNECT_TIMEOUT_MS)
        raise ServerUnavailable(server.name)
    network = server.network
    costs = server.costs
    info = RequestInfo(
        page=request.page,
        client_group=client_group,
        session_id=request.session_id,
        client_node=request.client_node,
    )
    # Per-session span sampling: the decision is a pure hash of the
    # session id (see SpanRecorder.sample), so either *every* request of
    # a session is traced or none is — partial trees would break the
    # design-rule tree walk — and the same sessions are kept in any
    # process.  An unsampled request carries no span recorder at all,
    # which keeps its per-call cost identical to spans-disabled runs.
    spans = server.spans
    if spans is not None and not spans.sample(request.session_id):
        spans = None
    ctx = InvocationContext(
        env=env,
        server=server,
        request=info,
        costs=costs,
        trace=server.trace,
        spans=spans,
    )
    # Root span of the request's causal tree: everything the page does —
    # servlet work, RMI, JDBC, JMS — nests under it via ctx.span_id.
    root_span = ctx.start_span(
        "http",
        "GET " + request.page,
        node=request.client_node or server.node.name,
        wide_area=server.is_wide_area(request.client_node),
    )
    if root_span is not None:
        ctx.span_id = root_span.id  # ctx is fresh; safe to bind in place

    # ``serve`` is a generator function, so it can be handed to the
    # transport layer directly — wrapping it in another generator would
    # add a frame to every resume of every request.
    def handler():
        return server.serve(ctx, request)

    try:
        if costs.http_keep_alive:
            pool = _http_pools.get(id(network))
            if pool is None:
                pool = ConnectionPool(network, kind="http")
                _http_pools[id(network)] = pool
            response = yield from pool.exchange(
                request.client_node,
                server.node.name,
                costs.http_request_size,
                handler,
                response_size_of=_response_wire_size,
            )
            return response

        connection = Connection(
            network, request.client_node, server.node.name, kind="http"
        )
        yield from connection.open()
        response = yield from connection.request(
            costs.http_request_size,
            handler,
            response_size_of=_response_wire_size,
        )
        connection.close()
        return response
    finally:
        ctx.finish_span(root_span)
