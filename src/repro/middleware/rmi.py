"""Component references and the RMI invocation fabric.

A :class:`LocalRef` dispatches through the in-VM container (cheap CPU
cost); a :class:`RemoteRef` performs a marshalled network round trip plus
the RMI stack's documented overheads — first-use stub-creation round
trip, and amortized distributed-garbage-collection traffic ("RMI can
require more than one round trip for a single method invocation ...
mainly due to ping packets and distributed garbage collection", §4.2).

Both expose the same ``call``/``entity``/``find`` surface, so caller code
is placement-oblivious.
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from ..simnet.kernel import Event
from .context import InvocationContext
from .descriptors import ComponentDescriptor
from .marshalling import call_size, result_size
from .resilience import RETRYABLE_ERRORS, RmiTimeout, backoff_delay

if TYPE_CHECKING:  # pragma: no cover
    from .server import AppServer

__all__ = ["ComponentRef", "LocalRef", "RemoteRef", "BoundEntityRef", "AccessError"]


class AccessError(Exception):
    """Raised when a component without a remote interface is called remotely."""


class ComponentRef:
    """Common reference surface for local and remote components."""

    descriptor: ComponentDescriptor

    def call(
        self, ctx: InvocationContext, method: str, *args: Any, identity: Any = None
    ) -> Generator[Event, Any, Any]:
        raise NotImplementedError

    def entity(self, primary_key: Any) -> "BoundEntityRef":
        """A reference bound to one entity identity (EJBObject analogue)."""
        return BoundEntityRef(self, primary_key)

    def find(
        self, ctx: InvocationContext, finder: str, *args: Any
    ) -> Generator[Event, Any, Any]:
        """Invoke a home finder method (entity homes only)."""
        return self.call(ctx, finder, *args)

    @property
    def is_remote(self) -> bool:
        raise NotImplementedError


class BoundEntityRef:
    """An entity reference with its primary key applied."""

    def __init__(self, home: ComponentRef, primary_key: Any):
        self.home = home
        self.primary_key = primary_key

    def call(
        self, ctx: InvocationContext, method: str, *args: Any
    ) -> Generator[Event, Any, Any]:
        return self.home.call(ctx, method, *args, identity=self.primary_key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.home.descriptor.name}[{self.primary_key!r}]>"


class LocalRef(ComponentRef):
    """In-VM reference: dispatches straight into the local container."""

    def __init__(self, container: Any):
        self.container = container
        self.descriptor = container.descriptor

    @property
    def is_remote(self) -> bool:
        return False

    def call(
        self, ctx: InvocationContext, method: str, *args: Any, identity: Any = None
    ) -> Generator[Event, Any, Any]:
        span = ctx.start_span(
            "invoke",
            f"{self.descriptor.name}.{method}",
            target=self.descriptor.name,
            method=method,
        )
        try:
            yield from ctx.cpu(ctx.costs.local_call)
            result = yield from self.container.invoke(
                ctx.in_span(span), method, args, identity=identity
            )
            return result
        finally:
            ctx.finish_span(span)


class RemoteRef(ComponentRef):
    """RMI stub: marshals the call to the component's server.

    The callee executes under a fresh context bound to the target server
    (transactions do not span the wire — there is no WAN 2PC in the
    paper's deployments).
    """

    def __init__(self, source_server: "AppServer", target_server: "AppServer", container: Any):
        self.source_server = source_server
        self.target_server = target_server
        self.container = container
        self.descriptor = container.descriptor
        self._stub_created = not source_server.costs.rmi_stub_creation_rtt
        self.calls = 0

    @property
    def is_remote(self) -> bool:
        return True

    def call(
        self, ctx: InvocationContext, method: str, *args: Any, identity: Any = None
    ) -> Generator[Event, Any, Any]:
        if not self.descriptor.remote_interface:
            raise AccessError(
                f"component {self.descriptor.name!r} exposes only a local "
                f"interface but was invoked from {self.source_server.name} "
                f"against {self.target_server.name} (design rule R1)"
            )
        costs = ctx.costs
        network = self.source_server.network
        src = self.source_server.node.name
        dst = self.target_server.node.name
        start = ctx.env.now
        span = ctx.start_span(
            "rmi",
            f"{self.descriptor.name}.{method}",
            wide_area=self.source_server.is_wide_area(dst),
            target=self.descriptor.name,
            method=method,
        )

        marshal_args = args if identity is None else args + (identity,)
        request_bytes = call_size(
            costs.rmi_marshal_base, costs.rmi_marshal_per_arg, method, marshal_args
        )
        # Deadline-based timeout with capped exponential-backoff retries.
        # The deadline is pure arithmetic — no race events, no pending
        # timeouts — so a call that never faults schedules exactly the
        # same kernel events as before the resilience layer existed.
        deadline = start + costs.rmi_timeout_ms
        attempt = 0
        try:
            while True:
                attempt += 1
                try:
                    result = yield from self._attempt(
                        ctx, span, method, args, identity, costs, network,
                        src, dst, request_bytes,
                    )
                    break
                except RETRYABLE_ERRORS as error:
                    stats = self.source_server.resilience
                    if attempt > costs.rmi_max_retries or ctx.env.now >= deadline:
                        if stats is not None:
                            stats.rmi_timeouts += 1
                        raise RmiTimeout(
                            self.descriptor.name, method, src, dst, attempt
                        ) from error
                    if stats is not None:
                        stats.rmi_retries += 1
                    yield ctx.env.sleep(
                        backoff_delay(
                            costs.rmi_backoff_base_ms, costs.rmi_backoff_cap_ms, attempt
                        )
                    )
        finally:
            ctx.finish_span(span)

        self.calls += 1
        ctx.record_call(
            "rmi", dst, self.descriptor.name, method, duration=ctx.env.now - start
        )
        return result

    def _attempt(
        self,
        ctx: InvocationContext,
        span,
        method: str,
        args: tuple,
        identity: Any,
        costs,
        network,
        src: str,
        dst: str,
        request_bytes: int,
    ) -> Generator[Event, Any, Any]:
        """One marshalled round trip (the pre-resilience ``call`` body)."""
        if not self._stub_created:
            # First use of the remote stub: an extra round trip to create
            # it (the paper pools stubs client-side to avoid this).
            yield from network.transfer(src, dst, 96, kind="rmi")
            yield from network.transfer(dst, src, 512, kind="rmi")
            self._stub_created = True

        yield from ctx.cpu(costs.rmi_cpu)  # client-side marshalling

        pool = self.source_server.rmi_pool(dst)
        connection = yield from pool.checkout(src, dst)
        try:
            yield from network.transfer(src, dst, request_bytes, kind="rmi")
            callee_ctx = ctx.at_server(self.target_server)
            if span is not None:
                callee_ctx.span_id = span.id  # fresh context; bind in place
            yield from callee_ctx.cpu(costs.rmi_cpu)  # server-side unmarshalling
            result = yield from self.container.invoke(
                callee_ctx, method, args, identity=identity
            )
            response_bytes = result_size(costs.rmi_result_base, result)
            yield from network.transfer(dst, src, response_bytes, kind="rmi")
        except BaseException:
            # A fault mid-exchange leaves the socket in an unknown state;
            # close it so the pool never hands out a broken connection.
            connection.close()
            raise
        finally:
            pool.checkin(connection)  # no-op when the connection is closed

        # Distributed garbage collection / ping traffic: the *latency*
        # effect is an amortized fractional extra round trip per call; the
        # *bytes* flow as detached ping/lease traffic sized to reproduce
        # "more than half of the data traffic incurred by RMI is due to
        # distributed garbage collection" (§4.3, citing [5]).
        if costs.rmi_dgc_fraction > 0:
            dgc_delay = costs.rmi_dgc_fraction * 2.0 * network.path_latency(src, dst)
            if dgc_delay > 0:
                yield ctx.env.sleep(dgc_delay)
            dgc_bytes = request_bytes + response_bytes
            ctx.env.process(
                self._dgc_traffic(network, src, dst, dgc_bytes),
                name=f"dgc-{self.descriptor.name}",
            )
        return result

    def _dgc_traffic(self, network, src: str, dst: str, total_bytes: int):
        """Background DGC lease/ping exchange accompanying one call."""
        half = max(32, total_bytes // 2)
        try:
            yield from network.transfer(src, dst, half, kind="dgc")
            yield from network.transfer(dst, src, total_bytes - half, kind="dgc")
        except RETRYABLE_ERRORS:
            # Detached background traffic has no waiter to fail into;
            # lease/ping bytes lost to a partition are simply gone.
            pass
