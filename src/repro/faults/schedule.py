"""Fault schedules: pure data describing *when* the network misbehaves.

A :class:`FaultSchedule` is a frozen, picklable value object — tuples of
frozen dataclasses holding only strings and floats — so it rides inside
a ``CellTask`` across process boundaries unchanged.  All randomness
(latency jitter, per-packet loss draws) is deferred to run time, where
the injector derives named streams from the cell's master seed via
:class:`repro.simnet.rng.Streams`; the schedule itself is deterministic
by construction, which is what keeps fault runs byte-identical under any
``--jobs N``.

Times are absolute simulated milliseconds from the start of the run
(the workload's warm-up included).  Link faults name the two *adjacent*
nodes of the testbed link they target (e.g. ``edge1``/``router``);
server crashes name the application-server node (e.g. ``edge1``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Tuple

__all__ = [
    "LinkPartition",
    "LatencySpike",
    "LossWindow",
    "ServerCrash",
    "FaultSchedule",
]


def _check_window(what: str, start: float, end: float) -> None:
    if start < 0:
        raise ValueError(f"{what}: start must be non-negative, got {start}")
    if end <= start:
        raise ValueError(f"{what}: end ({end}) must be after start ({start})")


@dataclass(frozen=True)
class LinkPartition:
    """The link between ``a`` and ``b`` is down during [start, end)."""

    a: str
    b: str
    start: float
    end: float

    def validate(self) -> None:
        _check_window(f"partition {self.a}<->{self.b}", self.start, self.end)


@dataclass(frozen=True)
class LatencySpike:
    """Extra one-way latency (+- uniform jitter) on a link during [start, end)."""

    a: str
    b: str
    start: float
    end: float
    extra_ms: float
    jitter_ms: float = 0.0

    def validate(self) -> None:
        _check_window(f"latency spike {self.a}<->{self.b}", self.start, self.end)
        if self.extra_ms < 0 or self.jitter_ms < 0:
            raise ValueError("latency spike: extra_ms/jitter_ms must be non-negative")
        if self.extra_ms == 0 and self.jitter_ms == 0:
            raise ValueError("latency spike: extra_ms and jitter_ms are both zero")


@dataclass(frozen=True)
class LossWindow:
    """Each packet crossing the link is dropped with ``probability``."""

    a: str
    b: str
    start: float
    end: float
    probability: float

    def validate(self) -> None:
        _check_window(f"loss window {self.a}<->{self.b}", self.start, self.end)
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"loss window: probability must be in (0, 1], got {self.probability}"
            )


@dataclass(frozen=True)
class ServerCrash:
    """The app-server process on ``server`` is down during [start, end).

    A crash drains volatile server state (HTTP sessions, stateful bean
    instances, replica and query caches, connection pools); the restart
    at ``end`` comes back cold.  The *node* keeps routing — only the
    process dies — so clients can fail over to another entry point.
    """

    server: str
    start: float
    end: float

    def validate(self) -> None:
        _check_window(f"crash of {self.server}", self.start, self.end)


@dataclass(frozen=True)
class FaultSchedule:
    """The full fault plan for one run; empty by default."""

    name: str = "empty"
    partitions: Tuple[LinkPartition, ...] = ()
    latency_spikes: Tuple[LatencySpike, ...] = ()
    loss_windows: Tuple[LossWindow, ...] = ()
    crashes: Tuple[ServerCrash, ...] = field(default=())

    @property
    def empty(self) -> bool:
        return not (
            self.partitions or self.latency_spikes or self.loss_windows or self.crashes
        )

    def validate(self) -> "FaultSchedule":
        for fault in (
            *self.partitions,
            *self.latency_spikes,
            *self.loss_windows,
            *self.crashes,
        ):
            fault.validate()
        return self

    def windows(self) -> Tuple[dict, ...]:
        """Labelled fault windows for telemetry overlays.

        A flat, canonically ordered projection — ``{"kind", "label",
        "start", "end"}`` sorted by (start, end, kind, label) — that the
        time-series layer stamps onto its artifacts so SLO evaluation
        can flag in-fault windows and report recovery time per fault.
        """
        rows = []
        for p in self.partitions:
            rows.append(
                {"kind": "partition", "label": f"{p.a}<->{p.b}",
                 "start": p.start, "end": p.end}
            )
        for s in self.latency_spikes:
            rows.append(
                {"kind": "latency", "label": f"{s.a}<->{s.b}",
                 "start": s.start, "end": s.end}
            )
        for w in self.loss_windows:
            rows.append(
                {"kind": "loss", "label": f"{w.a}<->{w.b}",
                 "start": w.start, "end": w.end}
            )
        for c in self.crashes:
            rows.append(
                {"kind": "crash", "label": c.server,
                 "start": c.start, "end": c.end}
            )
        rows.sort(key=lambda r: (r["start"], r["end"], r["kind"], r["label"]))
        return tuple(rows)

    # -- JSON round trip ----------------------------------------------------
    def to_json(self) -> dict:
        """Plain-dict form (sorted-key friendly) for scenario files."""
        return {
            "name": self.name,
            "partitions": [asdict(p) for p in self.partitions],
            "latency_spikes": [asdict(s) for s in self.latency_spikes],
            "loss_windows": [asdict(w) for w in self.loss_windows],
            "crashes": [asdict(c) for c in self.crashes],
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultSchedule":
        unknown = set(data) - {
            "name",
            "partitions",
            "latency_spikes",
            "loss_windows",
            "crashes",
        }
        if unknown:
            raise ValueError(f"unknown fault-schedule keys: {sorted(unknown)}")
        return cls(
            name=data.get("name", "custom"),
            partitions=tuple(
                LinkPartition(**entry) for entry in data.get("partitions", ())
            ),
            latency_spikes=tuple(
                LatencySpike(**entry) for entry in data.get("latency_spikes", ())
            ),
            loss_windows=tuple(
                LossWindow(**entry) for entry in data.get("loss_windows", ())
            ),
            crashes=tuple(ServerCrash(**entry) for entry in data.get("crashes", ())),
        ).validate()
