"""The per-configuration availability/degradation report.

``collect_resilience`` condenses one finished run into a canonical plain
dict (picklable, sorted keys) carried on ``ExperimentResult`` /
``CellResult`` next to the monitor state; ``build_availability_table`` /
``render_availability_table`` turn a five-configuration series of those
dicts into the availability table printed alongside Tables 6–7 when a
fault scenario is active.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.patterns import PatternLevel, level_name

__all__ = [
    "collect_resilience",
    "AvailabilityTable",
    "build_availability_table",
    "render_availability_table",
    "availability_to_json",
]


def collect_resilience(system, generator=None) -> dict:
    """Snapshot the deployment's resilience counters (canonical dict).

    Always cheap and always collected — in a fault-free run every value
    is zero, which is itself evidence the run was clean.  Closes any
    still-open staleness windows at the current sim time first.
    """
    stats = system.resilience
    data: dict = {
        "requests": 0,
        "errors": 0,
        "failovers": 0,
    }
    if generator is not None:
        data["requests"] = generator.total_requests()
        clients = getattr(generator, "clients", None)
        if clients is not None:
            data["errors"] = sum(client.errors for client in clients)
            data["failovers"] = sum(client.failovers for client in clients)
        else:
            # Open-loop generator: counters live on the generator itself,
            # and dropped arrivals are a resilience fact of their own.
            # The key is only present for open-loop runs, so closed-loop
            # artifacts stay byte-identical.
            data["errors"] = generator.errors
            data["failovers"] = generator.failovers
            data["dropped_sessions"] = generator.dropped_sessions
    if stats is not None:
        stats.finalize(system.env.now)
        data.update(stats.to_dict())
    cluster = getattr(system, "cluster", None)
    if cluster is not None:
        # Only present for data-tier policies, so every artifact of a
        # single-instance run stays byte-identical to pre-cluster output.
        data["cluster"] = cluster.stats.to_dict()
    method_cache: dict = {}
    for server_name in sorted(getattr(system, "servers", {})):
        cache = getattr(system.servers[server_name], "method_cache", None)
        if cache is None:
            continue
        stats = cache.stats.as_dict()
        for key, value in stats.items():
            if key == "staleness_max_ms":
                method_cache[key] = max(method_cache.get(key, 0.0), value)
            else:
                method_cache[key] = method_cache.get(key, 0) + value
    if method_cache:
        # Only present under level 6, same byte-identity discipline.
        data["method_cache"] = method_cache
    return data


@dataclass(frozen=True)
class AvailabilityTable:
    """One application's availability grid under one fault scenario."""

    app: str
    scenario: str
    # ((level, resilience dict), ...) in ascending level order.
    rows: Tuple[Tuple[PatternLevel, dict], ...]
    # Custom row labels (custom-policy runs); absent levels use level_name.
    labels: Dict[PatternLevel, str] = field(default_factory=dict)
    # Effective topology of the series' runs (edge count, WAN knobs).
    topology: Optional[dict] = None

    def row_label(self, level: PatternLevel) -> str:
        return self.labels.get(PatternLevel(level)) or level_name(level)


def build_availability_table(app: str, series: Dict, scenario: str = "") -> AvailabilityTable:
    """Assemble the table from a run series (results carry ``resilience``)."""
    rows = []
    labels: Dict[PatternLevel, str] = {}
    topology = None
    for level in sorted(series, key=int):
        result = series[level]
        resilience = result.resilience or {}
        rows.append((PatternLevel(level), resilience))
        label = getattr(result, "label", None)
        if label:
            labels[PatternLevel(level)] = label
        if topology is None:
            topology = getattr(result, "topology", None)
    return AvailabilityTable(
        app=app, scenario=scenario, rows=tuple(rows), labels=labels, topology=topology
    )


def _availability_pct(row: dict) -> float:
    requests = row.get("requests", 0)
    errors = row.get("errors", 0)
    attempted = requests + errors
    if not attempted:
        return 100.0
    return 100.0 * requests / attempted


def render_availability_table(table: AvailabilityTable) -> str:
    """Text rendering, one configuration per row."""
    title = f"Availability under fault scenario '{table.scenario or '?'}' ({table.app})"
    header = (
        f"{'Configuration':32s} {'ok':>7s} {'err':>6s} {'avail%':>7s} "
        f"{'failov':>6s} {'retry':>6s} {'t/out':>6s} {'redlv':>6s} "
        f"{'drop':>5s} {'stale(s)':>9s}"
    )
    lines = [title, header, "-" * len(header)]
    for level, row in table.rows:
        staleness_s = sum(row.get("staleness_ms", {}).values()) / 1000.0
        lines.append(
            f"{table.row_label(level):32s} "
            f"{row.get('requests', 0):>7d} "
            f"{row.get('errors', 0):>6d} "
            f"{_availability_pct(row):>7.2f} "
            f"{row.get('failovers', 0):>6d} "
            f"{row.get('rmi_retries', 0):>6d} "
            f"{row.get('rmi_timeouts', 0):>6d} "
            f"{row.get('jms_redeliveries', 0):>6d} "
            f"{row.get('dropped_updates', 0):>5d} "
            f"{staleness_s:>9.3f}"
        )
        cluster = row.get("cluster")
        if cluster:
            lines.append(
                "  data tier: "
                f"elections={cluster.get('elections_won', 0)} "
                f"failovers={cluster.get('leader_failovers', 0)} "
                f"quorum_commits={cluster.get('quorum_commits', 0)} "
                f"xshard_txns={cluster.get('cross_shard_txns', 0)} "
                f"stale_reads={cluster.get('stale_reads_served', 0)} "
                f"staleness={cluster.get('staleness_ms', 0.0) / 1000.0:.3f}s"
            )
        method_cache = row.get("method_cache")
        if method_cache:
            lines.append(
                "  method cache: "
                f"hits={method_cache.get('hits', 0)} "
                f"stale_serves={method_cache.get('stale_serves', 0)} "
                f"drops={method_cache.get('drops', 0)} "
                f"missed={method_cache.get('missed_payloads', 0)} "
                f"staleness={method_cache.get('staleness_total_ms', 0.0) / 1000.0:.3f}s "
                f"(max {method_cache.get('staleness_max_ms', 0.0) / 1000.0:.3f}s)"
            )
    return "\n".join(lines)


def availability_to_json(tables) -> str:
    """Canonical JSON for the availability artifact (sorted keys)."""
    payload = {}
    for table in tables:
        entry: dict = {
            "scenario": table.scenario,
            "configurations": {
                f"L{int(level)}": row for level, row in table.rows
            },
        }
        if table.labels:
            entry["labels"] = {
                f"L{int(level)}": label for level, label in table.labels.items()
            }
        if table.topology is not None:
            entry["topology"] = table.topology
        payload[table.app] = entry
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
