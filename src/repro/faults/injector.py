"""Turn a :class:`FaultSchedule` into live kernel processes.

``FaultInjector.install`` spawns one process per scheduled fault window;
each sleeps to its window start, flips the target's fault state, sleeps
to the window end, and flips it back.  An empty schedule installs
nothing — zero kernel events, zero RNG draws — which is the empty-
schedule byte-identity contract.

Jitter and loss draws use streams named after the faulted link
(``fault.latency.<link>``, ``fault.loss.<link>``), derived from the
cell's master seed: independent of every workload stream, identical for
any worker count.

When span recording is on, each applied window is also recorded as a
``fault`` span, so partitions and crashes show up on the trace timeline
next to the requests they disturbed.
"""

from __future__ import annotations

from typing import Optional

from ..simnet.kernel import Environment
from ..simnet.rng import Streams
from .schedule import FaultSchedule

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies one schedule to one deployed system."""

    def __init__(self, schedule: FaultSchedule, streams: Streams):
        self.schedule = schedule.validate()
        self.streams = streams
        self.partitions_applied = 0
        self.latency_spikes_applied = 0
        self.loss_windows_applied = 0
        self.crashes_applied = 0
        # Faults naming servers absent from this deployment (e.g. an edge
        # crash under the CENTRALIZED plan, which stands up no edge
        # process) are counted here and skipped, not errors: one scenario
        # must run unchanged across all five configurations.
        self.skipped = 0
        self._spans = None
        self._env: Optional[Environment] = None

    def install(self, env: Environment, system) -> "FaultInjector":
        """Spawn the fault processes against ``system`` (idempotent per call)."""
        self._env = env
        self._spans = getattr(system, "spans", None)
        network = system.testbed.network
        for index, fault in enumerate(self.schedule.partitions):
            link = network.link_between(fault.a, fault.b)
            env.process(
                self._run_partition(env, link, fault),
                name=f"fault-partition-{index}",
            )
        for index, fault in enumerate(self.schedule.latency_spikes):
            link = network.link_between(fault.a, fault.b)
            rng = self.streams.get(f"fault.latency.{link.name}")
            env.process(
                self._run_latency_spike(env, link, fault, rng),
                name=f"fault-latency-{index}",
            )
        for index, fault in enumerate(self.schedule.loss_windows):
            link = network.link_between(fault.a, fault.b)
            rng = self.streams.get(f"fault.loss.{link.name}")
            env.process(
                self._run_loss_window(env, link, fault, rng),
                name=f"fault-loss-{index}",
            )
        for index, fault in enumerate(self.schedule.crashes):
            server = system.servers.get(fault.server)
            if server is None:
                # A crash naming no app server may target a data-tier
                # seat ("db", or an edge hosting only replicas): resolve
                # it to the cluster members seated there, if any.
                cluster = getattr(system, "cluster", None)
                if cluster is not None:
                    server = cluster.seat_target(fault.server)
            if server is None:
                self.skipped += 1
                continue
            env.process(
                self._run_crash(env, server, fault), name=f"fault-crash-{index}"
            )
        return self

    # -- span bookkeeping ---------------------------------------------------
    def _open_span(self, name: str, node: str):
        if self._spans is None:
            return None
        return self._spans.start_span(
            kind="fault", name=name, node=node, time=self._env.now
        )

    def _close_span(self, span) -> None:
        if span is not None:
            self._spans.finish_span(span, self._env.now)

    # -- fault processes ----------------------------------------------------
    def _run_partition(self, env, link, fault):
        if fault.start > 0:
            yield env.sleep(fault.start)
        link.set_down(True)
        self.partitions_applied += 1
        span = self._open_span(f"partition {link.name}", fault.a)
        yield env.sleep(fault.end - fault.start)
        link.set_down(False)
        self._close_span(span)

    def _run_latency_spike(self, env, link, fault, rng):
        if fault.start > 0:
            yield env.sleep(fault.start)
        link.set_latency_fault(fault.extra_ms, fault.jitter_ms, rng=rng)
        self.latency_spikes_applied += 1
        span = self._open_span(f"latency-spike {link.name}", fault.a)
        yield env.sleep(fault.end - fault.start)
        link.clear_latency_fault()
        self._close_span(span)

    def _run_loss_window(self, env, link, fault, rng):
        if fault.start > 0:
            yield env.sleep(fault.start)
        link.set_loss(fault.probability, rng=rng)
        self.loss_windows_applied += 1
        span = self._open_span(f"loss {link.name}", fault.a)
        yield env.sleep(fault.end - fault.start)
        link.clear_loss()
        self._close_span(span)

    def _run_crash(self, env, server, fault):
        if fault.start > 0:
            yield env.sleep(fault.start)
        server.crash()
        self.crashes_applied += 1
        span = self._open_span(f"crash {server.name}", server.node.name)
        yield env.sleep(fault.end - fault.start)
        server.restart()
        self._close_span(span)
