"""Deployment-wide resilience counters.

One :class:`ResilienceStats` instance is shared by every server, the JMS
provider and the update propagator of a deployment (wired by
``distribute()``), so the availability report reads a single canonical
object instead of walking ad-hoc per-component attributes.  The class
lives at the bottom of the dependency graph — it imports nothing — so
both ``simnet``-adjacent and middleware code can use it freely.

Staleness accounting: a replica host is *stale* from the moment an
update destined for it is first dropped (failed sync push, failed JMS
delivery) until the next update lands there — or the run ends
(:meth:`finalize`).  The summed window lengths are the paper-style
"seconds of staleness while partitioned" number.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["ResilienceStats"]


class ResilienceStats:
    """Counters for the fault/resilience layer; all zero in fault-free runs."""

    def __init__(self):
        self.rmi_retries = 0
        self.rmi_timeouts = 0
        self.jms_redeliveries = 0
        self.jms_dead_lettered = 0
        self.sync_push_failures = 0
        self.dropped_updates = 0  # dead-lettered messages + failed sync pushes
        self.pool_refusals = 0
        self.server_crashes = 0
        # server name -> time the open staleness window started
        self._stale_since: Dict[str, float] = {}
        # server name -> accumulated staleness (ms) over closed windows
        self.staleness_ms: Dict[str, float] = {}

    # -- staleness windows --------------------------------------------------
    def mark_stale(self, server: str, now: float) -> None:
        """Open a staleness window for ``server`` (no-op if already open)."""
        self._stale_since.setdefault(server, now)

    def mark_fresh(self, server: str, now: float) -> None:
        """Close the open staleness window for ``server``, if any."""
        since = self._stale_since.pop(server, None)
        if since is not None:
            self.staleness_ms[server] = self.staleness_ms.get(server, 0.0) + (now - since)

    def finalize(self, now: float) -> None:
        """Close every still-open window at end of run (idempotent)."""
        for server in sorted(self._stale_since):
            self.mark_fresh(server, now)

    # -- reporting ----------------------------------------------------------
    @property
    def total_staleness_ms(self) -> float:
        return sum(self.staleness_ms.values())

    def to_dict(self) -> dict:
        """Canonical picklable snapshot (sorted keys, plain types)."""
        return {
            "rmi_retries": self.rmi_retries,
            "rmi_timeouts": self.rmi_timeouts,
            "jms_redeliveries": self.jms_redeliveries,
            "jms_dead_lettered": self.jms_dead_lettered,
            "sync_push_failures": self.sync_push_failures,
            "dropped_updates": self.dropped_updates,
            "pool_refusals": self.pool_refusals,
            "server_crashes": self.server_crashes,
            "staleness_ms": {
                name: round(self.staleness_ms[name], 6)
                for name in sorted(self.staleness_ms)
            },
        }
