"""Deterministic fault injection and the availability report.

The WAN in the source paper is slow *and unreliable*; this package adds
the unreliable half.  A :class:`FaultSchedule` (pure data, picklable)
describes link partitions, latency spikes, packet-loss windows and
app-server crash/restart windows; :class:`FaultInjector` turns it into
kernel processes against a deployed system; :mod:`~repro.faults.report`
condenses the middleware's resilience counters into the
per-configuration availability table.

Determinism contract: an empty schedule adds zero kernel events and zero
RNG draws (runs are byte-identical to fault-free ones); a non-empty
schedule draws only from named streams derived from the cell's master
seed, so results are byte-identical under any ``--jobs N``.
"""

from .injector import FaultInjector
from .report import (
    AvailabilityTable,
    availability_to_json,
    build_availability_table,
    collect_resilience,
    render_availability_table,
)
from .scenarios import SCENARIOS, load_schedule, scenario
from .schedule import (
    FaultSchedule,
    LatencySpike,
    LinkPartition,
    LossWindow,
    ServerCrash,
)
from .stats import ResilienceStats

__all__ = [
    "FaultSchedule",
    "LinkPartition",
    "LatencySpike",
    "LossWindow",
    "ServerCrash",
    "FaultInjector",
    "ResilienceStats",
    "SCENARIOS",
    "scenario",
    "load_schedule",
    "collect_resilience",
    "AvailabilityTable",
    "build_availability_table",
    "render_availability_table",
    "availability_to_json",
]
