"""Canned fault scenarios, parameterized by run duration and topology.

A scenario is a function ``(duration_ms, warmup_ms, edges) -> FaultSchedule``:
windows are placed relative to the measured (post-warm-up) portion of
the run so the same scenario name works for a 40-second smoke cell and a
full 20-minute sweep, and faults target the *actual* edge servers of the
testbed — the first edge for single-target scenarios, every edge for
WAN-wide ones — so ``--edges 1`` and ``--edges 10`` both work.  When no
edge list is given, the builders derive one from the effective testbed
topology (``TestbedConfig().edge_servers``) rather than assuming the
paper's two edges.  ``load_schedule`` is the CLI entry point: it accepts
either a canned scenario name or a path to a JSON file matching
:meth:`FaultSchedule.to_json`.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..simnet.topology import TestbedConfig
from .schedule import (
    FaultSchedule,
    LatencySpike,
    LinkPartition,
    LossWindow,
    ServerCrash,
)

__all__ = [
    "SCENARIOS",
    "DEFAULT_EDGES",
    "default_edges",
    "scenario",
    "load_schedule",
]

# The paper's testbed: two edge servers behind the WAN router.  Kept for
# callers that want the paper's topology explicitly; the builders now
# default to the effective topology via :func:`default_edges`.
DEFAULT_EDGES: Tuple[str, ...] = ("edge1", "edge2")


def default_edges(config: Optional[TestbedConfig] = None) -> Tuple[str, ...]:
    """Edge names of the effective topology (``edge1`` .. ``edgeN``).

    Mirrors the naming loop in :func:`repro.simnet.topology.build_testbed`
    so canned scenarios compose with ``--edges N`` for any N.
    """
    config = config or TestbedConfig()
    return tuple(f"edge{i + 1}" for i in range(config.edge_servers))


def _resolve_edges(edges: Optional[Sequence[str]]) -> Tuple[str, ...]:
    return default_edges() if edges is None else tuple(edges)


def _window(duration_ms: float, warmup_ms: float, lo: float, hi: float):
    """[lo, hi) as fractions of the measured portion, in absolute ms."""
    active = max(0.0, duration_ms - warmup_ms)
    return warmup_ms + lo * active, warmup_ms + hi * active


def _target(edges: Sequence[str]) -> str:
    """The edge a single-server scenario hits (the first one)."""
    if not edges:
        raise ValueError("fault scenarios need at least one edge server")
    return edges[0]


def edge_partition(
    duration_ms: float,
    warmup_ms: float = 0.0,
    edges: Optional[Sequence[str]] = None,
) -> FaultSchedule:
    """The paper's nightmare: the WAN link to one edge goes dark mid-run.

    Every request from that edge's clients that needs the main server —
    centralized page fetches, remote facade calls, replica pulls, sync
    pushes — fails for the window; edge-heavy patterns keep serving
    local reads from replicas and caches while staleness accrues.
    """
    edges = _resolve_edges(edges)
    start, end = _window(duration_ms, warmup_ms, 0.30, 0.60)
    return FaultSchedule(
        name="edge-partition",
        partitions=(LinkPartition("router", _target(edges), start, end),),
    ).validate()


def edge_crash(
    duration_ms: float,
    warmup_ms: float = 0.0,
    edges: Optional[Sequence[str]] = None,
) -> FaultSchedule:
    """One edge's app-server process dies and restarts cold.

    Routing survives, so that edge's clients fail over to the main
    server over the WAN for the window; after restart the edge serves
    again with empty session stores, replicas and caches.
    """
    edges = _resolve_edges(edges)
    start, end = _window(duration_ms, warmup_ms, 0.30, 0.60)
    return FaultSchedule(
        name="edge-crash", crashes=(ServerCrash(_target(edges), start, end),)
    ).validate()


def flaky_wan(
    duration_ms: float,
    warmup_ms: float = 0.0,
    edges: Optional[Sequence[str]] = None,
) -> FaultSchedule:
    """Lossy, jittery WAN: 2% loss on every edge link plus jitter on one."""
    edges = _resolve_edges(edges)
    start, end = _window(duration_ms, warmup_ms, 0.25, 0.75)
    target = _target(edges)
    return FaultSchedule(
        name="flaky-wan",
        loss_windows=tuple(
            LossWindow("router", edge, start, end, probability=0.02)
            for edge in edges
        ),
        latency_spikes=(
            LatencySpike("router", target, start, end, extra_ms=30.0, jitter_ms=40.0),
        ),
    ).validate()


def latency_spike(
    duration_ms: float,
    warmup_ms: float = 0.0,
    edges: Optional[Sequence[str]] = None,
) -> FaultSchedule:
    """A routing flap quadruples one edge's one-way WAN latency for a while."""
    edges = _resolve_edges(edges)
    start, end = _window(duration_ms, warmup_ms, 0.35, 0.65)
    return FaultSchedule(
        name="latency-spike",
        latency_spikes=(
            LatencySpike(
                "router", _target(edges), start, end, extra_ms=300.0, jitter_ms=100.0
            ),
        ),
    ).validate()


def db_leader_crash(
    duration_ms: float,
    warmup_ms: float = 0.0,
    edges: Optional[Sequence[str]] = None,
) -> FaultSchedule:
    """The data tier's main-seat replicas crash mid-run.

    Under a single-instance policy the ``db`` target simply skips (the
    paper's database never fails); under a replicated ``data_tier`` the
    fault injector resolves ``db`` to the cluster's main seat, killing
    every raft member seated there — the anchor leaders — and forcing
    re-elections and, on restart, log catch-up.
    """
    edges = _resolve_edges(edges)
    start, end = _window(duration_ms, warmup_ms, 0.30, 0.60)
    return FaultSchedule(
        name="db-leader-crash", crashes=(ServerCrash("db", start, end),)
    ).validate()


def db_shard_partition(
    duration_ms: float,
    warmup_ms: float = 0.0,
    edges: Optional[Sequence[str]] = None,
) -> FaultSchedule:
    """The WAN link to the *last* edge's shard replicas goes dark.

    Complements ``edge-partition`` (which isolates the first edge): the
    partitioned edge's raft members fall behind the replicated log, and
    stale-local reads served there accrue measurable staleness until the
    heal triggers catch-up.
    """
    edges = _resolve_edges(edges)
    _target(edges)  # same "at least one edge" contract as the others
    start, end = _window(duration_ms, warmup_ms, 0.35, 0.55)
    return FaultSchedule(
        name="db-shard-partition",
        partitions=(LinkPartition("router", edges[-1], start, end),),
    ).validate()


SCENARIOS: Dict[str, Callable[..., FaultSchedule]] = {
    "edge-partition": edge_partition,
    "edge-crash": edge_crash,
    "flaky-wan": flaky_wan,
    "latency-spike": latency_spike,
    "db-leader-crash": db_leader_crash,
    "db-shard-partition": db_shard_partition,
}


def scenario(
    name: str,
    duration_ms: float,
    warmup_ms: float = 0.0,
    edges: Optional[Sequence[str]] = None,
) -> FaultSchedule:
    """Build the canned scenario ``name`` for a run of the given length."""
    try:
        build = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault scenario {name!r}; canned scenarios: "
            f"{', '.join(sorted(SCENARIOS))}"
        ) from None
    return build(duration_ms, warmup_ms, edges)


def load_schedule(
    spec: str,
    duration_ms: float,
    warmup_ms: float = 0.0,
    edges: Optional[Sequence[str]] = None,
) -> FaultSchedule:
    """Resolve a ``--faults`` argument: canned name or JSON file path."""
    looks_like_path = spec.endswith(".json") or os.sep in spec
    if looks_like_path or (spec not in SCENARIOS and os.path.exists(spec)):
        with open(spec, "r", encoding="utf-8") as handle:
            return FaultSchedule.from_json(json.load(handle))
    return scenario(spec, duration_ms, warmup_ms, edges)
