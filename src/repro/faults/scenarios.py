"""Canned fault scenarios, parameterized by the run's duration.

A scenario is a function ``(duration_ms, warmup_ms) -> FaultSchedule``:
windows are placed relative to the measured (post-warm-up) portion of
the run so the same scenario name works for a 40-second smoke cell and a
full 20-minute sweep.  ``load_schedule`` is the CLI entry point: it
accepts either a canned scenario name or a path to a JSON file matching
:meth:`FaultSchedule.to_json`.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict

from .schedule import (
    FaultSchedule,
    LatencySpike,
    LinkPartition,
    LossWindow,
    ServerCrash,
)

__all__ = ["SCENARIOS", "scenario", "load_schedule"]


def _window(duration_ms: float, warmup_ms: float, lo: float, hi: float):
    """[lo, hi) as fractions of the measured portion, in absolute ms."""
    active = max(0.0, duration_ms - warmup_ms)
    return warmup_ms + lo * active, warmup_ms + hi * active


def edge_partition(duration_ms: float, warmup_ms: float = 0.0) -> FaultSchedule:
    """The paper's nightmare: the WAN link to edge1 goes dark mid-run.

    Every request from edge1's clients that needs the main server —
    centralized page fetches, remote facade calls, replica pulls, sync
    pushes — fails for the window; edge-heavy patterns keep serving
    local reads from replicas and caches while staleness accrues.
    """
    start, end = _window(duration_ms, warmup_ms, 0.30, 0.60)
    return FaultSchedule(
        name="edge-partition",
        partitions=(LinkPartition("router", "edge1", start, end),),
    ).validate()


def edge_crash(duration_ms: float, warmup_ms: float = 0.0) -> FaultSchedule:
    """edge1's app-server process dies and restarts cold.

    Routing survives, so edge1's clients fail over to the main server
    over the WAN for the window; after restart the edge serves again
    with empty session stores, replicas and caches.
    """
    start, end = _window(duration_ms, warmup_ms, 0.30, 0.60)
    return FaultSchedule(
        name="edge-crash", crashes=(ServerCrash("edge1", start, end),)
    ).validate()


def flaky_wan(duration_ms: float, warmup_ms: float = 0.0) -> FaultSchedule:
    """Lossy, jittery WAN: 2% loss on both edge links plus jitter on edge1."""
    start, end = _window(duration_ms, warmup_ms, 0.25, 0.75)
    return FaultSchedule(
        name="flaky-wan",
        loss_windows=(
            LossWindow("router", "edge1", start, end, probability=0.02),
            LossWindow("router", "edge2", start, end, probability=0.02),
        ),
        latency_spikes=(
            LatencySpike("router", "edge1", start, end, extra_ms=30.0, jitter_ms=40.0),
        ),
    ).validate()


def latency_spike(duration_ms: float, warmup_ms: float = 0.0) -> FaultSchedule:
    """A routing flap quadruples edge1's one-way WAN latency for a while."""
    start, end = _window(duration_ms, warmup_ms, 0.35, 0.65)
    return FaultSchedule(
        name="latency-spike",
        latency_spikes=(
            LatencySpike("router", "edge1", start, end, extra_ms=300.0, jitter_ms=100.0),
        ),
    ).validate()


SCENARIOS: Dict[str, Callable[[float, float], FaultSchedule]] = {
    "edge-partition": edge_partition,
    "edge-crash": edge_crash,
    "flaky-wan": flaky_wan,
    "latency-spike": latency_spike,
}


def scenario(name: str, duration_ms: float, warmup_ms: float = 0.0) -> FaultSchedule:
    """Build the canned scenario ``name`` for a run of the given length."""
    try:
        build = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault scenario {name!r}; canned scenarios: "
            f"{', '.join(sorted(SCENARIOS))}"
        ) from None
    return build(duration_ms, warmup_ms)


def load_schedule(spec: str, duration_ms: float, warmup_ms: float = 0.0) -> FaultSchedule:
    """Resolve a ``--faults`` argument: canned name or JSON file path."""
    looks_like_path = spec.endswith(".json") or os.sep in spec
    if looks_like_path or (spec not in SCENARIOS and os.path.exists(spec)):
        with open(spec, "r", encoding="utf-8") as handle:
            return FaultSchedule.from_json(json.load(handle))
    return scenario(spec, duration_ms, warmup_ms)
