"""Canned fault scenarios, parameterized by run duration and topology.

A scenario is a function ``(duration_ms, warmup_ms, edges) -> FaultSchedule``:
windows are placed relative to the measured (post-warm-up) portion of
the run so the same scenario name works for a 40-second smoke cell and a
full 20-minute sweep, and faults target the *actual* edge servers of the
testbed — the first edge for single-target scenarios, every edge for
WAN-wide ones — so ``--edges 1`` and ``--edges 10`` both work.
``load_schedule`` is the CLI entry point: it accepts either a canned
scenario name or a path to a JSON file matching
:meth:`FaultSchedule.to_json`.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Sequence, Tuple

from .schedule import (
    FaultSchedule,
    LatencySpike,
    LinkPartition,
    LossWindow,
    ServerCrash,
)

__all__ = ["SCENARIOS", "DEFAULT_EDGES", "scenario", "load_schedule"]

# The paper's testbed: two edge servers behind the WAN router.
DEFAULT_EDGES: Tuple[str, ...] = ("edge1", "edge2")


def _window(duration_ms: float, warmup_ms: float, lo: float, hi: float):
    """[lo, hi) as fractions of the measured portion, in absolute ms."""
    active = max(0.0, duration_ms - warmup_ms)
    return warmup_ms + lo * active, warmup_ms + hi * active


def _target(edges: Sequence[str]) -> str:
    """The edge a single-server scenario hits (the first one)."""
    if not edges:
        raise ValueError("fault scenarios need at least one edge server")
    return edges[0]


def edge_partition(
    duration_ms: float, warmup_ms: float = 0.0, edges: Sequence[str] = DEFAULT_EDGES
) -> FaultSchedule:
    """The paper's nightmare: the WAN link to one edge goes dark mid-run.

    Every request from that edge's clients that needs the main server —
    centralized page fetches, remote facade calls, replica pulls, sync
    pushes — fails for the window; edge-heavy patterns keep serving
    local reads from replicas and caches while staleness accrues.
    """
    start, end = _window(duration_ms, warmup_ms, 0.30, 0.60)
    return FaultSchedule(
        name="edge-partition",
        partitions=(LinkPartition("router", _target(edges), start, end),),
    ).validate()


def edge_crash(
    duration_ms: float, warmup_ms: float = 0.0, edges: Sequence[str] = DEFAULT_EDGES
) -> FaultSchedule:
    """One edge's app-server process dies and restarts cold.

    Routing survives, so that edge's clients fail over to the main
    server over the WAN for the window; after restart the edge serves
    again with empty session stores, replicas and caches.
    """
    start, end = _window(duration_ms, warmup_ms, 0.30, 0.60)
    return FaultSchedule(
        name="edge-crash", crashes=(ServerCrash(_target(edges), start, end),)
    ).validate()


def flaky_wan(
    duration_ms: float, warmup_ms: float = 0.0, edges: Sequence[str] = DEFAULT_EDGES
) -> FaultSchedule:
    """Lossy, jittery WAN: 2% loss on every edge link plus jitter on one."""
    start, end = _window(duration_ms, warmup_ms, 0.25, 0.75)
    target = _target(edges)
    return FaultSchedule(
        name="flaky-wan",
        loss_windows=tuple(
            LossWindow("router", edge, start, end, probability=0.02)
            for edge in edges
        ),
        latency_spikes=(
            LatencySpike("router", target, start, end, extra_ms=30.0, jitter_ms=40.0),
        ),
    ).validate()


def latency_spike(
    duration_ms: float, warmup_ms: float = 0.0, edges: Sequence[str] = DEFAULT_EDGES
) -> FaultSchedule:
    """A routing flap quadruples one edge's one-way WAN latency for a while."""
    start, end = _window(duration_ms, warmup_ms, 0.35, 0.65)
    return FaultSchedule(
        name="latency-spike",
        latency_spikes=(
            LatencySpike(
                "router", _target(edges), start, end, extra_ms=300.0, jitter_ms=100.0
            ),
        ),
    ).validate()


SCENARIOS: Dict[str, Callable[..., FaultSchedule]] = {
    "edge-partition": edge_partition,
    "edge-crash": edge_crash,
    "flaky-wan": flaky_wan,
    "latency-spike": latency_spike,
}


def scenario(
    name: str,
    duration_ms: float,
    warmup_ms: float = 0.0,
    edges: Sequence[str] = DEFAULT_EDGES,
) -> FaultSchedule:
    """Build the canned scenario ``name`` for a run of the given length."""
    try:
        build = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault scenario {name!r}; canned scenarios: "
            f"{', '.join(sorted(SCENARIOS))}"
        ) from None
    return build(duration_ms, warmup_ms, edges)


def load_schedule(
    spec: str,
    duration_ms: float,
    warmup_ms: float = 0.0,
    edges: Sequence[str] = DEFAULT_EDGES,
) -> FaultSchedule:
    """Resolve a ``--faults`` argument: canned name or JSON file path."""
    looks_like_path = spec.endswith(".json") or os.sep in spec
    if looks_like_path or (spec not in SCENARIOS and os.path.exists(spec)):
        with open(spec, "r", encoding="utf-8") as handle:
            return FaultSchedule.from_json(json.load(handle))
    return scenario(spec, duration_ms, warmup_ms, edges)
