"""Render Tables 6 and 7: per-page mean response times per configuration.

The paper reports, for each of the five configurations, the local and
remote clients' mean response time on every page of the browser and
buyer/bidder sessions.  ``build_table`` collects that grid from a run
series; ``render_table`` prints it in the paper's layout (one Local row
and one Remote row per configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.patterns import PatternLevel, level_name
from .parallel import CellResult
from .runner import APPS, ExperimentResult

__all__ = ["TableCell", "ResponseTimeTable", "build_table", "render_table"]

# Either execution path feeds the table builder: live results from the
# serial runner or reconstructed-from-state results from worker processes.
SeriesResult = Union[ExperimentResult, CellResult]

PAPER_TABLES = {
    # (table number, paper caption) per application.
    "petstore": (6, "Average response times (in ms) for five Pet Store configurations"),
    "rubis": (7, "Average response times (in ms) for five RUBiS configurations"),
}


@dataclass
class TableCell:
    mean: float
    count: int


@dataclass
class ResponseTimeTable:
    """The full grid: (level, locality, page) -> cell."""

    app: str
    pages: List[str]
    writer_pages: List[str]
    cells: Dict[Tuple[PatternLevel, str, str], TableCell] = field(default_factory=dict)
    # Custom row labels (custom-policy runs); absent levels use level_name.
    labels: Dict[PatternLevel, str] = field(default_factory=dict)

    def row_label(self, level: PatternLevel) -> str:
        return self.labels.get(PatternLevel(level)) or level_name(level)

    def get(self, level: PatternLevel, locality: str, page: str) -> Optional[TableCell]:
        return self.cells.get((PatternLevel(level), locality, page))

    def mean(self, level: PatternLevel, locality: str, page: str) -> float:
        cell = self.get(level, locality, page)
        return cell.mean if cell else float("nan")

    @property
    def levels(self) -> List[PatternLevel]:
        return sorted({level for (level, _loc, _page) in self.cells})


def _merge_page_means(result: SeriesResult, locality: str, page: str) -> TableCell:
    """Combine the browser and writer observations of one page."""
    total = 0.0
    count = 0
    for group in result.monitor.groups():
        if not group.startswith(locality + "-"):
            continue
        stats = result.monitor.page_stats(group, page)
        total += stats.total
        count += stats.count
    return TableCell(mean=(total / count if count else float("nan")), count=count)


def build_table(results: Dict[PatternLevel, SeriesResult]) -> ResponseTimeTable:
    """Assemble the Table 6/7 grid from a five-configuration series."""
    any_result = next(iter(results.values()))
    spec = APPS[any_result.app]
    # Browser pages first, then the writer-only pages (paper layout).
    pages = list(spec.browser_pages) + [
        p for p in spec.writer_pages if p not in spec.browser_pages
    ]
    table = ResponseTimeTable(
        app=any_result.app, pages=pages, writer_pages=list(spec.writer_pages)
    )
    for level, result in results.items():
        label = getattr(result, "label", None)
        if label:
            table.labels[PatternLevel(level)] = label
        for locality in ("local", "remote"):
            for page in pages:
                cell = _merge_page_means(result, locality, page)
                if cell.count:
                    table.cells[(PatternLevel(level), locality, page)] = cell
    return table


def table_to_csv(table: ResponseTimeTable) -> str:
    """CSV export: configuration,locality,page,mean_ms,samples."""
    from ..core.patterns import level_name

    lines = ["configuration,locality,page,mean_ms,samples"]
    for level in table.levels:
        for locality in ("local", "remote"):
            for page in table.pages:
                cell = table.get(level, locality, page)
                if cell is None:
                    continue
                name = table.row_label(level).replace(",", ";")
                lines.append(
                    f"{name},{locality},\"{page}\",{cell.mean:.2f},{cell.count}"
                )
    return "\n".join(lines) + "\n"


def render_table(table: ResponseTimeTable, width: int = 7) -> str:
    """Text rendering in the paper's layout."""
    number, caption = PAPER_TABLES.get(table.app, (0, table.app))
    lines = [f"Table {number}. {caption}."]
    header = f"{'Configuration':32s} {'Cl.':6s}" + "".join(
        f"{page[:width - 1]:>{width}s}" for page in table.pages
    )
    lines.append(header)
    lines.append("-" * len(header))
    for level in table.levels:
        for locality, label in (("local", "Local"), ("remote", "Remote")):
            name = table.row_label(level) if locality == "local" else ""
            row = f"{name:32s} {label:6s}"
            for page in table.pages:
                cell = table.get(level, locality, page)
                row += (
                    f"{cell.mean:>{width}.0f}" if cell else " " * (width - 1) + "-"
                )
            lines.append(row)
    return "\n".join(lines)
