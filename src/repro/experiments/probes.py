"""Lightweight measurement probes.

Where the full workload harness (30 req/s for simulated minutes) is
overkill — ablations, claim checks, unit-style latency assertions — a
probe issues a fixed sequence of page requests from one client and
reports warm-request latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.distribution import DeployedSystem
from ..middleware.web import WebRequest, http_get
from ..simnet.kernel import Environment

__all__ = ["PageProbe", "ProbeResult", "measure_pages"]


@dataclass
class ProbeResult:
    """Per-page latency samples from one probe run."""

    samples: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, page: str, value: float) -> None:
        self.samples.setdefault(page, []).append(value)

    def mean(self, page: str, discard: int = 0) -> float:
        values = self.samples.get(page, [])[discard:]
        if not values:
            return float("nan")
        return sum(values) / len(values)

    def last(self, page: str) -> float:
        values = self.samples.get(page, [])
        return values[-1] if values else float("nan")

    def pages(self) -> List[str]:
        return sorted(self.samples)


@dataclass
class PageProbe:
    """A scripted probe client."""

    system: DeployedSystem
    client_node: str
    group: str = "probe"

    def run(
        self,
        env: Environment,
        pages: Sequence[Tuple[str, dict]],
        repeats: int = 3,
        session_prefix: str = "probe",
    ) -> ProbeResult:
        """Issue ``pages`` ``repeats`` times; returns all samples."""
        result = ProbeResult()

        def process():
            server = self.system.entry_server_for(self.client_node)
            for repeat in range(repeats):
                session_id = f"{session_prefix}-{repeat}"
                for page, params in pages:
                    request = WebRequest(
                        page=page,
                        params=dict(params),
                        session_id=session_id,
                        client_node=self.client_node,
                    )
                    started = env.now
                    yield from http_get(env, server, request, client_group=self.group)
                    result.add(page, env.now - started)

        env.process(process(), name=f"probe-{self.client_node}")
        env.run()
        return result


def measure_pages(
    system: DeployedSystem,
    env: Environment,
    client_node: str,
    pages: Sequence[Tuple[str, dict]],
    repeats: int = 3,
    discard: int = 1,
) -> Dict[str, float]:
    """Warm mean latency per page (first ``discard`` repeats dropped)."""
    probe = PageProbe(system, client_node)
    result = probe.run(env, pages, repeats=repeats)
    return {page: result.mean(page, discard=discard) for page, _params in pages}
