"""Shared progress reporting for experiment sweeps.

One :class:`ProgressReporter` instance is shared by the serial and
parallel execution paths: the serial runner calls :meth:`cell_done`
inline, the parallel runner calls it from the parent process as worker
futures complete.  Reporting goes to stderr so it never contaminates
table/figure output on stdout (which must stay byte-identical across
worker counts).
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Optional, TextIO

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Counts completed (app, level) cells and prints one line per cell.

    Thread-safe: ``concurrent.futures`` completion callbacks may fire
    from pool-management threads.
    """

    def __init__(
        self,
        total: int,
        stream: Optional[TextIO] = None,
        label: str = "cells",
        enabled: bool = True,
    ):
        self.total = total
        self.completed = 0
        self.label = label
        self.enabled = enabled
        self.stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()
        self._started = time.perf_counter()

    def done(self, what: str, wall_seconds: float) -> None:
        """Record one finished unit of work and emit a progress line."""
        with self._lock:
            self.completed += 1
            completed, total = self.completed, self.total
        if not self.enabled:
            return
        elapsed = time.perf_counter() - self._started
        print(
            f"[{completed}/{total} {self.label}] {what} "
            f"done in {wall_seconds:.1f}s (elapsed {elapsed:.1f}s)",
            file=self.stream,
        )
        self.stream.flush()

    def cell_done(self, app: str, level: object, wall_seconds: float) -> None:
        """Record one finished (app, pattern-level) cell."""
        self.done(f"{app} level {int(level)}", wall_seconds)

    @property
    def finished(self) -> bool:
        return self.completed >= self.total
