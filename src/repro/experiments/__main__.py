"""Command-line entry point for regenerating the paper's artifacts.

Usage::

    python -m repro.experiments table6            # Pet Store, Table 6
    python -m repro.experiments table7            # RUBiS, Table 7
    python -m repro.experiments figure7           # Pet Store, Figure 7
    python -m repro.experiments figure8           # RUBiS, Figure 8
    python -m repro.experiments all               # everything
    python -m repro.experiments table6 --duration 120 --warmup 30
    python -m repro.experiments all --jobs 4      # four worker processes
    python -m repro.experiments table6 --trace-out trace.json \
        --metrics-out metrics.json                # observability artifacts

Every (application, configuration) cell is independent, so the sweep
fans out across ``--jobs`` worker processes (default: one per CPU).
Table/figure output on stdout is byte-identical for any ``--jobs``
value; progress reporting goes to stderr.  ``--trace-out`` writes a
Chrome trace-event JSON (load it in Perfetto or ``chrome://tracing``)
with one span tree per client page request; ``--metrics-out`` writes
per-cell metrics-registry snapshots.  Both artifacts are byte-identical
for any ``--jobs`` value too.

Streaming telemetry rides on the same sweep::

    python -m repro.experiments table7 --workload open --scenario flash-crowd \
        --series-out series.json --obs-interval 1 \
        --slo policies/slo-default.json --slo-out slo.json \
        --flame-out flame.txt --flame-html flame.html --obs-sample 0.1

``--series-out`` writes per-window counters/gauges/quantiles sampled on
the simulated clock (``--obs-interval`` seconds per window);  ``--slo``
evaluates declarative objectives per window, with burn rates and
fault-window recovery times printed after the tables; ``--flame-out``
folds the span trees into collapsed-stack flamegraph text (speedscope /
flamegraph.pl), with a per-layer latency attribution table on stdout.
All of these are byte-identical for any ``--jobs`` value.

Beyond the paper's grid::

    python -m repro.experiments table7 --workload open --arrival pareto \
        --scenario flash-crowd --session-rate 20 --max-sessions 5000
    python -m repro.experiments table6 --edges 4 --wan-latency 50
    python -m repro.experiments table7 --policy policies/replicas-one-edge.json
    python -m repro.experiments plan --app petstore --level 3
    python -m repro.experiments plan --policy my-policy.json --edges 3

``--policy FILE`` swaps the canned pattern-level configurations for a
declarative placement policy (see ``repro.core.policy``); the run then
covers that single configuration per app.  ``--edges`` / ``--wan-latency``
/ ``--clients-per-group`` override the calibrated testbed.  The ``plan``
target resolves a policy onto the testbed and prints the deployment plan,
the resolved policy JSON, and the static design-rule precheck — without
running any simulation.
"""

from __future__ import annotations

import argparse
import sys

from ..core.patterns import PAPER_LEVELS, PatternLevel
from ..core.policy import PolicyError, load_policy
from ..faults.report import (
    availability_to_json,
    build_availability_table,
    render_availability_table,
)
from ..faults.scenarios import SCENARIOS, default_edges, load_schedule
from ..simnet.topology import TestbedConfig, TopologyOverrides
from ..workload.openloop import ARRIVALS, SCENARIOS as OPENLOOP_SCENARIOS, OpenLoopConfig
from .calibration import SIM_DURATION_MS, SIM_WARMUP_MS, default_workload
from .figures import build_figure, figure_to_csv, render_figure
from .parallel import default_jobs, run_cells
from .progress import ProgressReporter
from .runner import run_series
from .tables import build_table, render_table, table_to_csv

TARGETS = {
    "table6": ("petstore", "table"),
    "table7": ("rubis", "table"),
    "figure7": ("petstore", "figure"),
    "figure8": ("rubis", "figure"),
}
ABLATION_TARGET = "ablations"
PLAN_TARGET = "plan"


def _export_observability(args, series_cache, apps_needed, levels) -> None:
    """Write --trace-out / --metrics-out artifacts and stderr digests.

    Works over both serial ``ExperimentResult`` and parallel
    ``CellResult`` objects (both expose ``spans_state``/``metrics_state``
    snapshots); cells are labelled ``app/L<level>`` in sorted order so
    the files are byte-identical for any ``--jobs`` value.
    """
    from ..obs.export import export_chrome_trace, export_metrics

    labelled = [
        (f"{app}/L{int(level)}", series_cache[app][level])
        for app in apps_needed
        for level in levels
    ]
    if args.trace_out is not None:
        cells = [
            (label, result.spans_state)
            for label, result in labelled
            if result.spans_state is not None
        ]
        export_chrome_trace(cells, args.trace_out)
        for label, result in labelled:
            summary = getattr(result, "trace_summary", None)
            if summary is None:
                trace = getattr(result, "trace", None)
                summary = trace.summary() if trace is not None else None
            if summary is not None:
                print(f"[trace] {label}: {summary.render()}", file=sys.stderr)
        print(f"[trace] wrote {args.trace_out}", file=sys.stderr)
    if args.metrics_out is not None:
        cells = [
            (label, result.metrics_state)
            for label, result in labelled
            if result.metrics_state is not None
        ]
        export_metrics(cells, args.metrics_out)
        print(f"[metrics] wrote {args.metrics_out}", file=sys.stderr)
    if args.series_out is not None:
        from ..obs.export import export_series

        cells = [
            (label, result.series_state)
            for label, result in labelled
            if result.series_state is not None
        ]
        export_series(cells, args.series_out)
        print(f"[series] wrote {args.series_out}", file=sys.stderr)
    if args.flame_out is not None or args.flame_html is not None:
        from ..obs.flame import (
            collapse_spans,
            merge_folded,
            render_flame_html,
            render_folded,
        )

        folded = merge_folded(
            *(
                collapse_spans(result.spans_state["spans"], root_prefix=label)
                for label, result in labelled
                if result.spans_state is not None
            )
        )
        if args.flame_out is not None:
            with open(args.flame_out, "w") as handle:
                handle.write(render_folded(folded))
            print(f"[flame] wrote {args.flame_out}", file=sys.stderr)
        if args.flame_html is not None:
            with open(args.flame_html, "w") as handle:
                handle.write(render_flame_html(folded))
            print(f"[flame] wrote {args.flame_html}", file=sys.stderr)


def _run_plan(args, policy, topology) -> int:
    """The ``plan`` target: resolve and print, no simulation.

    For each requested application, builds the app, applies the policy
    (the ``--policy`` file, or the canned policy for ``--level``),
    resolves it onto the (possibly overridden) testbed, and prints the
    deployment plan, the resolved policy JSON, and the static design-rule
    precheck.  Returns non-zero when the precheck finds violations.
    """
    from ..core.automation import apply_policy
    from ..core.planner import PlanError, plan_deployment
    from ..core.policy import level_policy
    from ..core.rules import precheck
    from ..simnet.kernel import Environment
    from ..simnet.rng import Streams
    from .runner import APPS

    if policy is not None and args.app is None:
        print(
            "[plan] a policy file names one application's components; "
            "pick it with --app",
            file=sys.stderr,
        )
        return 2
    apps = [args.app] if args.app else sorted(APPS)
    if policy is not None:
        levels = [policy.effective_level()]
    else:
        levels = (
            [PatternLevel(args.level)] if args.level else list(PAPER_LEVELS)
        )
    exit_code = 0
    for app in apps:
        spec = APPS[app]
        config = spec.testbed_config()
        if topology is not None:
            config = topology.apply(config)
        for level in levels:
            from ..simnet.topology import build_testbed

            streams = Streams(args.seed)
            _database, catalog = spec.populate(streams, None)
            env = Environment()
            testbed = build_testbed(env, config)
            resolved = policy
            if resolved is None:
                application = spec.build_application(level, catalog=catalog)
                resolved = level_policy(level, application)
            else:
                application = spec.build_application(
                    resolved.effective_level(), catalog=catalog
                )
            try:
                apply_policy(application, resolved)
                plan = plan_deployment(
                    application,
                    testbed.main_server,
                    list(testbed.edge_servers),
                    resolved,
                )
            except (PolicyError, PlanError) as exc:
                print(f"[plan] {app}: {exc}", file=sys.stderr)
                return 2
            report = precheck(application, plan, policy=resolved)
            print(f"== {app} · policy '{resolved.name}' ==")
            print(plan.describe())
            print()
            print("resolved policy:")
            print(resolved.to_json_str(), end="")
            print(f"precheck ({', '.join(report.checked_rules)}): ", end="")
            if report.ok:
                print("PASS")
            else:
                print(f"{len(report.violations)} violation(s)")
                for violation in report.violations:
                    print(f"  {violation}")
                exit_code = 1
            print()
    return exit_code


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "target",
        choices=sorted(TARGETS) + ["all", ABLATION_TARGET, PLAN_TARGET],
        help="artifact to regenerate (or 'plan' to print a deployment "
        "plan without simulating)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=SIM_DURATION_MS / 1000.0,
        help="simulated seconds per configuration (default %(default)s)",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=SIM_WARMUP_MS / 1000.0,
        help="simulated warm-up seconds excluded from statistics",
    )
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of the text layout"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sweep (default: one per CPU; "
        "1 runs serially in-process; output is identical either way)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each cell under cProfile and dump the top-25 cumulative "
        "entries plus per-subsystem attribution to stderr (forces --jobs 1)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write per-request span trees as Chrome trace-event JSON "
        "(open in Perfetto / chrome://tracing)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write per-cell metrics-registry snapshots as sorted-key JSON",
    )
    parser.add_argument(
        "--series-out",
        metavar="FILE",
        default=None,
        help="write per-window telemetry series (counters, gauges, "
        "p50/p95/p99 per page class) as sorted-key JSON",
    )
    parser.add_argument(
        "--obs-interval",
        type=float,
        default=1.0,
        metavar="S",
        help="telemetry window width in simulated seconds "
        "(default %(default)s; used by --series-out/--slo)",
    )
    parser.add_argument(
        "--obs-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="fraction of sessions whose spans are recorded, decided by a "
        "deterministic hash of the session id (default %(default)s: all)",
    )
    parser.add_argument(
        "--slo",
        metavar="FILE",
        default=None,
        help="evaluate declarative SLO objectives (JSON, see repro.obs.slo) "
        "per telemetry window; prints burn rates and fault recovery times",
    )
    parser.add_argument(
        "--slo-out",
        metavar="FILE",
        default=None,
        help="with --slo: also write the evaluation report as sorted-key JSON",
    )
    parser.add_argument(
        "--flame-out",
        metavar="FILE",
        default=None,
        help="write latency attribution as collapsed-stack flamegraph text "
        "(load in speedscope or flamegraph.pl)",
    )
    parser.add_argument(
        "--flame-html",
        metavar="FILE",
        default=None,
        help="write a self-contained HTML flamegraph (no external tools)",
    )
    parser.add_argument(
        "--faults",
        metavar="SCENARIO",
        default=None,
        help="inject a fault scenario: a canned name "
        f"({', '.join(sorted(SCENARIOS))}) or a path to a schedule JSON; "
        "prints an availability table per app after the sweep",
    )
    parser.add_argument(
        "--availability-out",
        metavar="FILE",
        default=None,
        help="with --faults: also write the availability report as "
        "sorted-key JSON",
    )
    parser.add_argument(
        "--policy",
        metavar="FILE",
        default=None,
        help="run a declarative placement policy (JSON file, see "
        "repro.core.policy) instead of the five canned configurations",
    )
    parser.add_argument(
        "--edges",
        type=int,
        default=None,
        metavar="N",
        help="number of edge servers (default: the app's calibrated "
        "testbed — the paper's 2)",
    )
    parser.add_argument(
        "--wan-latency",
        type=float,
        default=None,
        metavar="MS",
        help="one-way WAN latency in ms (default: the paper's 100)",
    )
    parser.add_argument(
        "--clients-per-group",
        type=int,
        default=None,
        metavar="N",
        help="client machines per application server (default: the "
        "paper's 3)",
    )
    parser.add_argument(
        "--workload",
        choices=("closed", "open"),
        default="closed",
        help="client model: 'closed' is the paper's fixed population with "
        "soft think times; 'open' spawns independent sessions from an "
        "arrival process (see repro.workload.openloop)",
    )
    parser.add_argument(
        "--arrival",
        choices=ARRIVALS,
        default="poisson",
        help="(open loop) inter-arrival law (default %(default)s)",
    )
    parser.add_argument(
        "--scenario",
        choices=OPENLOOP_SCENARIOS,
        default="steady",
        help="(open loop) rate-modulation scenario (default %(default)s)",
    )
    parser.add_argument(
        "--session-rate",
        type=float,
        default=10.0,
        metavar="PER_S",
        help="(open loop) mean session arrivals per second "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=0,
        metavar="N",
        help="(open loop) admission cap on concurrent sessions; arrivals "
        "beyond it are dropped (default: unbounded)",
    )
    parser.add_argument(
        "--think-time",
        type=float,
        default=7.0,
        metavar="S",
        help="(open loop) mean think time between a session's pages in "
        "seconds (default %(default)s)",
    )
    parser.add_argument(
        "--app",
        choices=("petstore", "rubis"),
        default=None,
        help="(plan target) application to plan for (default: both)",
    )
    parser.add_argument(
        "--level",
        type=int,
        choices=tuple(int(level) for level in PatternLevel),
        default=None,
        help="run a single pattern level instead of the default 1-5 "
        "sweep (the only way to sweep level 6 without a --policy file)",
    )
    args = parser.parse_args(argv)

    if args.edges is not None and args.edges < 1:
        print("[topology] --edges must be >= 1", file=sys.stderr)
        return 2
    overrides = TopologyOverrides(
        edges=args.edges,
        wan_latency=args.wan_latency,
        clients_per_group=args.clients_per_group,
    )
    topology = None if overrides.empty else overrides

    policy = None
    if args.policy is not None:
        try:
            policy = load_policy(args.policy)
        except (OSError, PolicyError) as exc:
            print(f"[policy] {exc}", file=sys.stderr)
            return 2
        print(
            f"[policy] '{policy.name}' from {args.policy} "
            f"(metadata level {int(policy.effective_level())})",
            file=sys.stderr,
        )
    if topology is not None:
        print(
            "[topology] overrides: "
            + ", ".join(
                f"{knob}={value}"
                for knob, value in (
                    ("edges", args.edges),
                    ("wan-latency", args.wan_latency),
                    ("clients-per-group", args.clients_per_group),
                )
                if value is not None
            ),
            file=sys.stderr,
        )

    if args.target == PLAN_TARGET:
        return _run_plan(args, policy, topology)
    jobs = default_jobs() if args.jobs is None else max(1, args.jobs)
    if args.profile and jobs != 1:
        from .profile import warn_forced_serial

        warn_forced_serial(jobs, sys.stderr)
        jobs = 1
    with_flame = args.flame_out is not None or args.flame_html is not None
    with_spans = args.trace_out is not None or with_flame
    # Span recording implies flat-trace recording too, so the stderr
    # digest can report call counts alongside the exported span trees.
    with_trace = with_spans
    with_metrics = args.metrics_out is not None
    with_series = (
        args.series_out is not None
        or args.slo is not None
        or args.slo_out is not None
    )

    if args.availability_out is not None and args.faults is None:
        print("[faults] --availability-out requires --faults", file=sys.stderr)
        return 2
    if args.slo_out is not None and args.slo is None:
        print("[slo] --slo-out requires --slo", file=sys.stderr)
        return 2
    if args.obs_interval <= 0:
        print("[obs] --obs-interval must be positive", file=sys.stderr)
        return 2
    if not 0.0 < args.obs_sample <= 1.0:
        print("[obs] --obs-sample must be in (0, 1]", file=sys.stderr)
        return 2
    obs_interval_ms = args.obs_interval * 1000.0 if with_series else None

    objectives = None
    if args.slo is not None:
        from ..obs.slo import SloError, load_slo

        try:
            objectives = load_slo(args.slo)
        except (OSError, ValueError) as exc:
            # SloError subclasses ValueError; bad JSON raises ValueError too.
            kind = "slo" if isinstance(exc, SloError) else "slo file"
            print(f"[{kind}] {exc}", file=sys.stderr)
            return 2
        print(
            f"[slo] {len(objectives)} objective(s) from {args.slo}",
            file=sys.stderr,
        )

    if args.target == ABLATION_TARGET:
        if args.profile:
            print("[profile] --profile is not supported for ablations", file=sys.stderr)
            return 2
        if with_spans or with_metrics or with_series:
            print(
                "[obs] --trace-out/--metrics-out/--series-out/--slo/"
                "--flame-out are not supported for ablations",
                file=sys.stderr,
            )
            return 2
        if args.faults is not None:
            print("[faults] --faults is not supported for ablations", file=sys.stderr)
            return 2
        if args.workload == "open":
            print(
                "[workload] --workload open is not supported for ablations",
                file=sys.stderr,
            )
            return 2
        if policy is not None or topology is not None:
            print(
                "[policy] --policy/--edges/--wan-latency/--clients-per-group "
                "are not supported for ablations",
                file=sys.stderr,
            )
            return 2
        from . import ablations

        progress = ProgressReporter(len(ablations.ABLATIONS), label="ablations")
        results = ablations.run_all_ablations(jobs=jobs, progress=progress)
        for name in ablations.ABLATIONS:
            print(f"\n== {name} ==")
            for key, value in results[name].items():
                print(f"  {key}: {value}")
        return 0

    targets = sorted(TARGETS) if args.target == "all" else [args.target]
    workload = default_workload(args.duration * 1000.0, args.warmup * 1000.0)
    openloop = None
    if args.workload == "open":
        try:
            openloop = OpenLoopConfig(
                arrival=args.arrival,
                scenario=args.scenario,
                session_rate_per_s=args.session_rate,
                duration_ms=args.duration * 1000.0,
                warmup_ms=args.warmup * 1000.0,
                think_time_ms=args.think_time * 1000.0,
                max_sessions=args.max_sessions,
            )
        except ValueError as exc:
            print(f"[workload] {exc}", file=sys.stderr)
            return 2
        print(
            f"[workload] open loop: {args.arrival} arrivals at "
            f"{args.session_rate:g}/s, {args.scenario} scenario",
            file=sys.stderr,
        )
    apps_needed = sorted({TARGETS[target][0] for target in targets})

    faults = None
    if args.faults is not None:
        # Canned scenarios target the actual edges of the effective
        # (possibly overridden) topology — derived from TestbedConfig, so
        # a changed calibration default propagates here automatically.
        effective = TestbedConfig()
        if topology is not None:
            effective = topology.apply(effective)
        fault_edges = default_edges(effective)
        faults = load_schedule(
            args.faults, args.duration * 1000.0, args.warmup * 1000.0,
            edges=fault_edges,
        )
        print(f"[faults] scenario '{faults.name}' active", file=sys.stderr)

    if policy is not None:
        levels = [policy.effective_level()]
    elif args.level:
        levels = [PatternLevel(args.level)]
    else:
        levels = list(PAPER_LEVELS)
    cells = [(app, level) for app in apps_needed for level in levels]
    print(
        f"[sweep] {len(cells)} cells x {args.duration:.0f}s simulated, "
        f"{jobs} worker(s) ...",
        file=sys.stderr,
    )
    progress = ProgressReporter(len(cells), label="cells")
    if jobs == 1:
        series_cache = {
            app: run_series(
                app,
                workload=workload,
                seed=args.seed,
                with_trace=with_trace,
                with_spans=with_spans,
                with_metrics=with_metrics,
                progress=progress,
                profile=args.profile,
                faults=faults,
                policy=policy,
                topology=topology,
                openloop=openloop,
                obs_interval_ms=obs_interval_ms,
                obs_sample=args.obs_sample,
            )
            for app in apps_needed
        }
    else:
        # One shared pool over every app's cells: a ten-cell `all` sweep
        # keeps all workers busy instead of draining one app at a time.
        results = run_cells(
            cells,
            workload=workload,
            seed=args.seed,
            with_trace=with_trace,
            with_spans=with_spans,
            with_metrics=with_metrics,
            jobs=jobs,
            progress=progress,
            faults=faults,
            policy=policy,
            topology=topology,
            openloop=openloop,
            obs_interval_ms=obs_interval_ms,
            obs_sample=args.obs_sample,
        )
        series_cache = {
            app: {level: results[(app, level)] for level in levels}
            for app in apps_needed
        }

    if with_spans or with_metrics or with_series:
        _export_observability(args, series_cache, apps_needed, levels)

    for target in targets:
        app, kind = TARGETS[target]
        series = series_cache[app]
        print()
        if kind == "table":
            table = build_table(series)
            print(table_to_csv(table) if args.csv else render_table(table))
        else:
            figure = build_figure(series)
            print(figure_to_csv(figure) if args.csv else render_figure(figure))

    labelled = [
        (f"{app}/L{int(level)}", series_cache[app][level])
        for app in apps_needed
        for level in levels
    ]
    if with_flame:
        from ..obs.flame import layer_self_times, render_attribution

        for label, result in labelled:
            spans_state = result.spans_state
            if spans_state is None:
                continue
            # Think time accumulates in the telemetry series when it is
            # on; without it the attribution covers server-side work only.
            think = 0.0
            series_state = result.series_state
            if series_state is not None:
                think = sum(
                    entry.get("counters", {}).get("think_ms", 0)
                    for entry in series_state["windows"].values()
                )
            print()
            print(
                render_attribution(
                    label, layer_self_times(spans_state["spans"]), think_ms=think
                )
            )

    if objectives is not None:
        from ..obs.slo import evaluate_slo, export_slo, render_slo_report

        slo_reports = {}
        for label, result in labelled:
            state = result.series_state
            if state is None:
                continue
            report = evaluate_slo(state, objectives)
            slo_reports[label] = report
            print()
            print(render_slo_report(label, report))
        if args.slo_out is not None:
            export_slo(slo_reports, args.slo_out)
            print(f"[slo] wrote {args.slo_out}", file=sys.stderr)

    if faults is not None:
        availability_tables = [
            build_availability_table(
                app, series_cache[app], scenario=faults.name
            )
            for app in apps_needed
        ]
        for table in availability_tables:
            print()
            print(render_availability_table(table))
        if args.availability_out is not None:
            with open(args.availability_out, "w") as handle:
                handle.write(availability_to_json(availability_tables))
            print(
                f"[faults] wrote {args.availability_out}", file=sys.stderr
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
