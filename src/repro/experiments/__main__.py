"""Command-line entry point for regenerating the paper's artifacts.

Usage::

    python -m repro.experiments table6            # Pet Store, Table 6
    python -m repro.experiments table7            # RUBiS, Table 7
    python -m repro.experiments figure7           # Pet Store, Figure 7
    python -m repro.experiments figure8           # RUBiS, Figure 8
    python -m repro.experiments all               # everything
    python -m repro.experiments table6 --duration 120 --warmup 30
    python -m repro.experiments all --jobs 4      # four worker processes

Every (application, configuration) cell is independent, so the sweep
fans out across ``--jobs`` worker processes (default: one per CPU).
Table/figure output on stdout is byte-identical for any ``--jobs``
value; progress reporting goes to stderr.
"""

from __future__ import annotations

import argparse
import sys

from ..core.patterns import PatternLevel
from .calibration import SIM_DURATION_MS, SIM_WARMUP_MS, default_workload
from .figures import build_figure, figure_to_csv, render_figure
from .parallel import default_jobs, run_cells
from .progress import ProgressReporter
from .runner import run_series
from .tables import build_table, render_table, table_to_csv

TARGETS = {
    "table6": ("petstore", "table"),
    "table7": ("rubis", "table"),
    "figure7": ("petstore", "figure"),
    "figure8": ("rubis", "figure"),
}
ABLATION_TARGET = "ablations"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "target",
        choices=sorted(TARGETS) + ["all", ABLATION_TARGET],
        help="artifact to regenerate",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=SIM_DURATION_MS / 1000.0,
        help="simulated seconds per configuration (default %(default)s)",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=SIM_WARMUP_MS / 1000.0,
        help="simulated warm-up seconds excluded from statistics",
    )
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of the text layout"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sweep (default: one per CPU; "
        "1 runs serially in-process; output is identical either way)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each cell under cProfile and dump the top-25 cumulative "
        "entries plus per-subsystem attribution to stderr (forces --jobs 1)",
    )
    args = parser.parse_args(argv)
    jobs = default_jobs() if args.jobs is None else max(1, args.jobs)
    if args.profile and jobs != 1:
        print(
            "[profile] cProfile cannot follow worker processes; forcing --jobs 1",
            file=sys.stderr,
        )
        jobs = 1

    if args.target == ABLATION_TARGET:
        if args.profile:
            print("[profile] --profile is not supported for ablations", file=sys.stderr)
            return 2
        from . import ablations

        progress = ProgressReporter(len(ablations.ABLATIONS), label="ablations")
        results = ablations.run_all_ablations(jobs=jobs, progress=progress)
        for name in ablations.ABLATIONS:
            print(f"\n== {name} ==")
            for key, value in results[name].items():
                print(f"  {key}: {value}")
        return 0

    targets = sorted(TARGETS) if args.target == "all" else [args.target]
    workload = default_workload(args.duration * 1000.0, args.warmup * 1000.0)
    apps_needed = sorted({TARGETS[target][0] for target in targets})

    levels = list(PatternLevel)
    cells = [(app, level) for app in apps_needed for level in levels]
    print(
        f"[sweep] {len(cells)} cells x {args.duration:.0f}s simulated, "
        f"{jobs} worker(s) ...",
        file=sys.stderr,
    )
    progress = ProgressReporter(len(cells), label="cells")
    if jobs == 1:
        series_cache = {
            app: run_series(
                app,
                workload=workload,
                seed=args.seed,
                progress=progress,
                profile=args.profile,
            )
            for app in apps_needed
        }
    else:
        # One shared pool over every app's cells: a ten-cell `all` sweep
        # keeps all workers busy instead of draining one app at a time.
        results = run_cells(
            cells, workload=workload, seed=args.seed, jobs=jobs, progress=progress
        )
        series_cache = {
            app: {level: results[(app, level)] for level in levels}
            for app in apps_needed
        }

    for target in targets:
        app, kind = TARGETS[target]
        series = series_cache[app]
        print()
        if kind == "table":
            table = build_table(series)
            print(table_to_csv(table) if args.csv else render_table(table))
        else:
            figure = build_figure(series)
            print(figure_to_csv(figure) if args.csv else render_figure(figure))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
