"""Command-line entry point for regenerating the paper's artifacts.

Usage::

    python -m repro.experiments table6            # Pet Store, Table 6
    python -m repro.experiments table7            # RUBiS, Table 7
    python -m repro.experiments figure7           # Pet Store, Figure 7
    python -m repro.experiments figure8           # RUBiS, Figure 8
    python -m repro.experiments all               # everything
    python -m repro.experiments table6 --duration 120 --warmup 30
"""

from __future__ import annotations

import argparse
import sys

from .calibration import SIM_DURATION_MS, SIM_WARMUP_MS, default_workload
from .figures import build_figure, figure_to_csv, render_figure
from .runner import run_series
from .tables import build_table, render_table, table_to_csv

TARGETS = {
    "table6": ("petstore", "table"),
    "table7": ("rubis", "table"),
    "figure7": ("petstore", "figure"),
    "figure8": ("rubis", "figure"),
}
ABLATION_TARGET = "ablations"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "target",
        choices=sorted(TARGETS) + ["all", ABLATION_TARGET],
        help="artifact to regenerate",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=SIM_DURATION_MS / 1000.0,
        help="simulated seconds per configuration (default %(default)s)",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=SIM_WARMUP_MS / 1000.0,
        help="simulated warm-up seconds excluded from statistics",
    )
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of the text layout"
    )
    args = parser.parse_args(argv)

    if args.target == ABLATION_TARGET:
        from . import ablations

        for name in ablations.__all__:
            print(f"\n== {name} ==")
            outcome = getattr(ablations, name)()
            for key, value in outcome.items():
                print(f"  {key}: {value}")
        return 0

    targets = sorted(TARGETS) if args.target == "all" else [args.target]
    workload = default_workload(args.duration * 1000.0, args.warmup * 1000.0)

    series_cache = {}
    for target in targets:
        app, kind = TARGETS[target]
        if app not in series_cache:
            print(
                f"[{app}] running 5 configurations x {args.duration:.0f}s "
                f"simulated ...",
                file=sys.stderr,
            )
            series_cache[app] = run_series(app, workload=workload, seed=args.seed)
        series = series_cache[app]
        print()
        if kind == "table":
            table = build_table(series)
            print(table_to_csv(table) if args.csv else render_table(table))
        else:
            figure = build_figure(series)
            print(figure_to_csv(figure) if args.csv else render_figure(figure))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
