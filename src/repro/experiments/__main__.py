"""Command-line entry point for regenerating the paper's artifacts.

Usage::

    python -m repro.experiments table6            # Pet Store, Table 6
    python -m repro.experiments table7            # RUBiS, Table 7
    python -m repro.experiments figure7           # Pet Store, Figure 7
    python -m repro.experiments figure8           # RUBiS, Figure 8
    python -m repro.experiments all               # everything
    python -m repro.experiments table6 --duration 120 --warmup 30
    python -m repro.experiments all --jobs 4      # four worker processes
    python -m repro.experiments table6 --trace-out trace.json \
        --metrics-out metrics.json                # observability artifacts

Every (application, configuration) cell is independent, so the sweep
fans out across ``--jobs`` worker processes (default: one per CPU).
Table/figure output on stdout is byte-identical for any ``--jobs``
value; progress reporting goes to stderr.  ``--trace-out`` writes a
Chrome trace-event JSON (load it in Perfetto or ``chrome://tracing``)
with one span tree per client page request; ``--metrics-out`` writes
per-cell metrics-registry snapshots.  Both artifacts are byte-identical
for any ``--jobs`` value too.
"""

from __future__ import annotations

import argparse
import sys

from ..core.patterns import PatternLevel
from ..faults.report import (
    availability_to_json,
    build_availability_table,
    render_availability_table,
)
from ..faults.scenarios import SCENARIOS, load_schedule
from .calibration import SIM_DURATION_MS, SIM_WARMUP_MS, default_workload
from .figures import build_figure, figure_to_csv, render_figure
from .parallel import default_jobs, run_cells
from .progress import ProgressReporter
from .runner import run_series
from .tables import build_table, render_table, table_to_csv

TARGETS = {
    "table6": ("petstore", "table"),
    "table7": ("rubis", "table"),
    "figure7": ("petstore", "figure"),
    "figure8": ("rubis", "figure"),
}
ABLATION_TARGET = "ablations"


def _export_observability(args, series_cache, apps_needed, levels) -> None:
    """Write --trace-out / --metrics-out artifacts and stderr digests.

    Works over both serial ``ExperimentResult`` and parallel
    ``CellResult`` objects (both expose ``spans_state``/``metrics_state``
    snapshots); cells are labelled ``app/L<level>`` in sorted order so
    the files are byte-identical for any ``--jobs`` value.
    """
    from ..obs.export import export_chrome_trace, export_metrics

    labelled = [
        (f"{app}/L{int(level)}", series_cache[app][level])
        for app in apps_needed
        for level in levels
    ]
    if args.trace_out is not None:
        cells = [
            (label, result.spans_state)
            for label, result in labelled
            if result.spans_state is not None
        ]
        export_chrome_trace(cells, args.trace_out)
        for label, result in labelled:
            summary = getattr(result, "trace_summary", None)
            if summary is None:
                trace = getattr(result, "trace", None)
                summary = trace.summary() if trace is not None else None
            if summary is not None:
                print(f"[trace] {label}: {summary.render()}", file=sys.stderr)
        print(f"[trace] wrote {args.trace_out}", file=sys.stderr)
    if args.metrics_out is not None:
        cells = [
            (label, result.metrics_state)
            for label, result in labelled
            if result.metrics_state is not None
        ]
        export_metrics(cells, args.metrics_out)
        print(f"[metrics] wrote {args.metrics_out}", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "target",
        choices=sorted(TARGETS) + ["all", ABLATION_TARGET],
        help="artifact to regenerate",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=SIM_DURATION_MS / 1000.0,
        help="simulated seconds per configuration (default %(default)s)",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=SIM_WARMUP_MS / 1000.0,
        help="simulated warm-up seconds excluded from statistics",
    )
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of the text layout"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sweep (default: one per CPU; "
        "1 runs serially in-process; output is identical either way)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each cell under cProfile and dump the top-25 cumulative "
        "entries plus per-subsystem attribution to stderr (forces --jobs 1)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write per-request span trees as Chrome trace-event JSON "
        "(open in Perfetto / chrome://tracing)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write per-cell metrics-registry snapshots as sorted-key JSON",
    )
    parser.add_argument(
        "--faults",
        metavar="SCENARIO",
        default=None,
        help="inject a fault scenario: a canned name "
        f"({', '.join(sorted(SCENARIOS))}) or a path to a schedule JSON; "
        "prints an availability table per app after the sweep",
    )
    parser.add_argument(
        "--availability-out",
        metavar="FILE",
        default=None,
        help="with --faults: also write the availability report as "
        "sorted-key JSON",
    )
    args = parser.parse_args(argv)
    jobs = default_jobs() if args.jobs is None else max(1, args.jobs)
    if args.profile and jobs != 1:
        from .profile import warn_forced_serial

        warn_forced_serial(jobs, sys.stderr)
        jobs = 1
    with_spans = args.trace_out is not None
    # Span recording implies flat-trace recording too, so the stderr
    # digest can report call counts alongside the exported span trees.
    with_trace = with_spans
    with_metrics = args.metrics_out is not None

    if args.availability_out is not None and args.faults is None:
        print("[faults] --availability-out requires --faults", file=sys.stderr)
        return 2

    if args.target == ABLATION_TARGET:
        if args.profile:
            print("[profile] --profile is not supported for ablations", file=sys.stderr)
            return 2
        if with_spans or with_metrics:
            print(
                "[obs] --trace-out/--metrics-out are not supported for ablations",
                file=sys.stderr,
            )
            return 2
        if args.faults is not None:
            print("[faults] --faults is not supported for ablations", file=sys.stderr)
            return 2
        from . import ablations

        progress = ProgressReporter(len(ablations.ABLATIONS), label="ablations")
        results = ablations.run_all_ablations(jobs=jobs, progress=progress)
        for name in ablations.ABLATIONS:
            print(f"\n== {name} ==")
            for key, value in results[name].items():
                print(f"  {key}: {value}")
        return 0

    targets = sorted(TARGETS) if args.target == "all" else [args.target]
    workload = default_workload(args.duration * 1000.0, args.warmup * 1000.0)
    apps_needed = sorted({TARGETS[target][0] for target in targets})

    faults = None
    if args.faults is not None:
        faults = load_schedule(
            args.faults, args.duration * 1000.0, args.warmup * 1000.0
        )
        print(f"[faults] scenario '{faults.name}' active", file=sys.stderr)

    levels = list(PatternLevel)
    cells = [(app, level) for app in apps_needed for level in levels]
    print(
        f"[sweep] {len(cells)} cells x {args.duration:.0f}s simulated, "
        f"{jobs} worker(s) ...",
        file=sys.stderr,
    )
    progress = ProgressReporter(len(cells), label="cells")
    if jobs == 1:
        series_cache = {
            app: run_series(
                app,
                workload=workload,
                seed=args.seed,
                with_trace=with_trace,
                with_spans=with_spans,
                with_metrics=with_metrics,
                progress=progress,
                profile=args.profile,
                faults=faults,
            )
            for app in apps_needed
        }
    else:
        # One shared pool over every app's cells: a ten-cell `all` sweep
        # keeps all workers busy instead of draining one app at a time.
        results = run_cells(
            cells,
            workload=workload,
            seed=args.seed,
            with_trace=with_trace,
            with_spans=with_spans,
            with_metrics=with_metrics,
            jobs=jobs,
            progress=progress,
            faults=faults,
        )
        series_cache = {
            app: {level: results[(app, level)] for level in levels}
            for app in apps_needed
        }

    if with_spans or with_metrics:
        _export_observability(args, series_cache, apps_needed, levels)

    for target in targets:
        app, kind = TARGETS[target]
        series = series_cache[app]
        print()
        if kind == "table":
            table = build_table(series)
            print(table_to_csv(table) if args.csv else render_table(table))
        else:
            figure = build_figure(series)
            print(figure_to_csv(figure) if args.csv else render_figure(figure))

    if faults is not None:
        availability_tables = [
            build_availability_table(
                app, series_cache[app], scenario=faults.name
            )
            for app in apps_needed
        ]
        for table in availability_tables:
            print()
            print(render_availability_table(table))
        if args.availability_out is not None:
            with open(args.availability_out, "w") as handle:
                handle.write(availability_to_json(availability_tables))
            print(
                f"[faults] wrote {args.availability_out}", file=sys.stderr
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
