"""Ablations of the design choices the paper calls out.

Each function isolates one mechanism and returns a small dict of
measured latencies (ms), so benchmarks and tests can assert the
direction and rough magnitude of the effect:

* ``ablate_stub_caching`` — EJBHomeFactory home/remote stub caching
  (§4.2): without it, every façade call pays a remote JNDI lookup and a
  stub-creation round trip.
* ``ablate_entity_lifecycle`` — the paper's §3.4 baseline modifications:
  ``ejbStore`` on read-only transactions and the extra
  ``ejbFindByPrimaryKey`` database call.
* ``ablate_keep_alive`` — HTTP keep-alive would remove one of the two
  WAN round trips of the centralized configuration (§4.1).
* ``ablate_refresh_mode`` — push vs pull replica refresh (§4.3): pull
  penalizes the first reader after every invalidation.
* ``ablate_edge_jdbc`` — the anti-pattern §4.2 warns about: web tier at
  the edge keeping its direct JDBC access, so every page pays multiple
  wide-area database round trips.
* ``ablate_commit_batch`` — write latency vs cart size under blocking
  (§4.3) and asynchronous (§4.5) updates: "the response time for write
  operations is proportional to the number of individual fine-grained
  updates triggered by a single façade call".
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import replace
from typing import Dict, Optional, Tuple

from ..apps import petstore
from ..core.distribution import distribute
from ..core.patterns import PatternLevel
from ..middleware.descriptors import RefreshMode
from ..simnet.kernel import Environment
from ..simnet.rng import Streams
from ..simnet.topology import build_testbed
from . import calibration
from .probes import PageProbe, measure_pages
from .progress import ProgressReporter

# Canonical order: results are always reported in this sequence, no
# matter which worker finishes first.
ABLATIONS: Tuple[str, ...] = (
    "ablate_stub_caching",
    "ablate_entity_lifecycle",
    "ablate_keep_alive",
    "ablate_refresh_mode",
    "ablate_edge_jdbc",
    "ablate_commit_batch",
)

__all__ = list(ABLATIONS) + ["ABLATIONS", "run_all_ablations"]

_EDGE_CLIENT = "client-edge1-0"
_MAIN_CLIENT = "client-main-0"


def _petstore_system(level, costs, seed=7, app_level=None, mutate_app=None):
    """Stand up Pet Store at ``level`` with the given cost profile."""
    streams = Streams(seed)
    database, catalog = petstore.populate_petstore(streams)
    env = Environment()
    testbed = build_testbed(env, calibration.petstore_testbed_config())
    application = petstore.build_application(
        PatternLevel(app_level if app_level is not None else level)
    )
    if mutate_app is not None:
        mutate_app(application)
    system = distribute(
        env,
        testbed,
        application,
        PatternLevel(level),
        database,
        costs=costs,
        db_cost_model=calibration.PETSTORE_DB_COSTS,
    )
    system.warm_replicas()
    return env, system, catalog


def ablate_stub_caching() -> Dict[str, float]:
    """Category page from an edge, with and without stub caching."""
    results = {}
    for label, enabled in (("cached", True), ("uncached", False)):
        env, system, catalog = _petstore_system(
            PatternLevel.REMOTE_FACADE, calibration.PETSTORE_COSTS
        )
        if not enabled:
            for server in system.servers.values():
                server.home_cache.enabled = False
        pages = [("Category", {"category_id": catalog.category_ids[0]})]
        results[label] = measure_pages(
            system, env, _EDGE_CLIENT, pages, repeats=4, discard=1
        )["Category"]
    return results


def ablate_entity_lifecycle() -> Dict[str, float]:
    """Verify Signin with and without the paper's §3.4 entity fixes."""
    results = {}
    optimized = calibration.PETSTORE_COSTS
    unoptimized = optimized.variant(
        store_on_read_only_tx=True, bmp_find_extra_db_call=True
    )
    for label, costs in (("optimized", optimized), ("unoptimized", unoptimized)):
        env, system, catalog = _petstore_system(PatternLevel.CENTRALIZED, costs)
        pages = [
            ("Verify Signin", {"user_id": catalog.user_ids[0], "password": "pw-0"}),
            ("Item", {"item_id": catalog.item_ids[0]}),
        ]
        measured = measure_pages(system, env, _MAIN_CLIENT, pages, repeats=4, discard=1)
        results[f"{label}:verify"] = measured["Verify Signin"]
        results[f"{label}:item"] = measured["Item"]
    return results


def ablate_keep_alive() -> Dict[str, float]:
    """Centralized remote page cost with and without HTTP keep-alive."""
    results = {}
    for label, keep_alive in (("no-keep-alive", False), ("keep-alive", True)):
        costs = calibration.PETSTORE_COSTS.variant(http_keep_alive=keep_alive)
        env, system, catalog = _petstore_system(PatternLevel.CENTRALIZED, costs)
        pages = [("Main", {})]
        results[label] = measure_pages(
            system, env, _EDGE_CLIENT, pages, repeats=4, discard=1
        )["Main"]
    return results


def ablate_refresh_mode() -> Dict[str, float]:
    """Read latency right after a write: push vs pull replica refresh."""

    def make_pull(application):
        for descriptor in application.components.values():
            if descriptor.read_mostly is not None:
                descriptor.read_mostly = replace(
                    descriptor.read_mostly, refresh_mode=RefreshMode.PULL
                )

    results = {}
    for label, mutate in (("push", None), ("pull", make_pull)):
        env, system, catalog = _petstore_system(
            PatternLevel.STATEFUL_CACHING,
            calibration.PETSTORE_COSTS,
            mutate_app=mutate,
        )
        item_id = catalog.item_ids[0]
        user = catalog.user_ids[0]
        script = [
            ("Item", {"item_id": item_id}),                      # warm the replica
            ("Verify Signin", {"user_id": user, "password": "pw-0"}),
            ("Shopping Cart", {"item_id": item_id, "quantity": 1}),
            ("Commit Order", {}),                                 # invalidates Inventory
            ("Item", {"item_id": item_id}),                       # read after write
        ]
        probe = PageProbe(system, _EDGE_CLIENT)
        outcome = probe.run(env, script, repeats=3)
        results[label] = outcome.mean("Item", discard=0)
        results[f"{label}:commit"] = outcome.mean("Commit Order", discard=0)
    return results


def ablate_edge_jdbc() -> Dict[str, float]:
    """Edge web tier with direct JDBC vs the remote façade (§4.2)."""
    results = {}
    # Façade: the proper level-2 application.
    env, system, catalog = _petstore_system(
        PatternLevel.REMOTE_FACADE, calibration.PETSTORE_COSTS
    )
    pages = [
        ("Category", {"category_id": catalog.category_ids[0]}),
        ("Item", {"item_id": catalog.item_ids[0]}),
    ]
    measured = measure_pages(system, env, _EDGE_CLIENT, pages, repeats=4, discard=1)
    results["facade:category"] = measured["Category"]
    results["facade:item"] = measured["Item"]
    # Anti-pattern: deploy the V1 (direct-JDBC) servlets at the edge.
    # The original web tier also opened/recycled un-pooled connections and
    # traversed results in small cursor batches ("verbose communication
    # with the database server", §4.2).
    env, system, catalog = _petstore_system(
        PatternLevel.REMOTE_FACADE,
        calibration.PETSTORE_COSTS,
        app_level=PatternLevel.CENTRALIZED,  # V1 servlets
    )
    from ..rdbms.jdbc import JdbcConfig

    for server in system.servers.values():
        server.jdbc_config = JdbcConfig(pooled=False, fetch_size=5)
    measured = measure_pages(system, env, _EDGE_CLIENT, pages, repeats=4, discard=1)
    results["edge-jdbc:category"] = measured["Category"]
    results["edge-jdbc:item"] = measured["Item"]
    return results


def ablate_commit_batch(cart_sizes=(1, 2, 4, 8)) -> Dict[str, Dict[int, float]]:
    """Commit latency vs cart size, blocking (§4.3) vs async (§4.5)."""
    results: Dict[str, Dict[int, float]] = {"sync": {}, "async": {}}
    for label, level in (("sync", PatternLevel.STATEFUL_CACHING),
                         ("async", PatternLevel.ASYNC_UPDATES)):
        for size in cart_sizes:
            env, system, catalog = _petstore_system(
                level, calibration.PETSTORE_COSTS, seed=11 + size
            )
            user = catalog.user_ids[0]
            script = [("Verify Signin", {"user_id": user, "password": "pw-0"})]
            for index in range(size):
                script.append(
                    ("Shopping Cart", {"item_id": catalog.item_ids[index], "quantity": 1})
                )
            script.append(("Commit Order", {}))
            probe = PageProbe(system, _EDGE_CLIENT)
            outcome = probe.run(env, script, repeats=2)
            results[label][size] = outcome.last("Commit Order")
    return results


def _run_ablation(name: str) -> Tuple[str, Dict, float]:
    """Worker entry point: run one ablation, return (name, outcome, wall)."""
    started = time.perf_counter()
    outcome = globals()[name]()
    return name, outcome, time.perf_counter() - started


def run_all_ablations(
    jobs: Optional[int] = None,
    progress: Optional[ProgressReporter] = None,
) -> Dict[str, Dict]:
    """Run every ablation, optionally fanned out across worker processes.

    Each ablation stands up its own seeded environments, so they are as
    independent as the main sweep's cells.  Results come back keyed in
    :data:`ABLATIONS` order regardless of completion order.
    """
    from .parallel import default_jobs

    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    outcomes: Dict[str, Dict] = {}
    if jobs == 1:
        for name in ABLATIONS:
            name, outcome, wall = _run_ablation(name)
            outcomes[name] = outcome
            if progress is not None:
                progress.done(name, wall)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(ABLATIONS))) as pool:
            futures = [pool.submit(_run_ablation, name) for name in ABLATIONS]
            for future in as_completed(futures):
                name, outcome, wall = future.result()
                outcomes[name] = outcome
                if progress is not None:
                    progress.done(name, wall)
    return {name: outcomes[name] for name in ABLATIONS}
