"""The paper's evaluation: configurations, runner, tables, figures."""

from . import calibration
from .figures import FigureData, build_figure, figure_to_csv, render_figure
from .parallel import (
    CellResult,
    CellTask,
    default_jobs,
    run_cells,
    run_series_parallel,
)
from .progress import ProgressReporter
from .runner import APPS, AppSpec, ExperimentResult, run_configuration, run_series
from .tables import ResponseTimeTable, TableCell, build_table, render_table, table_to_csv

__all__ = [
    "calibration",
    "FigureData",
    "build_figure",
    "render_figure",
    "figure_to_csv",
    "APPS",
    "AppSpec",
    "ExperimentResult",
    "run_configuration",
    "run_series",
    "CellResult",
    "CellTask",
    "default_jobs",
    "run_cells",
    "run_series_parallel",
    "ProgressReporter",
    "ResponseTimeTable",
    "TableCell",
    "build_table",
    "render_table",
    "table_to_csv",
]
