"""The paper's evaluation: configurations, runner, tables, figures."""

from . import calibration
from .figures import FigureData, build_figure, figure_to_csv, render_figure
from .runner import APPS, AppSpec, ExperimentResult, run_configuration, run_series
from .tables import ResponseTimeTable, TableCell, build_table, render_table, table_to_csv

__all__ = [
    "calibration",
    "FigureData",
    "build_figure",
    "render_figure",
    "figure_to_csv",
    "APPS",
    "AppSpec",
    "ExperimentResult",
    "run_configuration",
    "run_series",
    "ResponseTimeTable",
    "TableCell",
    "build_table",
    "render_table",
    "table_to_csv",
]
