"""Render Figures 7 and 8: session-average response time bars.

The paper's summary figures plot, for each client group (local/remote x
browser/buyer-or-bidder), the mean response time over every request of
that group's sessions, across the five configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from ..core.patterns import PatternLevel, level_name
from .parallel import CellResult
from .runner import APPS, ExperimentResult

__all__ = ["FigureData", "build_figure", "render_figure"]

# Accepts the serial runner's live results or the parallel runner's
# reconstructed-from-state results interchangeably.
SeriesResult = Union[ExperimentResult, CellResult]

PAPER_FIGURES = {
    "petstore": (7, "Java Pet Store session average response times"),
    "rubis": (8, "RUBiS session average response times"),
}


@dataclass
class FigureData:
    """(group, level) -> session-mean response time in ms."""

    app: str
    groups: List[str]
    series: Dict[Tuple[str, PatternLevel], float] = field(default_factory=dict)
    # Custom bar labels (custom-policy runs); absent levels use level_name.
    labels: Dict[PatternLevel, str] = field(default_factory=dict)

    def bar_label(self, level: PatternLevel) -> str:
        return self.labels.get(PatternLevel(level)) or level_name(level)

    def value(self, group: str, level: PatternLevel) -> float:
        return self.series.get((group, PatternLevel(level)), float("nan"))

    @property
    def levels(self) -> List[PatternLevel]:
        return sorted({level for (_g, level) in self.series})


def build_figure(results: Dict[PatternLevel, SeriesResult]) -> FigureData:
    """Assemble Figure 7/8 data from a five-configuration series."""
    any_result = next(iter(results.values()))
    spec = APPS[any_result.app]
    groups = [
        f"local-browser",
        f"local-{spec.writer_group}",
        f"remote-browser",
        f"remote-{spec.writer_group}",
    ]
    figure = FigureData(app=any_result.app, groups=groups)
    for level, result in results.items():
        label = getattr(result, "label", None)
        if label:
            figure.labels[PatternLevel(level)] = label
        for group in groups:
            figure.series[(group, PatternLevel(level))] = result.session_mean(group)
    return figure


def figure_to_csv(figure: FigureData) -> str:
    """CSV export: group,configuration,session_mean_ms."""
    lines = ["group,configuration,session_mean_ms"]
    for group in figure.groups:
        for level in figure.levels:
            value = figure.value(group, level)
            if value != value:  # NaN
                continue
            lines.append(
                f"{group},{figure.bar_label(level).replace(',', ';')},{value:.2f}"
            )
    return "\n".join(lines) + "\n"


def render_figure(figure: FigureData, bar_width: int = 50) -> str:
    """ASCII bar chart in the paper's grouping (groups on the x-axis)."""
    number, caption = PAPER_FIGURES.get(figure.app, (0, figure.app))
    lines = [f"Figure {number}. {caption}."]
    values = [v for v in figure.series.values() if v == v]  # drop NaN
    maximum = max(values) if values else 1.0
    for group in figure.groups:
        lines.append(f"\n{group}")
        for level in figure.levels:
            value = figure.value(group, level)
            if value != value:
                continue
            bar = "#" * max(1, int(round(bar_width * value / maximum)))
            lines.append(f"  {figure.bar_label(level):28s} {value:7.0f} ms |{bar}")
    return "\n".join(lines)
