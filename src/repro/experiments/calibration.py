"""Calibration: every cost constant behind the experiment suite.

The simulation reproduces the paper's *structure* exactly (call graphs,
round trips, blocking behaviour); absolute milliseconds additionally
depend on 2003-era CPU/JVM/DBMS speeds, which are condensed into the two
profiles below.

* **Pet Store** is the heavyweight application: JSP template framework,
  BMP entity beans, JBoss 2.4.4's older RMI stack (higher DGC overhead).
  The paper's baseline already includes its §3.4 modifications —
  ``ejbStore`` skipped on read-only transactions, the extra
  ``ejbFindByPrimaryKey`` database call removed — so those flags are off
  here and re-enabled only by the ablation benchmarks.
* **RUBiS** "is a significantly more lighter weight application":
  servlets render trivial pages, CMP 2.0 batches finder loads, JBoss
  3.0.3's RMI is leaner.

Values were fitted so that the centralized/local column lands in the
paper's range (Pet Store ~70-160 ms, RUBiS ~10-45 ms) and WAN effects
then follow from the network model; see EXPERIMENTS.md for the
paper-vs-measured comparison.
"""

from __future__ import annotations

from ..middleware.costs import MiddlewareCosts
from ..rdbms.server import DbCostModel
from ..simnet.topology import TestbedConfig
from ..workload.generator import WorkloadConfig

__all__ = [
    "PETSTORE_COSTS",
    "RUBIS_COSTS",
    "PETSTORE_DB_COSTS",
    "RUBIS_DB_COSTS",
    "petstore_testbed_config",
    "rubis_testbed_config",
    "default_workload",
    "SIM_DURATION_MS",
    "SIM_WARMUP_MS",
    "MASTER_SEED",
]

MASTER_SEED = 2003

# Simulated run length.  The paper ran ~1 hour; ten simulated minutes with
# a three-minute warm-up reaches the same steady state (caches warm, stub
# pools filled) at a practical wall-clock cost.
SIM_DURATION_MS = 600_000.0
SIM_WARMUP_MS = 180_000.0


PETSTORE_COSTS = MiddlewareCosts(
    servlet_base=6.0,
    page_render_per_kb=2.2,
    servlet_io_wait=38.0,
    local_call=0.05,
    bean_method_base=1.2,
    instance_creation=2.5,
    rmi_cpu=0.9,
    rmi_dgc_fraction=0.5,       # JBoss 2.4.4-era RMI: heavy DGC/ping traffic
    rmi_stub_creation_rtt=True,
    jndi_remote_lookup=True,
    jms_publish_cpu=0.6,
    mdb_dispatch_cpu=0.5,
    ejb_load_cpu=0.35,
    ejb_store_cpu=0.35,
    bmp_find_extra_db_call=False,  # removed by the paper's baseline mods (§3.4)
    store_on_read_only_tx=False,   # likewise
    finder_loads_rows=False,       # BMP: the n+1 pattern stays
)

RUBIS_COSTS = MiddlewareCosts(
    servlet_base=1.2,
    page_render_per_kb=0.6,
    servlet_io_wait=4.0,
    local_call=0.03,
    bean_method_base=0.4,
    instance_creation=1.0,
    rmi_cpu=0.4,
    rmi_dgc_fraction=0.2,       # JBoss 3.0.3: leaner RMI stack
    rmi_stub_creation_rtt=True,
    jndi_remote_lookup=True,
    jms_publish_cpu=0.3,
    mdb_dispatch_cpu=0.25,
    ejb_load_cpu=0.12,
    ejb_store_cpu=0.12,
    bmp_find_extra_db_call=False,
    store_on_read_only_tx=False,
    finder_loads_rows=True,        # CMP 2.0 finders batch row loads
)

# Oracle 8.1.7 on a dedicated dual-P3 (Pet Store tests).
PETSTORE_DB_COSTS = DbCostModel(
    statement_overhead=2.4,
    per_row_scanned=0.010,
    per_result_row=0.25,
    per_write=1.4,
    commit_overhead=1.2,
)

# MySQL 4.0.12 co-located with the main application server (RUBiS tests).
RUBIS_DB_COSTS = DbCostModel(
    statement_overhead=0.9,
    per_row_scanned=0.006,
    per_result_row=0.10,
    per_write=0.7,
    commit_overhead=0.5,
)


def petstore_testbed_config() -> TestbedConfig:
    """Dedicated Oracle workstation on the main LAN (§3.1)."""
    return TestbedConfig(db_colocated=False)


def rubis_testbed_config() -> TestbedConfig:
    """"we used a MySQL 4.0.12 database running on the same workstation
    as one of the application servers" (§3.1)."""
    return TestbedConfig(db_colocated=True)


def default_workload(
    duration_ms: float = SIM_DURATION_MS, warmup_ms: float = SIM_WARMUP_MS
) -> WorkloadConfig:
    """30 req/s combined, 80/20 browser/writer mix (§3.3)."""
    return WorkloadConfig(
        total_rate_per_s=30.0,
        browser_fraction=0.8,
        think_time_ms=7_000.0,
        duration_ms=duration_ms,
        warmup_ms=warmup_ms,
    )
