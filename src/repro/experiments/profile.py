"""cProfile instrumentation for experiment cells.

Two layers:

* :func:`profile_call` — run any callable under ``cProfile`` and get the
  result plus a ``pstats.Stats`` object back.
* :func:`subsystem_attribution` — collapse a profile into per-subsystem
  self-time totals (``simnet``, ``rdbms``, ``middleware``, ...), which is
  how the hot-path work in this repository was targeted: the question is
  rarely "which function" but "which layer pays for a request".

The experiment runner exposes this through ``run_series(profile=True)``
and ``python -m repro.experiments <target> --profile``, which dump the
top cumulative entries and the attribution for every cell to stderr.
Profiling is serial-only: a cProfile object cannot follow work into
worker processes, so ``--profile`` forces ``--jobs 1``.

Note that cProfile adds substantial constant overhead per function call
(2x+ wall clock on this workload), which *exaggerates* the cost of
call-heavy layers relative to allocation- or arithmetic-heavy ones.
Treat the output as a map, not a measurement; wall-clock comparisons
belong to ``benchmarks/bench_hotpath.py``.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable, Dict, TextIO, Tuple

__all__ = [
    "profile_call",
    "subsystem_attribution",
    "format_profile",
    "format_attribution",
    "dump_cell_profile",
    "warn_forced_serial",
]

_REPRO_MARKER = "/repro/"


def warn_forced_serial(requested_jobs: Any, stream: TextIO) -> None:
    """Explain on ``stream`` why profiling downgraded ``jobs`` to 1.

    Shared by the CLI and :func:`~repro.experiments.runner.run_series` so
    the message is identical wherever the downgrade happens.
    """
    print(
        f"[profile] cProfile cannot follow worker processes; "
        f"forcing jobs=1 (requested {requested_jobs})",
        file=stream,
    )


def profile_call(func: Callable, *args: Any, **kwargs: Any) -> Tuple[Any, pstats.Stats]:
    """Run ``func(*args, **kwargs)`` under cProfile.

    Returns ``(result, stats)``; the profiler only observes this call.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = func(*args, **kwargs)
    finally:
        profiler.disable()
    return result, pstats.Stats(profiler, stream=io.StringIO())


def _subsystem_of(filename: str) -> str:
    """Map a profiled filename to a repository subsystem label."""
    marker = filename.rfind(_REPRO_MARKER)
    if marker < 0:
        if filename.startswith("<") or filename.startswith("~"):
            return "interpreter"
        return "stdlib"
    remainder = filename[marker + len(_REPRO_MARKER):]
    package = remainder.split("/", 1)[0]
    if package.endswith(".py"):
        package = package[:-3]
    return package


def subsystem_attribution(stats: pstats.Stats) -> Dict[str, Dict[str, float]]:
    """Self-time and call counts per repository subsystem.

    Returns ``{subsystem: {"tottime": s, "calls": n}}`` sorted by
    descending self-time.  Built-in and stdlib frames are bucketed under
    ``interpreter`` / ``stdlib`` so the repro shares sum to the total.
    """
    buckets: Dict[str, Dict[str, float]] = {}
    for (filename, _line, _name), entry in stats.stats.items():
        _cc, ncalls, tottime, _cumtime, _callers = entry
        label = _subsystem_of(filename)
        bucket = buckets.setdefault(label, {"tottime": 0.0, "calls": 0})
        bucket["tottime"] += tottime
        bucket["calls"] += ncalls
    return dict(
        sorted(buckets.items(), key=lambda pair: pair[1]["tottime"], reverse=True)
    )


def format_profile(stats: pstats.Stats, limit: int = 25) -> str:
    """The top ``limit`` entries by cumulative time, as printable text."""
    buffer = io.StringIO()
    stats.stream = buffer
    stats.sort_stats("cumulative").print_stats(limit)
    return buffer.getvalue()


def format_attribution(attribution: Dict[str, Dict[str, float]]) -> str:
    total = sum(bucket["tottime"] for bucket in attribution.values()) or 1.0
    lines = ["subsystem self-time attribution:"]
    for label, bucket in attribution.items():
        share = 100.0 * bucket["tottime"] / total
        lines.append(
            f"  {label:<12} {bucket['tottime']:8.3f}s  {share:5.1f}%  "
            f"({int(bucket['calls'])} calls)"
        )
    return "\n".join(lines)


def dump_cell_profile(
    label: str, stats: pstats.Stats, stream: TextIO, limit: int = 25
) -> None:
    """Write one cell's profile (top entries + attribution) to ``stream``."""
    print(f"\n== profile: {label} ==", file=stream)
    print(format_profile(stats, limit=limit).rstrip(), file=stream)
    print(format_attribution(subsystem_attribution(stats)), file=stream)
